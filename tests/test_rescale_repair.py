"""Authoritative capacity rescale and region repair on the controller.

ISSUE-9 core layer: :meth:`rescale_stage_capacity` re-charges the
admitted set through the exact accumulator so a controller that
rescales and then admits is *bitwise* identical to a fresh controller
built at the new capacity, and :meth:`repair_region` evicts tasks in
brownout order (ascending importance, admission seq as the tie-break)
until the Eq. 12/15 region — with the locking-aware budget — holds
again.
"""

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.audit import diff_controllers
from repro.core.bounds import region_budget
from repro.core.task import make_task
from repro.locking import ResourceSpec


def _task(task_id, costs, deadline=1.0, importance=0, resources=()):
    return make_task(
        arrival_time=0.0,
        deadline=deadline,
        computation_times=costs,
        importance=importance,
        resources=resources,
        task_id=task_id,
    )


def _admit_mixed(controller):
    """Three admissions with distinct deadlines/importances (seqs 1..3)."""
    for task in (
        _task(1, [0.06, 0.04], deadline=2.0, importance=1),
        _task(2, [0.05, 0.05], deadline=1.5),
        _task(3, [0.04, 0.08], deadline=2.5, importance=2),
    ):
        assert controller.request(task, now=0.0).admitted


class TestRescaleBitwise:
    """The S2 regression: rescale-then-admit == fresh-at-new-capacity."""

    def test_rescale_then_admit_matches_fresh_controller_bitwise(self):
        lived = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(lived)
        lived.rescale_stage_capacity(0, 0.7)

        fresh = PipelineAdmissionController(2, alpha=0.9)
        fresh.rescale_stage_capacity(0, 0.7)
        _admit_mixed(fresh)

        assert diff_controllers(lived, fresh) == []
        # The *next* decision — the one the region cache could have
        # poisoned — is bitwise the same on both sides.
        probe = _task(9, [0.2, 0.2], deadline=1.0)
        decided = lived.request(probe, now=0.0)
        expected = fresh.request(probe, now=0.0)
        assert decided.admitted == expected.admitted
        assert decided.region_value == expected.region_value
        assert diff_controllers(lived, fresh) == []

    def test_prospective_set_leaves_charges_rescale_moves_them(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(controller)
        before = {t[0]: t[1] for t in controller.iter_admitted()}

        controller.set_stage_capacity(0, 0.5)
        assert controller.charges_follow_capacity is False
        assert {t[0]: t[1] for t in controller.iter_admitted()} == before

        controller.rescale_stage_capacity(0, 0.5)
        assert controller.charges_follow_capacity is True
        after = {t[0]: t[1] for t in controller.iter_admitted()}
        for task_id, contributions in after.items():
            assert contributions[0] == before[task_id][0] * 2.0
            assert contributions[1] == before[task_id][1]

    def test_rescale_down_then_up_is_a_bitwise_round_trip(self):
        lived = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(lived)
        lived.rescale_stage_capacity(0, 0.6)
        lived.rescale_stage_capacity(0, 1.0)

        fresh = PipelineAdmissionController(2, alpha=0.9)
        fresh.rescale_stage_capacity(0, 1.0)  # flag parity: charges follow
        _admit_mixed(fresh)

        assert diff_controllers(lived, fresh) == []

    def test_rescale_rejects_bad_capacity_without_mutation(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(controller)
        before = {t[0]: t[1] for t in controller.iter_admitted()}
        for bad in (-0.1, 1.5, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                controller.rescale_stage_capacity(0, bad)
        assert controller.stage_capacities() == (1.0, 1.0)
        assert {t[0]: t[1] for t in controller.iter_admitted()} == before


class TestRepairRegion:
    def test_repair_on_a_feasible_set_is_a_noop(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(controller)
        assert controller.region_ok()
        assert controller.repair_region() == []
        assert controller.is_admitted(1)

    def test_victims_fall_in_importance_then_seq_order(self):
        controller = PipelineAdmissionController(1, alpha=0.9)
        # seq order 1..4; importance deliberately out of seq order.
        for task_id, importance in ((1, 2), (2, 0), (3, 1), (4, 0)):
            assert controller.request(
                _task(task_id, [0.12], deadline=1.0, importance=importance),
                now=0.0,
            ).admitted
        controller.rescale_stage_capacity(0, 0.3)
        assert not controller.region_ok()
        sacrificed = controller.repair_region()
        assert controller.region_ok()
        # Brownout order: importance 0 first (seq ties oldest-first),
        # then importance 1 — and no deeper than necessary.
        assert sacrificed == [2, 4, 3]
        assert controller.is_admitted(1)

    def test_outage_unconditionally_evicts_demand_bearing_tasks(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        uses_both = _task(1, [0.05, 0.05], deadline=2.0, importance=5)
        spares_first = _task(2, [0.0, 0.05], deadline=2.0)
        assert controller.request(uses_both, now=0.0).admitted
        assert controller.request(spares_first, now=0.0).admitted

        controller.rescale_stage_capacity(0, 0.0)
        sacrificed = controller.repair_region()
        # Importance cannot save a task the dead stage must serve; the
        # task with no demand there rides out the outage.
        assert sacrificed == [1]
        assert not controller.is_admitted(1)
        assert controller.is_admitted(2)
        assert controller.region_ok()

    def test_restoring_capacity_never_sacrifices(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        _admit_mixed(controller)
        controller.rescale_stage_capacity(0, 0.5)
        controller.repair_region()
        survivors = sorted(t[0] for t in controller.iter_admitted())
        controller.rescale_stage_capacity(0, 1.0)
        assert controller.repair_region() == []
        assert sorted(t[0] for t in controller.iter_admitted()) == survivors

    def test_outage_rejects_new_demand_until_restored(self):
        controller = PipelineAdmissionController(2, alpha=0.9)
        controller.rescale_stage_capacity(0, 0.0)
        needs_dead_stage = _task(1, [0.05, 0.05], deadline=2.0)
        assert not controller.request(needs_dead_stage, now=0.0).admitted
        controller.rescale_stage_capacity(0, 1.0)
        assert controller.request(needs_dead_stage, now=0.0).admitted


class TestLockingRepair:
    """S3: capacity drops under ``locking=True`` re-preview ``beta_j``."""

    def _locked_trio(self):
        """Tight anchor (keep), blocker (beta 0.5), bulk utilization.

        The blocker's 0.2-long critical section against the anchor's
        0.4 deadline yields ``beta = 0.5`` and squeezes the budget to
        ``0.9 * (1 - 0.5)``.
        """
        controller = PipelineAdmissionController(1, alpha=0.9, locking=True)
        anchor = _task(
            1, [0.06], deadline=0.4, importance=2,
            resources=[ResourceSpec(0, "r", 0.0)],
        )
        blocker = _task(
            2, [0.02], deadline=4.0, importance=1,
            resources=[ResourceSpec(0, "r", 0.2)],
        )
        bulk = _task(3, [0.07], deadline=1.0, importance=0)
        for task in (anchor, blocker, bulk):
            assert controller.request(task, now=0.0).admitted
        assert controller.betas == (0.5,)
        assert controller.budget == region_budget(0.9, (0.5,))
        return controller

    def test_sacrificing_the_blocker_restores_the_budget(self):
        controller = self._locked_trio()
        controller.rescale_stage_capacity(0, 0.3)
        assert not controller.region_ok()
        sacrificed = controller.repair_region()
        # Evicting the bulk task alone leaves the rescaled utilization
        # of anchor+blocker above the blocking-squeezed budget, so the
        # plan is refused and the repair keeps going: the blocker falls
        # too, releasing its critical section — beta_j re-previews to
        # zero and the budget springs back before the plan is accepted.
        assert sacrificed == [3, 2]
        assert controller.is_admitted(1)
        assert controller.betas == (0.0,)
        assert controller.budget == region_budget(0.9, (0.0,))
        assert controller.region_ok()

    def test_mild_drop_keeps_the_blocker_and_its_beta(self):
        controller = self._locked_trio()
        controller.rescale_stage_capacity(0, 0.9)
        # A 10% slowdown fits inside the blocking-squeezed budget:
        # nothing is sacrificed and the beta preview stands.
        assert controller.region_ok()
        assert controller.repair_region() == []
        assert controller.betas == (0.5,)

    def test_repair_admits_no_cheaper_plan_than_the_blocking_budget(self):
        controller = self._locked_trio()
        controller.rescale_stage_capacity(0, 0.3)
        # Hypothetical bulk-only plan: simulate it via withdraw on a
        # twin and show the region still fails — the repair loop above
        # was not evicting the blocker gratuitously.
        controller.withdraw(3)
        assert not controller.region_ok()
