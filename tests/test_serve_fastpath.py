"""The serve-layer hot path: fast encoding, O(1) dedup, write coalescing.

Each optimization is pinned against the behavior it replaced:
``admit_response`` must be *byte-identical* to the generic
``ok_response`` encoder for every admissible input, the dedup window's
replay must return the cached line verbatim (same object) on the
dominant same-id retry, and the server's coalesced delivery must
preserve per-connection response order while issuing exactly one
write+drain per connection.
"""

import asyncio
import json
import math
import socket

import pytest

from repro.core.task import make_task
from repro.serve.gateway import AdmissionGateway, GatewayServer, _UNKNOWN_ID
from repro.serve.loadgen import _TcpGatewayThread
from repro.serve.protocol import (
    MAX_REQUEST_CHARS,
    MAX_REQUEST_DEPTH,
    admit_response,
    admit_response_batch,
    ok_response,
    task_to_wire,
)

NUM_STAGES = 2
BATCHED = {"num_stages": NUM_STAGES, "max_batch": 3}

IDS = [
    None,
    0,
    7,
    -42,
    10**19,  # larger than any fixed-width integer fast path
    True,
    False,
    "r-1",
    "",
    'quote"backslash\\and\ttab',
    "unicode: åβ中 ",
]


class TestAdmitResponseEncoder:
    @pytest.mark.parametrize("request_id", IDS)
    @pytest.mark.parametrize("admitted", [True, False])
    def test_byte_identical_to_generic_encoder(self, request_id, admitted):
        request = {"id": request_id, "op": "admit", "rid": "r"}
        for region_value in (0.0, -0.0, 0.7321, 1e-300, math.inf):
            for shed in ([], [3], [1, 2, 9]):
                fast = admit_response(
                    request,
                    admitted=admitted,
                    region_value=region_value,
                    shed=shed,
                )
                slow = ok_response(
                    request,
                    admitted=admitted,
                    region_value=region_value,
                    shed=list(shed),
                )
                assert fast == slow

    def test_shed_accepts_any_iterable(self):
        request = {"id": 1, "op": "admit"}
        assert admit_response(
            request, admitted=True, region_value=0.5, shed=(4, 5)
        ) == ok_response(request, admitted=True, region_value=0.5, shed=[4, 5])

    def test_output_parses_back_canonically(self):
        request = {"id": 'q"\\', "op": "admit"}
        line = admit_response(request, admitted=False, region_value=math.inf)
        doc = json.loads(line)
        assert doc == {
            "id": 'q"\\',
            "op": "admit",
            "ok": True,
            "admitted": False,
            "region_value": None,
            "shed": [],
        }
        # Canonical form: sorted keys, compact separators.
        assert line == json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @pytest.mark.parametrize(
        "request_, region_value",
        [
            ({"id": 1, "op": "expire"}, 0.5),  # wrong op
            ({"id": 1, "op": "admit"}, 1),  # non-float region value
            ({"id": 1.5, "op": "admit"}, 0.5),  # unprovable id type
        ],
    )
    def test_falls_back_to_generic_encoder(self, request_, region_value):
        fast = admit_response(request_, admitted=True, region_value=region_value)
        slow = ok_response(
            request_, admitted=True, region_value=region_value, shed=[]
        )
        assert fast == slow


class TestAdmitResponseBatchEncoder:
    """The one-pass batch encoder is pinned to per-item admit_response."""

    def test_byte_identical_to_per_item_encoder(self):
        items = []
        for request_id in IDS:
            for admitted in (True, False):
                for region_value in (0.0, -0.0, 0.7321, 1e-300, math.inf):
                    for shed in ((), [3], [1, 2, 9]):
                        items.append(
                            (
                                {"id": request_id, "op": "admit", "rid": "r"},
                                admitted,
                                region_value,
                                shed,
                            )
                        )
        # Fallback shapes ride along in the same batch.
        items += [
            ({"id": 1, "op": "expire"}, True, 0.5, []),
            ({"id": 1, "op": "admit"}, True, 1, []),
            ({"id": 1.5, "op": "admit"}, True, 0.5, []),
        ]
        batch = admit_response_batch(items)
        assert batch == [
            admit_response(
                request, admitted=admitted, region_value=region_value, shed=shed
            )
            for request, admitted, region_value, shed in items
        ]

    def test_empty_batch(self):
        assert admit_response_batch([]) == []


class TestDedupReplay:
    def _decide(self, gateway, request_id, rid):
        doc = {
            "id": request_id, "rid": rid, "op": "admit", "pipeline": "web",
            "task": task_to_wire(
                make_task(0.0, 1.0, [0.01] * NUM_STAGES, task_id=0)
            ),
        }
        (_, line), = gateway.handle_line(json.dumps(doc))
        return doc, line

    def _gateway(self):
        gateway = AdmissionGateway()
        gateway.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "web",
            "policy": {"num_stages": NUM_STAGES},
        }))
        return gateway

    def test_same_id_retry_returns_cached_line_verbatim(self):
        gateway = self._gateway()
        doc, first = self._decide(gateway, request_id=7, rid="r7")
        (_, again), = gateway.handle_line(json.dumps(doc))
        assert again is first  # no parse, no re-encode
        assert gateway.dedup_hits == 1

    def test_different_id_retry_rewrites_only_the_id_echo(self):
        gateway = self._gateway()
        doc, first = self._decide(gateway, request_id=7, rid="r7")
        doc["id"] = "retry-2"
        (_, again), = gateway.handle_line(json.dumps(doc))
        want = dict(json.loads(first))
        want["id"] = "retry-2"
        assert json.loads(again) == want
        # The lazily parsed document is cached: a third retry with yet
        # another id must not change the decision payload.
        doc["id"] = 99
        (_, third), = gateway.handle_line(json.dumps(doc))
        assert json.loads(third) == dict(want, id=99)

    def test_bool_and_int_ids_are_not_conflated(self):
        # 1 == True in Python but they encode differently on the wire;
        # the verbatim fast path must not serve one for the other.
        gateway = self._gateway()
        doc, first = self._decide(gateway, request_id=True, rid="rb")
        assert '"id":true' in first.replace(" ", "")
        doc["id"] = 1
        (_, again), = gateway.handle_line(json.dumps(doc))
        assert json.loads(again)["id"] == 1
        assert not isinstance(json.loads(again)["id"], bool)

    def test_restored_entries_resolve_their_id_lazily(self):
        gateway = self._gateway()
        doc, first = self._decide(gateway, request_id=7, rid="r7")
        restored = AdmissionGateway()
        restored.load_dedup_state(gateway.dedup_state())
        entry = restored._rid_decided["r7"]
        assert entry[1] is _UNKNOWN_ID
        # Same-id retry against a restored window: one parse resolves
        # the original id, and the cached line is served verbatim.
        (_, again), = restored.handle_line(json.dumps(doc))
        assert again is first or again == first
        assert entry[1] == 7
        # Now the fast path is armed for subsequent retries.
        (_, third), = restored.handle_line(json.dumps(doc))
        assert third is entry[0]

    def test_restored_entry_with_different_retry_id(self):
        gateway = self._gateway()
        doc, first = self._decide(gateway, request_id=7, rid="r7")
        restored = AdmissionGateway()
        restored.load_dedup_state(gateway.dedup_state())
        doc["id"] = 8
        (_, again), = restored.handle_line(json.dumps(doc))
        assert json.loads(again) == dict(json.loads(first), id=8)

    def test_dedup_state_wire_format_is_unchanged(self):
        gateway = self._gateway()
        self._decide(gateway, request_id=7, rid="r7")
        state = gateway.dedup_state()
        assert list(state) == ["decided", "pending"]
        (rid, line), = state["decided"]
        assert rid == "r7" and isinstance(line, str)


class _RecordingWriter:
    """A StreamWriter stand-in that records write/drain traffic."""

    def __init__(self):
        self.chunks = []
        self.drains = 0
        self.closing = False

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        self.drains += 1

    def is_closing(self):
        return self.closing


class TestCoalescedDelivery:
    def _deliver(self, routed, writers):
        server = GatewayServer()
        server._writers = dict(writers)
        asyncio.run(server._deliver(routed))

    def test_one_write_and_drain_per_connection(self):
        a, b = _RecordingWriter(), _RecordingWriter()
        routed = [
            (0, '{"id":1}'), (1, '{"id":2}'), (0, '{"id":3}'),
            (0, '{"id":4}'), (1, '{"id":5}'),
        ]
        self._deliver(routed, {0: a, 1: b})
        assert a.chunks == [b'{"id":1}\n{"id":3}\n{"id":4}\n']
        assert b.chunks == [b'{"id":2}\n{"id":5}\n']
        assert a.drains == 1 and b.drains == 1

    def test_closed_or_missing_connections_are_skipped(self):
        live, dead = _RecordingWriter(), _RecordingWriter()
        dead.closing = True
        routed = [(0, "x"), (1, "y"), (2, "z")]
        self._deliver(routed, {0: live, 1: dead})
        assert live.chunks == [b"x\n"]
        assert dead.chunks == []

    def test_empty_batch_is_a_noop(self):
        writer = _RecordingWriter()
        self._deliver([], {0: writer})
        assert writer.chunks == [] and writer.drains == 0

    def test_batched_admissions_arrive_in_order_over_tcp(self):
        """A batch flush (3 responses released at once) reaches the
        socket as parseable, correctly ordered NDJSON."""
        with _TcpGatewayThread() as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=30) as sock:
                stream = sock.makefile("rwb")

                def call(doc):
                    stream.write((json.dumps(doc) + "\n").encode())
                    stream.flush()

                call({"id": 0, "op": "register", "pipeline": "web",
                      "policy": BATCHED})
                assert json.loads(stream.readline())["ok"] is True
                for k in range(1, 4):  # third admit fills the batch
                    call({
                        "id": k, "op": "admit", "pipeline": "web",
                        "task": task_to_wire(make_task(
                            0.1 * k, 1.0, [0.01] * NUM_STAGES, task_id=k
                        )),
                    })
                responses = [json.loads(stream.readline()) for _ in range(3)]
                assert [r["id"] for r in responses] == [1, 2, 3]
                assert all(r["admitted"] for r in responses)


class TestHandleFramesDifferential:
    """``handle_frames`` is pinned byte-for-byte to the per-line loop.

    The reference model is exactly the transport loop the fused lane
    replaced: decode each frame (``utf-8``, ``errors="replace"``),
    strip, skip blanks, ``handle_line``.  Every response line, its
    order, and every observable counter (op counts, errors, dedup
    hits, the dedup window itself, pipeline stats) must match over a
    trace that exercises each lane boundary: fast-lane admits, rid
    replays and pending duplicates, validation failures (with and
    without rids), huge-int and deep-nesting screen fallbacks, invalid
    UTF-8, non-dict JSON, unicode whitespace, oversized lines, batch
    barriers mid-chunk, registry churn, and draining mode.
    """

    def _mirror(self, gateway, frames, origin=None):
        routed = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                routed.extend(gateway.handle_line(line, origin=origin))
        return routed

    def _fingerprint(self, gateway):
        return {
            "op_counts": dict(gateway.op_counts),
            "errors": gateway.errors,
            "dedup_hits": gateway.dedup_hits,
            "dedup": gateway.dedup_state(),
        }

    def _admit(self, pipeline, task_id, rid=None, arrival=0.0, task=...):
        doc = {
            "id": task_id,
            "op": "admit",
            "pipeline": pipeline,
            "task": task_to_wire(
                make_task(arrival, 1.0, [0.01] * NUM_STAGES, task_id=task_id)
            ) if task is ... else task,
        }
        if rid is not None:
            doc["rid"] = rid
        return json.dumps(doc).encode()

    def _trace(self):
        """Chunks of frames covering every lane and fallback."""
        deep = ('{"a": ' * (MAX_REQUEST_DEPTH + 2)
                + "null" + "}" * (MAX_REQUEST_DEPTH + 2)).encode()
        oversized = (b'{"op": "health", "pad": "'
                     + b"x" * MAX_REQUEST_CHARS + b'"}')
        register = lambda name, policy, rid: json.dumps({
            "id": 0, "rid": rid, "op": "register",
            "pipeline": name, "policy": policy,
        }).encode()
        chunk1 = [
            register("web", BATCHED, "reg-web"),
            register("other", {"num_stages": NUM_STAGES, "max_batch": 1},
                     "reg-other"),
            self._admit("web", 1, rid="r1", arrival=0.01),
            self._admit("web", 2, rid="r2", arrival=0.02),
            self._admit("web", 3, rid="r3", arrival=0.03),  # flushes batch
            self._admit("web", 101, rid="r1", arrival=0.04),  # decided replay
            self._admit("web", 4, rid="r4", arrival=0.05),  # queued
            self._admit("web", 104, rid="r4", arrival=0.06),  # pending dup
            b"   \t  ",  # whitespace-only frame: skipped
            b'\t{"op": "health"}  ',  # fast lane strips ASCII ws
            " ".encode() + b'{"op": "health"}',  # unicode ws: slow lane
            b"\xff\xfe not utf-8 \xff",
            b"not json at all",
            b"[1, 2, 3]",
            b'{"op": "bogus", "id": 3}',  # unknown op: no id echo
            b'{"op": "admit", "pipeline": "web", "rid": "rv", "id": []}',
            self._admit("web", 5, rid="rv", arrival=0.07),  # rv NOT decided
        ]
        chunk2 = [
            # Dirty chunk: the huge int poisons the chunk-level screen,
            # so every other frame here also takes the per-frame screen.
            b'{"id": 99999999999999999999999999, "op": "health"}',
            deep,
            oversized,
            self._admit("web", 6, rid="r6", arrival=0.08),
            json.dumps({"id": 50, "op": "stats",
                        "pipeline": "web"}).encode(),  # barrier mid-chunk
            self._admit("nope", 9, rid="rn", arrival=0.09),  # unknown pipeline
            self._admit("nope", 109, rid="rn", arrival=0.10),  # error replay
            self._admit("other", 10, rid="r10", arrival=0.11),
            self._admit("web", 11, rid="r11", arrival=0.12),
            self._admit("other", 12, rid="r12", arrival=0.13),  # cache churn
            json.dumps({"id": 51, "op": "unregister",
                        "pipeline": "other"}).encode(),
            self._admit("other", 13, rid="r13", arrival=0.14),  # unregistered
            b'{"op": "health", "rid": "rh"}',  # health rid never settles
            b'{"op": "admit", "pipeline": "web", "rid": ""}',  # bad rid
            b'{"op": "admit", "pipeline": 7}',  # bad pipeline operand
            self._admit("web", 77, rid="rt", arrival=0.15, task="nope"),
            self._admit("web", 177, rid="rt", arrival=0.16),  # error replay
        ]
        return [chunk1, chunk2]

    def _run(self, ingest):
        gateway = AdmissionGateway()
        routed = []
        for chunk in self._trace():
            routed.extend(ingest(gateway, chunk))
        # Draining mode: decided rids replay, fresh admits bounce.
        gateway.draining = True
        drain_chunk = [
            self._admit("web", 201, rid="r1", arrival=0.20),
            self._admit("web", 202, rid="r20", arrival=0.21),
        ]
        routed.extend(ingest(gateway, drain_chunk))
        gateway.draining = False
        routed.extend(("drain", line) for _, line in gateway.drain())
        routed.extend(
            ingest(gateway, [json.dumps({
                "id": 99, "op": "stats", "pipeline": "web",
            }).encode()])
        )
        return routed, self._fingerprint(gateway)

    def test_matches_per_line_loop(self):
        fused, fused_state = self._run(
            lambda g, frames: g.handle_frames(frames, origin="conn")
        )
        mirrored, mirrored_state = self._run(
            lambda g, frames: self._mirror(g, frames, origin="conn")
        )
        assert fused == mirrored
        assert fused_state == mirrored_state
        # The trace actually exercised both lanes and both replays.
        assert fused_state["errors"] > 0
        assert fused_state["dedup_hits"] >= 3

    def test_empty_and_blank_chunks(self):
        gateway = AdmissionGateway()
        assert gateway.handle_frames([]) == []
        assert gateway.handle_frames([b"", b"  ", b"\t"]) == []
        assert gateway.op_counts == {}
        assert gateway.errors == 0

    def test_async_facade_matches(self):
        frames = [self._trace()[0][0], b'{"op": "health"}']
        sync_gateway = AdmissionGateway()
        async_gateway = AdmissionGateway()
        sync_routed = sync_gateway.handle_frames(frames)
        async_routed = asyncio.run(async_gateway.handle_frames_async(frames))
        assert sync_routed == async_routed
