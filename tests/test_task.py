"""Tests for the task model (Section 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.task import (
    make_task,
    periodic_spec,
    task_priority_deadline_monotonic,
    validate_task,
)


class TestMakeTask:
    def test_basic_fields(self):
        t = make_task(1.0, 5.0, [2.0, 3.0])
        assert t.arrival_time == 1.0
        assert t.deadline == 5.0
        assert t.computation_times == (2.0, 3.0)
        assert t.num_stages == 2
        assert t.absolute_deadline == 6.0
        assert t.total_computation == 5.0

    def test_fresh_ids_unique(self):
        a = make_task(0.0, 1.0, [0.1])
        b = make_task(0.0, 1.0, [0.1])
        assert a.task_id != b.task_id

    def test_explicit_id(self):
        t = make_task(0.0, 1.0, [0.1], task_id=42)
        assert t.task_id == 42

    def test_synthetic_contribution(self):
        t = make_task(0.0, 10.0, [1.0, 2.0])
        assert t.synthetic_contribution(0) == pytest.approx(0.1)
        assert t.synthetic_contribution(1) == pytest.approx(0.2)

    def test_resolution(self):
        t = make_task(0.0, 100.0, [1.0, 1.0])
        assert t.resolution() == pytest.approx(50.0)

    def test_resolution_zero_cost(self):
        t = make_task(0.0, 100.0, [0.0, 0.0])
        assert t.resolution() == math.inf

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 0.0, [1.0])

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, -1.0, [1.0])

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 1.0, [])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 1.0, [1.0, -0.1])

    def test_infinite_cost_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 1.0, [math.inf])

    def test_blocking_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 1.0, [1.0, 1.0], blocking_times=[0.1])

    def test_negative_blocking_rejected(self):
        with pytest.raises(ValueError):
            make_task(0.0, 1.0, [1.0], blocking_times=[-0.1])

    def test_valid_blocking(self):
        t = make_task(0.0, 1.0, [1.0, 0.5], blocking_times=[0.1, 0.0])
        assert t.blocking_times == (0.1, 0.0)

    def test_nonfinite_arrival_rejected(self):
        with pytest.raises(ValueError):
            make_task(math.nan, 1.0, [1.0])

    def test_frozen(self):
        t = make_task(0.0, 1.0, [1.0])
        with pytest.raises(AttributeError):
            t.deadline = 2.0

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.001, max_value=1e6),
        st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=6),
    )
    def test_validate_accepts_all_constructed(self, arrival, deadline, costs):
        task = make_task(arrival, deadline, costs)
        validate_task(task)  # must not raise

    @given(
        st.floats(min_value=0.001, max_value=1e3),
        st.lists(st.floats(min_value=0.0, max_value=1e2), min_size=1, max_size=5),
    )
    def test_contributions_sum_to_total_over_deadline(self, deadline, costs):
        task = make_task(0.0, deadline, costs)
        total = sum(task.synthetic_contribution(j) for j in range(task.num_stages))
        assert total == pytest.approx(task.total_computation / deadline)


class TestDeadlineMonotonicKey:
    def test_orders_by_relative_deadline(self):
        short = make_task(0.0, 1.0, [0.1])
        long = make_task(0.0, 9.0, [0.1])
        assert task_priority_deadline_monotonic(short) < (
            task_priority_deadline_monotonic(long)
        )

    def test_independent_of_arrival(self):
        early = make_task(0.0, 5.0, [0.1])
        late = make_task(100.0, 5.0, [0.1])
        assert task_priority_deadline_monotonic(early) == (
            task_priority_deadline_monotonic(late)
        )


class TestPeriodicSpec:
    def test_defaults_deadline_to_period(self):
        spec = periodic_spec("video", period=0.5, computation_times=[0.05])
        assert spec.deadline == 0.5

    def test_explicit_deadline(self):
        spec = periodic_spec("x", period=1.0, computation_times=[0.1], deadline=0.4)
        assert spec.deadline == 0.4

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            periodic_spec("x", period=0.0, computation_times=[0.1])

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            periodic_spec("x", period=1.0, computation_times=[0.1], deadline=-1.0)

    def test_negative_cost(self):
        with pytest.raises(ValueError):
            periodic_spec("x", period=1.0, computation_times=[-0.1])

    def test_stage_contributions(self):
        spec = periodic_spec("x", period=0.05, computation_times=[0.005, 0.01])
        assert spec.stage_contributions == pytest.approx((0.1, 0.2))

    def test_invocation_times(self):
        spec = periodic_spec("x", period=1.0, computation_times=[0.1], phase=0.25)
        arrivals = [t.arrival_time for t in spec.invocations(until=3.0)]
        assert arrivals == pytest.approx([0.25, 1.25, 2.25])

    def test_invocations_share_stream_id(self):
        spec = periodic_spec("x", period=1.0, computation_times=[0.1])
        tasks = list(spec.invocations(until=3.0))
        assert len({t.stream_id for t in tasks}) == 1
        assert tasks[0].stream_id == spec.stream_id

    def test_invocations_carry_parameters(self):
        spec = periodic_spec(
            "x", period=1.0, computation_times=[0.1, 0.2], importance=9
        )
        task = next(iter(spec.invocations(until=1.0)))
        assert task.computation_times == (0.1, 0.2)
        assert task.importance == 9
        assert task.deadline == 1.0

    def test_empty_window(self):
        spec = periodic_spec("x", period=1.0, computation_times=[0.1], phase=5.0)
        assert list(spec.invocations(until=5.0)) == []

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.001, max_value=50.0),
    )
    def test_invocation_count(self, period, phase, until):
        spec = periodic_spec("x", period=period, computation_times=[0.0], phase=phase)
        arrivals = [t.arrival_time for t in spec.invocations(until)]
        # Releases are phase + k * period for k = 0, 1, ...; exactly
        # those strictly before the window end must be produced.
        k = 0
        expected = []
        while phase + k * period < until:
            expected.append(phase + k * period)
            k += 1
        assert arrivals == expected
