"""Tier-1 gate: the repository's own source must lint clean.

Every future PR runs behind this test — a new unseeded RNG, raw float
equality on a deadline, or an infeasible literal task set fails the
suite, not just a style check.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_lints_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_examples_and_benchmarks_lint_clean():
    # Examples and benchmarks sit outside the scoped packages, so only
    # globally scoped rules apply — they must still hold.
    findings = lint_paths(
        [str(REPO_ROOT / "examples"), str(REPO_ROOT / "benchmarks")]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
