"""Tier-1 gate: the repository's own source must lint clean.

Every future PR runs behind this test — a new unseeded RNG, raw float
equality on a deadline, an infeasible literal task set, a blocking
call reachable from the event loop, or a nondeterministic value
flowing into the journal fails the suite, not just a style check.
"""

from pathlib import Path

from repro.lint import analyze_paths, lint_paths
from repro.lint.baseline import apply_baseline, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_lints_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_examples_and_benchmarks_lint_clean():
    # Examples and benchmarks sit outside the scoped packages, so only
    # globally scoped rules apply — they must still hold.
    findings = lint_paths(
        [str(REPO_ROOT / "examples"), str(REPO_ROOT / "benchmarks")]
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_whole_program_pass_is_clean():
    # The full analyzer: per-file rules, call-graph/taint rules, and
    # the unused-suppression audit, across everything CI lints.
    findings = analyze_paths(
        [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "benchmarks"),
        ]
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_committed_baseline_is_empty_and_loadable():
    # The tree carries no accepted debt: the committed baseline must
    # load, hold zero entries, and absorb nothing.
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert baseline == {}
    result = apply_baseline(analyze_paths([str(REPO_ROOT / "src")]), baseline)
    assert result.new == [] and result.suppressed == [] and result.expired == {}
