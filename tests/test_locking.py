"""repro.locking: ResourceSpec model, PCP blocking bounds, transactional
admission, wire encoding, and snapshot v3 round-trips."""

import json

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.bounds import region_budget
from repro.core.task import make_task
from repro.locking import (
    PCPBlockingState,
    ResourceSpec,
    canonical_resources,
    compute_betas,
    resources_from_wire,
    resources_to_wire,
)
from repro.serve.protocol import ProtocolError, task_from_wire, task_to_wire
from repro.serve.registry import PipelinePolicy
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT_V2,
    controller_snapshot,
    restore_controller,
)


# ----------------------------------------------------------------------
# ResourceSpec model
# ----------------------------------------------------------------------


class TestResourceSpec:
    def test_wire_round_trip(self):
        spec = ResourceSpec(stage=1, resource="gpu", max_length=0.25, max_requests=3)
        assert ResourceSpec.from_wire(spec.to_wire()) == spec

    def test_unknown_wire_field_rejected(self):
        doc = ResourceSpec(0, "r", 0.1).to_wire()
        doc["color"] = "red"
        with pytest.raises(ValueError, match="unknown resource spec"):
            ResourceSpec.from_wire(doc)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="requires"):
            ResourceSpec.from_wire({"stage": 0, "resource": "r"})

    def test_zero_length_section_is_legal(self):
        assert ResourceSpec(0, "r", 0.0).max_length == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stage": -1, "resource": "r", "max_length": 0.1},
            {"stage": 0, "resource": "", "max_length": 0.1},
            {"stage": 0, "resource": "r", "max_length": -0.1},
            {"stage": 0, "resource": "r", "max_length": float("inf")},
            {"stage": 0, "resource": "r", "max_length": 0.1, "max_requests": 0},
            {"stage": True, "resource": "r", "max_length": 0.1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResourceSpec(**kwargs)

    def test_canonical_order_is_stage_then_resource(self):
        specs = [
            ResourceSpec(1, "a", 0.1),
            ResourceSpec(0, "b", 0.2),
            ResourceSpec(0, "a", 0.3),
        ]
        ordered = canonical_resources(specs)
        assert [(s.stage, s.resource) for s in ordered] == [
            (0, "a"), (0, "b"), (1, "a"),
        ]

    def test_duplicate_stage_resource_pair_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            canonical_resources(
                [ResourceSpec(0, "r", 0.1), ResourceSpec(0, "r", 0.2)]
            )

    def test_same_resource_at_different_stages_is_legal(self):
        ordered = canonical_resources(
            [ResourceSpec(1, "r", 0.2), ResourceSpec(0, "r", 0.1)]
        )
        assert [s.stage for s in ordered] == [0, 1]

    def test_resources_from_wire_requires_a_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            resources_from_wire({"stage": 0})

    def test_wire_list_round_trip_is_canonical(self):
        specs = [ResourceSpec(1, "b", 0.2), ResourceSpec(0, "a", 0.1)]
        docs = resources_to_wire(specs)
        assert [d["stage"] for d in docs] == [0, 1]
        assert resources_from_wire(docs) == canonical_resources(specs)


# ----------------------------------------------------------------------
# PCP blocking bounds
# ----------------------------------------------------------------------


class TestPCPBounds:
    def test_single_task_never_blocks_itself(self):
        """With one task, B_ij = 0 at every stage: a job is only ever
        blocked by a *lower-priority* task's critical section."""
        state = PCPBlockingState(2)
        betas = state.add("solo", 1.0, [ResourceSpec(0, "r", 0.5)])
        assert betas == (0.0, 0.0)

    def test_lower_priority_section_blocks_tight_victim(self):
        state = PCPBlockingState(1)
        state.add("tight", 0.5, [ResourceSpec(0, "r", 0.0)])
        betas = state.add("loose", 5.0, [ResourceSpec(0, "r", 0.2)])
        # The loose task's 0.2 section blocks the tight one: 0.2 / 0.5.
        assert betas == (0.4,)

    def test_disjoint_resources_do_not_block(self):
        state = PCPBlockingState(1)
        state.add("tight", 0.5, [ResourceSpec(0, "a", 0.1)])
        betas = state.add("loose", 5.0, [ResourceSpec(0, "b", 0.2)])
        # Ceiling of "b" is the loose task's own priority — nobody is
        # blocked on a resource only its owner uses.
        assert betas == (0.0,)

    def test_zero_length_section_raises_ceiling_without_blocking(self):
        """A zero-length declaration contributes no blocking itself but
        lifts the resource ceiling, exposing a middle-priority task to a
        low-priority section it would otherwise never wait on."""
        without = PCPBlockingState(1)
        without.add("mid", 1.0, [])
        without.add("low", 4.0, [ResourceSpec(0, "r", 0.3)])
        assert without.betas() == (0.0,)

        with_ceiling = PCPBlockingState(1)
        with_ceiling.add("high", 0.25, [ResourceSpec(0, "r", 0.0)])
        with_ceiling.add("mid", 1.0, [])
        with_ceiling.add("low", 4.0, [ResourceSpec(0, "r", 0.3)])
        # mid (D=1.0) is now inside [ceiling, owner): beta = 0.3 / 1.0;
        # high itself is the worse victim: 0.3 / 0.25 = 1.2.
        assert with_ceiling.betas() == (1.2,)

    def test_same_resource_at_multiple_stages_charges_each_stage(self):
        state = PCPBlockingState(2)
        state.add("tight", 0.5, [ResourceSpec(0, "r", 0.0), ResourceSpec(1, "r", 0.0)])
        betas = state.add(
            "loose", 5.0, [ResourceSpec(0, "r", 0.1), ResourceSpec(1, "r", 0.3)]
        )
        assert betas == (0.1 / 0.5, 0.3 / 0.5)

    def test_blocking_is_max_not_sum(self):
        state = PCPBlockingState(1)
        state.add("tight", 1.0, [ResourceSpec(0, "r", 0.0)])
        state.add("loose-a", 5.0, [ResourceSpec(0, "r", 0.2)])
        state.add("loose-b", 6.0, [ResourceSpec(0, "r", 0.3)])
        # Under PCP a job blocks at most once per stage: the bound is
        # the longest single section, not the sum.
        assert state.betas() == (0.3,)

    def test_blocking_matrix_per_task_detail(self):
        state = PCPBlockingState(1)
        state.add("tight", 0.5, [ResourceSpec(0, "r", 0.0)])
        state.add("loose", 5.0, [ResourceSpec(0, "r", 0.2)])
        matrix = state.blocking_matrix()
        assert matrix["tight"] == (0.2,)
        assert matrix["loose"] == (0.0,)

    def test_add_remove_restores_bitwise(self):
        state = PCPBlockingState(2)
        state.add("a", 0.7, [ResourceSpec(0, "r", 0.0)])
        state.add("b", 3.0, [ResourceSpec(0, "r", 0.11), ResourceSpec(1, "s", 0.2)])
        before = state.betas()
        state.add("c", 9.0, [ResourceSpec(0, "r", 0.37), ResourceSpec(1, "s", 0.05)])
        state.remove("c")
        assert state.betas() == before
        assert state.recompute() == before

    def test_order_independence_bitwise(self):
        entries = [
            ("a", 0.7, (ResourceSpec(0, "r", 0.013),)),
            ("b", 3.0, (ResourceSpec(0, "r", 0.11), ResourceSpec(1, "s", 0.2))),
            ("c", 9.0, (ResourceSpec(1, "s", 0.07),)),
            ("d", 0.31, (ResourceSpec(0, "r", 0.0),)),
        ]
        forward = compute_betas(entries, 2)
        backward = compute_betas(reversed(entries), 2)
        assert forward == backward
        # Cached vector after incremental churn matches the pure
        # recomputation bitwise.
        state = PCPBlockingState(2)
        for task_id, deadline, specs in entries:
            state.add(task_id, deadline, specs)
        state.add("extra", 1.1, [ResourceSpec(0, "r", 0.4)])
        state.remove("extra")
        assert state.betas() == forward == state.recompute()

    def test_preview_matches_add_and_does_not_mutate(self):
        state = PCPBlockingState(1)
        state.add("tight", 0.5, [ResourceSpec(0, "r", 0.0)])
        before = state.betas()
        previewed = state.preview("loose", 5.0, [ResourceSpec(0, "r", 0.2)])
        assert state.betas() == before
        assert "loose" not in state
        committed = state.add("loose", 5.0, [ResourceSpec(0, "r", 0.2)])
        assert previewed == committed

    def test_duplicate_add_rejected_and_unknown_remove_is_noop(self):
        state = PCPBlockingState(1)
        state.add("a", 1.0)
        with pytest.raises(ValueError, match="already tracked"):
            state.add("a", 2.0)
        assert state.remove("ghost") == state.betas()

    def test_out_of_range_stage_and_bad_deadline_rejected(self):
        state = PCPBlockingState(1)
        with pytest.raises(ValueError, match="stage"):
            state.add("a", 1.0, [ResourceSpec(1, "r", 0.1)])
        with pytest.raises(ValueError, match="deadline"):
            state.add("b", 0.0)


# ----------------------------------------------------------------------
# Transactional admission
# ----------------------------------------------------------------------


def _task(task_id, deadline, resources=(), cost=0.001, now=0.0):
    return make_task(
        arrival_time=now,
        deadline=deadline,
        computation_times=[cost],
        resources=resources,
        task_id=task_id,
    )


class TestLockingAdmission:
    def test_locking_conflicts_with_static_betas(self):
        with pytest.raises(ValueError, match="static betas"):
            PipelineAdmissionController(1, betas=[0.1], locking=True)

    def test_policy_locking_conflicts_with_static_betas(self):
        with pytest.raises(ValueError):
            PipelinePolicy(num_stages=1, betas=(0.1,), locking=True)

    def test_blocking_heavy_arrival_is_refused(self):
        controller = PipelineAdmissionController(1, alpha=1.0, locking=True)
        assert controller.request(
            _task(1, 0.1, [ResourceSpec(0, "r", 0.0)]), now=0.0
        ).admitted
        before = (controller.betas, controller.budget)
        # Its own section would block the tight task for its entire
        # deadline: previewed beta = 1.0 empties the region, so the
        # arrival is refused on blocking alone (utilization is tiny).
        heavy = _task(2, 10.0, [ResourceSpec(0, "r", 0.1)])
        assert not controller.request(heavy, now=0.0).admitted
        assert not controller.is_admitted(2)
        assert (controller.betas, controller.budget) == before

    def test_admission_charges_blocking_to_the_budget(self):
        controller = PipelineAdmissionController(1, alpha=1.0, locking=True)
        controller.request(_task(1, 0.5, [ResourceSpec(0, "r", 0.0)]), now=0.0)
        assert controller.betas == (0.0,)
        assert controller.budget == 1.0
        controller.request(_task(2, 5.0, [ResourceSpec(0, "r", 0.2)]), now=0.0)
        assert controller.betas == (0.4,)
        assert controller.budget == region_budget(1.0, (0.4,))

    def test_withdraw_restores_budget_bitwise(self):
        controller = PipelineAdmissionController(1, alpha=0.9, locking=True)
        controller.request(_task(1, 0.5, [ResourceSpec(0, "r", 0.0)]), now=0.0)
        before = (controller.betas, controller.budget)
        controller.request(_task(2, 5.0, [ResourceSpec(0, "r", 0.2)]), now=0.0)
        assert controller.budget < before[1]
        controller.withdraw(2)
        assert (controller.betas, controller.budget) == before

    def test_expiry_releases_blocking(self):
        controller = PipelineAdmissionController(1, alpha=1.0, locking=True)
        controller.request(_task(1, 0.5, [ResourceSpec(0, "r", 0.0)]), now=0.0)
        controller.request(_task(2, 5.0, [ResourceSpec(0, "r", 0.2)]), now=0.0)
        assert controller.betas == (0.4,)
        controller.expire(6.0)
        assert controller.betas == (0.0,)
        assert controller.budget == 1.0

    def test_would_admit_does_not_mutate_blocking_state(self):
        controller = PipelineAdmissionController(1, alpha=1.0, locking=True)
        controller.request(_task(1, 0.5, [ResourceSpec(0, "r", 0.0)]), now=0.0)
        before = (controller.betas, controller.budget)
        assert controller.would_admit(
            _task(2, 5.0, [ResourceSpec(0, "r", 0.05)]), now=0.0
        )
        assert (controller.betas, controller.budget) == before


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestTaskWire:
    def test_resources_round_trip(self):
        task = _task(7, 2.0, [ResourceSpec(0, "gpu", 0.05, max_requests=2)])
        doc = task_to_wire(task)
        assert doc["resources"] == [
            {"stage": 0, "resource": "gpu", "max_length": 0.05, "max_requests": 2}
        ]
        assert task_from_wire(doc).resources == task.resources

    def test_resource_free_task_omits_the_field(self):
        assert "resources" not in task_to_wire(_task(7, 2.0))

    def test_malformed_resources_raise_protocol_error(self):
        doc = task_to_wire(_task(7, 2.0))
        doc["resources"] = {"stage": 0}
        with pytest.raises(ProtocolError):
            task_from_wire(doc)
        doc["resources"] = [{"stage": 0, "resource": "r", "max_length": 0.1, "x": 1}]
        with pytest.raises(ProtocolError):
            task_from_wire(doc)


# ----------------------------------------------------------------------
# Snapshot v3
# ----------------------------------------------------------------------


def _locked_controller():
    controller = PipelineAdmissionController(2, alpha=0.9, locking=True)
    assert controller.request(
        make_task(
            arrival_time=0.0,
            deadline=0.5,
            computation_times=[0.01, 0.01],
            resources=[ResourceSpec(0, "r", 0.0)],
            task_id=1,
        ),
        now=0.0,
    ).admitted
    assert controller.request(
        make_task(
            arrival_time=0.0,
            deadline=5.0,
            computation_times=[0.01, 0.01],
            resources=[ResourceSpec(0, "r", 0.07), ResourceSpec(1, "s", 0.04)],
            task_id=2,
        ),
        now=0.0,
    ).admitted
    return controller


class TestSnapshotV3:
    def test_locking_round_trip_is_bitwise(self):
        controller = _locked_controller()
        state = controller_snapshot(controller)
        assert state["locking"] is True
        restored = restore_controller(state)
        assert restored.locking
        assert restored.betas == controller.betas
        assert restored.budget == controller.budget
        assert json.dumps(controller_snapshot(restored), sort_keys=True) == (
            json.dumps(state, sort_keys=True)
        )
        # The restored engine keeps enforcing: the same blocking-heavy
        # arrival is refused on both sides.
        heavy = make_task(
            arrival_time=0.0,
            deadline=20.0,
            computation_times=[0.01, 0.01],
            resources=[ResourceSpec(0, "r", 0.5)],
            task_id=3,
        )
        # Its 0.5 section covers the tight task's whole deadline:
        # previewed beta_0 = 1.0 empties the region on both sides.
        assert not restored.request(heavy, now=0.0).admitted

    def test_tampered_beta_vector_is_refused(self):
        state = controller_snapshot(_locked_controller())
        state["betas"] = [0.0, 0.0]
        with pytest.raises(ValueError):
            restore_controller(state)

    def test_tampered_resources_are_refused(self):
        state = controller_snapshot(_locked_controller())
        for record in state["admitted"]:
            record["resources"] = []
        with pytest.raises(ValueError):
            restore_controller(state)

    def test_v2_document_still_restores(self):
        controller = PipelineAdmissionController(2, alpha=0.9, betas=[0.05, 0.05])
        controller.request(
            make_task(
                arrival_time=0.0,
                deadline=1.0,
                computation_times=[0.01, 0.01],
                task_id=1,
            ),
            now=0.0,
        )
        state = controller_snapshot(controller)
        state["format"] = SNAPSHOT_FORMAT_V2
        del state["locking"]
        for record in state["admitted"]:
            del record["deadline"]
            del record["resources"]
        restored = restore_controller(state)
        assert not restored.locking
        assert restored.betas == (0.05, 0.05)
        assert restored.is_admitted(1)
