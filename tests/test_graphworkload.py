"""Tests for DAG workload generation and the convenience runner."""

import random

import pytest

from repro.core.dag import TaskGraph
from repro.sim.graphworkload import (
    GraphTemplate,
    GraphWorkload,
    run_graph_simulation,
)


def diamond():
    return TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )


def chain():
    return TaskGraph(
        resource_of={"a": "R1", "b": "R2"},
        edges=[("a", "b")],
    )


def template(name="d", graph=None, costs=None, weight=1.0):
    graph = graph if graph is not None else diamond()
    costs = costs if costs is not None else {n: 0.5 for n in graph.resource_of}
    return GraphTemplate(name=name, graph=graph, mean_costs=costs, weight=weight)


class TestGraphTemplate:
    def test_mean_total_cost(self):
        t = template(costs={1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0})
        assert t.mean_total_cost == 10.0

    def test_missing_costs_rejected(self):
        with pytest.raises(ValueError):
            GraphTemplate("bad", diamond(), {1: 1.0})

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            template(costs={1: -1.0, 2: 0.0, 3: 0.0, 4: 0.0})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            template(weight=0.0)


class TestGraphWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            GraphWorkload((), 1.0, (1.0, 2.0))
        with pytest.raises(ValueError):
            GraphWorkload((template(),), 0.0, (1.0, 2.0))
        with pytest.raises(ValueError):
            GraphWorkload((template(),), 1.0, (2.0, 1.0))

    def test_resources_union(self):
        extra = TaskGraph(resource_of={"x": "R9"}, edges=[])
        workload = GraphWorkload(
            (template(), template("e", extra, {"x": 1.0})),
            arrival_rate=1.0,
            deadline_range=(10.0, 20.0),
        )
        assert workload.resources() == ["R1", "R2", "R3", "R4", "R9"]

    def test_deterministic_by_seed(self):
        workload = GraphWorkload(
            (template(),), arrival_rate=2.0, deadline_range=(10.0, 20.0)
        )
        a = list(workload.tasks(50.0, random.Random(3)))
        b = list(workload.tasks(50.0, random.Random(3)))
        assert [t.arrival_time for t in a] == [t.arrival_time for t in b]
        assert [tuple(sorted(t.costs.items())) for t in a] == [
            tuple(sorted(t.costs.items())) for t in b
        ]

    def test_deadlines_in_range(self):
        workload = GraphWorkload(
            (template(),), arrival_rate=2.0, deadline_range=(10.0, 20.0)
        )
        for task in workload.tasks(100.0, random.Random(1)):
            assert 10.0 <= task.deadline <= 20.0

    def test_template_mixture(self):
        workload = GraphWorkload(
            (template("d"), template("c", chain(), {"a": 0.5, "b": 0.5}, weight=3.0)),
            arrival_rate=5.0,
            deadline_range=(10.0, 20.0),
        )
        tasks = list(workload.tasks(200.0, random.Random(2)))
        chains = sum(1 for t in tasks if len(t.graph.resource_of) == 2)
        # Weight 3:1 -> roughly 75% chains.
        assert 0.6 < chains / len(tasks) < 0.9

    def test_zero_mean_cost_stays_zero(self):
        t = template(costs={1: 0.0, 2: 1.0, 3: 1.0, 4: 0.0})
        workload = GraphWorkload((t,), arrival_rate=1.0, deadline_range=(10.0, 20.0))
        for task in workload.tasks(30.0, random.Random(4)):
            assert task.costs[1] == 0.0
            assert task.costs[4] == 0.0


class TestRunGraphSimulation:
    def make_workload(self, rate=1.0):
        return GraphWorkload(
            (template(),), arrival_rate=rate, deadline_range=(20.0, 60.0)
        )

    def test_no_misses_under_admission(self):
        report = run_graph_simulation(self.make_workload(rate=1.5), horizon=400.0, seed=5)
        assert report.admitted > 0
        assert report.miss_ratio() == 0.0

    def test_overload_rejects(self):
        report = run_graph_simulation(self.make_workload(rate=6.0), horizon=300.0, seed=5)
        assert report.rejected > 0
        assert report.miss_ratio() == 0.0

    def test_reset_toggle(self):
        on = run_graph_simulation(self.make_workload(rate=3.0), horizon=300.0, seed=5)
        off = run_graph_simulation(
            self.make_workload(rate=3.0), horizon=300.0, seed=5, reset_on_idle=False
        )
        assert on.accept_ratio >= off.accept_ratio

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            run_graph_simulation(self.make_workload(), horizon=10.0, warmup_fraction=1.0)
