"""Tests for Section-5 reservation planning (Table 1 arithmetic)."""

import math

import pytest

from repro.core.reservation import CriticalTask, build_reservation
from repro.core.task import periodic_spec


class TestCriticalTask:
    def test_stage_contribution(self):
        t = CriticalTask("wd", deadline=0.5, computation_times=(0.1, 0.065, 0.03))
        assert t.stage_contribution(0) == pytest.approx(0.2)
        assert t.stage_contribution(1) == pytest.approx(0.13)
        assert t.stage_contribution(2) == pytest.approx(0.06)

    def test_from_periodic(self):
        spec = periodic_spec("wt", period=0.05, computation_times=[0.005, 0.005, 0.005])
        t = CriticalTask.from_periodic(spec, exclusive_stages=[2])
        assert t.deadline == 0.05
        assert t.computation_times == (0.005, 0.005, 0.005)
        assert t.exclusive_stages == (2,)


class TestBuildReservation:
    def tsce_tasks(self):
        return [
            CriticalTask(
                "Weapon Detection", 0.5, (0.100, 0.065, 0.030), exclusive_stages=(2,)
            ),
            CriticalTask(
                "Weapon Targeting", 0.050, (0.005, 0.005, 0.005), exclusive_stages=(2,)
            ),
            CriticalTask("UAV Video", 0.5, (0.050, 0.010, 0.050), exclusive_stages=(2,)),
        ]

    def test_tsce_reserved_vector(self):
        """The paper's Section-5 numbers: 0.4 / 0.25 / 0.1."""
        plan = build_reservation(self.tsce_tasks(), num_stages=3)
        assert plan.reserved == pytest.approx((0.4, 0.25, 0.1))

    def test_tsce_region_value(self):
        """Eq. 13 value 0.93 < 1: the critical set is schedulable."""
        plan = build_reservation(self.tsce_tasks(), num_stages=3)
        assert plan.region_value == pytest.approx(0.93, abs=0.005)
        assert plan.feasible
        assert plan.headroom == pytest.approx(1 - plan.region_value)

    def test_exclusive_stage_takes_max(self):
        tasks = [
            CriticalTask("a", 1.0, (0.0, 0.3), exclusive_stages=(1,)),
            CriticalTask("b", 1.0, (0.0, 0.2), exclusive_stages=(1,)),
        ]
        plan = build_reservation(tasks, num_stages=2)
        assert plan.reserved[1] == pytest.approx(0.3)

    def test_mixed_exclusive_and_additive(self):
        tasks = [
            CriticalTask("a", 1.0, (0.0, 0.3), exclusive_stages=(1,)),
            CriticalTask("b", 1.0, (0.0, 0.2)),  # additive
        ]
        plan = build_reservation(tasks, num_stages=2)
        assert plan.reserved[1] == pytest.approx(0.5)

    def test_additive_default(self):
        tasks = [
            CriticalTask("a", 1.0, (0.2,)),
            CriticalTask("b", 2.0, (0.4,)),
        ]
        plan = build_reservation(tasks, num_stages=1)
        assert plan.reserved == pytest.approx((0.4,))

    def test_infeasible_detected(self):
        tasks = [CriticalTask("hog", 1.0, (0.5, 0.5))]
        plan = build_reservation(tasks, num_stages=2)
        assert not plan.feasible

    def test_saturating_reservation_infinite_value(self):
        tasks = [CriticalTask("full", 1.0, (1.0,))]
        plan = build_reservation(tasks, num_stages=1)
        assert plan.region_value == math.inf
        assert not plan.feasible

    def test_per_task_breakdown(self):
        plan = build_reservation(self.tsce_tasks(), num_stages=3)
        assert plan.per_task["Weapon Detection"] == pytest.approx((0.2, 0.13, 0.06))
        assert plan.per_task["Weapon Targeting"] == pytest.approx((0.1, 0.1, 0.1))
        assert plan.per_task["UAV Video"] == pytest.approx((0.1, 0.02, 0.1))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_reservation([CriticalTask("x", 1.0, (0.1,))], num_stages=2)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            build_reservation([CriticalTask("x", 0.0, (0.1,))], num_stages=1)

    def test_empty_set(self):
        plan = build_reservation([], num_stages=3)
        assert plan.reserved == (0.0, 0.0, 0.0)
        assert plan.feasible

    def test_alpha_shrinks_budget(self):
        plan = build_reservation(self.tsce_tasks(), num_stages=3, alpha=0.9)
        assert plan.budget == pytest.approx(0.9)
        assert not plan.feasible  # 0.93 > 0.9

    def test_betas_shrink_budget(self):
        plan = build_reservation(
            self.tsce_tasks(), num_stages=3, betas=[0.05, 0.05, 0.05]
        )
        assert plan.budget == pytest.approx(0.85)
        assert not plan.feasible
