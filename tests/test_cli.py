"""Tests for the experiment-harness CLI (``python -m repro.experiments``)."""

import csv

import pytest

from repro.experiments.__main__ import ARTIFACTS, main, write_csv
from repro.experiments.common import ExperimentResult, Series, SeriesPoint


class TestArtifactsRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(ARTIFACTS) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "tab1",
            "ablations",
            "extdag",
        }


class TestCsvWriter:
    def make_result(self):
        return ExperimentResult(
            experiment_id="X",
            title="t",
            x_label="x",
            y_label="y",
            series=[
                Series("a", [SeriesPoint(1.0, 0.5), SeriesPoint(2.0, 0.6)]),
                Series("b", [SeriesPoint(1.0, 0.7)]),
            ],
        )

    def test_long_format(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([self.make_result()], str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["experiment", "series", "x", "y"]
        assert rows[1] == ["X", "a", "1.0", "0.5"]
        assert len(rows) == 4

    def test_multiple_results(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([self.make_result(), self.make_result()], str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "tab1" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_run_single_artifact_with_csv(self, tmp_path, capsys, monkeypatch):
        # Swap in a fast stub so the CLI path is exercised without a
        # multi-minute simulation.
        stub_result = ExperimentResult(
            experiment_id="FIG4",
            title="stub",
            x_label="x",
            y_label="y",
            series=[Series("s", [SeriesPoint(1.0, 0.9)])],
        )
        monkeypatch.setitem(ARTIFACTS, "fig4", lambda: [stub_result])
        path = tmp_path / "fig4.csv"
        assert main(["fig4", "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "FIG4: stub" in out
        assert path.exists()
