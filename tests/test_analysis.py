"""Tests for the analytical baselines (uniprocessor, periodic, RTA)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.periodic import (
    harmonic_chain_bound,
    harmonic_chain_count,
    hyperbolic_bound_holds,
    is_liu_layland_schedulable,
    liu_layland_bound,
    rate_monotonic_priorities,
)
from repro.analysis.responsetime import (
    PeriodicStageTask,
    holistic_pipeline_analysis,
    response_time_analysis,
)
from repro.analysis.singlenode import (
    is_uniprocessor_feasible,
    max_admissible_contribution,
    uniprocessor_bound,
)
from repro.core.bounds import UNIPROCESSOR_APERIODIC_BOUND


class TestUniprocessorBound:
    def test_default_value(self):
        assert uniprocessor_bound() == pytest.approx(2 - math.sqrt(2))

    def test_matches_paper_closed_form(self):
        # The paper quotes U <= 1 / (1 + sqrt(1/2)).
        assert uniprocessor_bound() == pytest.approx(1 / (1 + math.sqrt(0.5)))

    def test_alpha_shrinks(self):
        assert uniprocessor_bound(alpha=0.5) < uniprocessor_bound()

    def test_blocking_shrinks(self):
        assert uniprocessor_bound(beta=0.3) < uniprocessor_bound()

    def test_feasibility_check(self):
        assert is_uniprocessor_feasible(0.5)
        assert not is_uniprocessor_feasible(0.6)
        assert not is_uniprocessor_feasible(1.0)

    def test_headroom(self):
        assert max_admissible_contribution(0.0) == pytest.approx(
            UNIPROCESSOR_APERIODIC_BOUND
        )
        assert max_admissible_contribution(0.9) == 0.0

    def test_aperiodic_below_liu_layland_limit(self):
        """The aperiodic bound (~0.586) is below ln 2 (~0.693): the
        price of making no periodicity assumption."""
        assert uniprocessor_bound() < math.log(2)


class TestLiuLayland:
    def test_single_task(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)

    def test_two_tasks(self):
        assert liu_layland_bound(2) == pytest.approx(2 * (math.sqrt(2) - 1))

    def test_limit_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2), abs=1e-4)

    def test_monotone_decreasing(self):
        values = [liu_layland_bound(n) for n in range(1, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)

    def test_schedulability_check(self):
        assert is_liu_layland_schedulable([0.3, 0.3])
        assert not is_liu_layland_schedulable([0.5, 0.4])
        assert is_liu_layland_schedulable([])

    def test_negative_utilization_rejected(self):
        with pytest.raises(ValueError):
            is_liu_layland_schedulable([-0.1])


class TestHyperbolicBound:
    def test_accepts_when_product_within_two(self):
        assert hyperbolic_bound_holds([0.5, 0.3])  # 1.5 * 1.3 = 1.95

    def test_rejects_above(self):
        assert not hyperbolic_bound_holds([0.5, 0.4])  # 1.5 * 1.4 = 2.1

    def test_empty(self):
        assert hyperbolic_bound_holds([])

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8)
    )
    def test_dominates_liu_layland(self, utils):
        """Bini et al.: every L&L-schedulable set passes the hyperbolic
        test too."""
        if is_liu_layland_schedulable(utils):
            assert hyperbolic_bound_holds(utils)


class TestHarmonicChains:
    def test_single_chain(self):
        assert harmonic_chain_count([1.0, 2.0, 4.0, 8.0]) == 1

    def test_two_chains(self):
        assert harmonic_chain_count([1.0, 2.0, 3.0]) == 2  # {1,2}|{3} or {1,3}|{2}

    def test_all_independent(self):
        assert harmonic_chain_count([5.0, 7.0, 11.0]) == 3

    def test_bound_uses_chain_count(self):
        # One harmonic chain -> bound 1.0 regardless of task count.
        assert harmonic_chain_bound([1.0, 2.0, 4.0, 8.0]) == pytest.approx(1.0)

    def test_bound_empty(self):
        assert harmonic_chain_bound([]) == 1.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            harmonic_chain_count([0.0])

    def test_rm_priorities(self):
        assert rate_monotonic_priorities([10.0, 1.0, 5.0]) == [1, 2, 0]

    def test_rm_priorities_invalid(self):
        with pytest.raises(ValueError):
            rate_monotonic_priorities([1.0, -2.0])


class TestResponseTimeAnalysis:
    def test_single_task(self):
        tasks = [PeriodicStageTask("a", period=10.0, wcet=3.0)]
        assert response_time_analysis(tasks) == [3.0]

    def test_classic_two_task_example(self):
        tasks = [
            PeriodicStageTask("hi", period=5.0, wcet=2.0),
            PeriodicStageTask("lo", period=20.0, wcet=6.0),
        ]
        r = response_time_analysis(tasks)
        assert r[0] == 2.0
        # lo: 6 + ceil(R/5)*2 -> fixed point at R=10 (6 + 2*ceil(10/5)).
        assert r[1] == 10.0

    def test_blocking_adds_directly(self):
        tasks = [PeriodicStageTask("a", period=10.0, wcet=3.0, blocking=1.5)]
        assert response_time_analysis(tasks) == [4.5]

    def test_jitter_increases_interference(self):
        base = [
            PeriodicStageTask("hi", period=5.0, wcet=2.0),
            PeriodicStageTask("lo", period=100.0, wcet=2.5),
        ]
        jittered = [
            PeriodicStageTask("hi", period=5.0, wcet=2.0, jitter=4.0),
            PeriodicStageTask("lo", period=100.0, wcet=2.5),
        ]
        assert response_time_analysis(jittered)[1] >= response_time_analysis(base)[1]

    def test_overload_returns_none(self):
        tasks = [
            PeriodicStageTask("hi", period=2.0, wcet=2.0),
            PeriodicStageTask("lo", period=100.0, wcet=1.0),
        ]
        r = response_time_analysis(tasks)
        assert r[0] == 2.0
        assert r[1] is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicStageTask("bad", period=0.0, wcet=1.0)
        with pytest.raises(ValueError):
            PeriodicStageTask("bad", period=1.0, wcet=-1.0)
        with pytest.raises(ValueError):
            PeriodicStageTask("bad", period=1.0, wcet=0.5, jitter=-1.0)


class TestHolisticAnalysis:
    def test_single_stage_reduces_to_rta(self):
        result = holistic_pipeline_analysis(
            periods=[5.0, 20.0],
            stage_wcets=[[2.0], [6.0]],
            end_to_end_deadlines=[5.0, 20.0],
        )
        assert result.end_to_end == [2.0, 10.0]
        assert result.schedulable == [True, True]

    def test_two_stage_pipeline(self):
        result = holistic_pipeline_analysis(
            periods=[10.0],
            stage_wcets=[[2.0, 3.0]],
            end_to_end_deadlines=[10.0],
        )
        assert result.end_to_end == [5.0]
        assert result.schedulable == [True]

    def test_unschedulable_detected(self):
        result = holistic_pipeline_analysis(
            periods=[2.0, 50.0],
            stage_wcets=[[1.9], [5.0]],
            end_to_end_deadlines=[2.0, 50.0],
        )
        assert result.schedulable[1] is False

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            holistic_pipeline_analysis([1.0], [[1.0], [2.0]], [1.0])
        with pytest.raises(ValueError):
            holistic_pipeline_analysis([1.0, 2.0], [[1.0], [1.0, 2.0]], [1.0, 2.0])

    def test_empty(self):
        result = holistic_pipeline_analysis([], [], [])
        assert result.end_to_end == []

    def test_jitter_propagates_downstream(self):
        """The low-priority task's stage-2 response accounts for the
        high-priority task's stage-1 jitter."""
        result = holistic_pipeline_analysis(
            periods=[10.0, 40.0],
            stage_wcets=[[2.0, 2.0], [3.0, 3.0]],
            end_to_end_deadlines=[10.0, 40.0],
        )
        assert all(result.schedulable)
        lo_stage2 = result.response_times[1][1]
        # Without jitter the interference would be ceil(R/10)*2; with
        # the upstream response as jitter it can only grow.
        assert lo_stage2 >= 5.0


class TestAdmissionComparison:
    def make(self, *specs):
        from repro.analysis.comparison import PeriodicTaskParams

        return [PeriodicTaskParams(period=p, wcet=c, deadline=d) for p, c, d in specs]

    def test_empty_set_accepted_everywhere(self):
        from repro.analysis.comparison import compare_periodic_admission

        result = compare_periodic_admission([])
        assert result.accepted_by() == [
            "aperiodic-region",
            "liu-layland",
            "hyperbolic",
            "rta",
        ]

    def test_light_set_accepted_everywhere(self):
        from repro.analysis.comparison import compare_periodic_admission

        result = compare_periodic_admission(
            self.make((10.0, 1.0, None), (20.0, 2.0, None))
        )
        assert result.aperiodic_region
        assert result.liu_layland
        assert result.hyperbolic
        assert result.rta
        assert result.total_utilization == pytest.approx(0.2)
        assert result.synthetic_peak == pytest.approx(0.2)

    def test_aperiodic_region_is_most_pessimistic(self):
        """A set at 40%+40% utilization: RTA and the periodic bounds
        accept, the aperiodic coincident-release test rejects."""
        from repro.analysis.comparison import compare_periodic_admission

        result = compare_periodic_admission(
            self.make((10.0, 4.0, None), (20.0, 8.0, None))
        )
        assert not result.aperiodic_region  # 0.8 > 0.586
        assert result.hyperbolic  # 1.4 * 1.4 = 1.96 <= 2
        assert result.rta

    def test_hyperbolic_dominates_liu_layland_here_too(self):
        from repro.analysis.comparison import compare_periodic_admission

        # Three tasks at 23% each: sum 0.69 < LL3 (~0.7798)? LL3 = 0.7798
        result = compare_periodic_admission(
            self.make((10.0, 2.3, None), (20.0, 4.6, None), (40.0, 9.2, None))
        )
        if result.liu_layland:
            assert result.hyperbolic

    def test_overloaded_set_rejected_everywhere(self):
        from repro.analysis.comparison import compare_periodic_admission

        result = compare_periodic_admission(
            self.make((10.0, 6.0, None), (10.0, 6.0, None))
        )
        assert result.accepted_by() == []

    def test_constrained_deadlines_fall_back_to_rta(self):
        from repro.analysis.comparison import compare_periodic_admission

        result = compare_periodic_admission(self.make((10.0, 1.0, 2.0)))
        assert not result.liu_layland  # not applicable
        assert not result.hyperbolic
        assert result.rta
        assert result.worst_response_times == (1.0,)

    def test_rta_at_least_as_powerful_as_aperiodic_region(self):
        """Any implicit-deadline set the aperiodic region accepts is
        also RTA-schedulable: the region is sufficient."""
        import itertools
        from repro.analysis.comparison import compare_periodic_admission

        for c1, c2 in itertools.product((1.0, 2.0, 3.0), repeat=2):
            result = compare_periodic_admission(
                self.make((10.0, c1, None), (15.0, c2, None))
            )
            if result.aperiodic_region:
                assert result.rta

    def test_validation(self):
        from repro.analysis.comparison import PeriodicTaskParams

        with pytest.raises(ValueError):
            PeriodicTaskParams(period=0.0, wcet=1.0)
        with pytest.raises(ValueError):
            PeriodicTaskParams(period=1.0, wcet=-1.0)
        with pytest.raises(ValueError):
            PeriodicTaskParams(period=1.0, wcet=0.5, deadline=0.0)
