"""Retry-storm hardening: the client retry budget and full jitter.

ISSUE-9 satellite: backoff paces one client, but a fleet of clients
retrying into a degraded gateway multiplies offered load exactly when
capacity is lowest.  These tests pin the two brakes added for that:

* :class:`RetryBudget` — a token bucket shared across clients that
  caps fleet-wide retry amplification (each success earns ``refill``
  tokens, each retry spends one), and
* ``RetryPolicy(full_jitter=True)`` — delays drawn uniform in
  ``[0, base * multiplier**k]`` so synchronized retriers spread out
  over the whole window.

Everything runs on the FakeTime clock: the storm is replayed dry and
every assertion is exact arithmetic on the schedule.
"""

import random

import pytest

from repro.serve.client import (
    GatewayClient,
    GatewayTimeout,
    InProcessTransport,
    RetryBudget,
    RetryPolicy,
    RetryingGatewayClient,
)
from repro.serve.gateway import AdmissionGateway


class FakeTime:
    """A clock that only sleep() advances — the schedule, replayed dry."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, delay: float) -> None:
        self.sleeps.append(delay)
        self.now += delay


class _OutageTransport(InProcessTransport):
    """Times out every submit until ``recover()`` is called."""

    def __init__(self, gateway) -> None:
        super().__init__(gateway)
        self.attempts = 0
        self.down = True

    def recover(self) -> None:
        self.down = False

    def submit(self, line):
        self.attempts += 1
        if self.down:
            raise GatewayTimeout("injected outage")
        return super().submit(line)


def _flat_policy(max_attempts=4):
    # base 1s, no growth, no jitter: the storm schedule is exact.
    return RetryPolicy(
        base_delay=1.0, multiplier=1.0, max_attempts=max_attempts, jitter=0.0
    )


def _retrying(transport, policy, fake, budget=None, prefix="rid"):
    return RetryingGatewayClient(
        connect=lambda: GatewayClient(transport),
        policy=policy,
        budget=budget,
        rid_factory=iter(f"{prefix}-{n}" for n in range(1000)).__next__,
        clock=fake.clock,
        sleep=fake.sleep,
    )


class TestRetryBudgetBucket:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.0)
        with pytest.raises(ValueError):
            RetryBudget(capacity=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(refill=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(initial=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(capacity=float("inf"))

    def test_spend_and_deposit_arithmetic(self):
        budget = RetryBudget(capacity=2.0, refill=0.5, initial=1.0)
        assert budget.try_spend() is True
        assert budget.tokens == 0.0
        assert budget.try_spend() is False
        assert budget.denied == 1
        budget.deposit()
        budget.deposit()
        assert budget.tokens == 1.0
        assert budget.try_spend() is True
        # Deposits never bank past capacity.
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == 2.0

    def test_initial_is_clamped_to_capacity(self):
        assert RetryBudget(capacity=3.0, initial=50.0).tokens == 3.0

    def test_fractional_refill_needs_whole_tokens(self):
        # 0.1-per-success refill: nine successes are not enough credit
        # for one retry; the tenth is.
        budget = RetryBudget(capacity=10.0, refill=0.1, initial=0.0)
        for _ in range(9):
            budget.deposit()
        assert budget.try_spend() is False
        budget.deposit()
        assert budget.try_spend() is True


class TestBudgetedClient:
    def test_denied_budget_abandons_despite_attempt_and_deadline_room(self):
        fake = FakeTime()
        transport = _OutageTransport(AdmissionGateway())
        budget = RetryBudget(capacity=5.0, initial=0.0)
        client = _retrying(
            transport, _flat_policy(max_attempts=10), fake, budget=budget
        )
        with pytest.raises(GatewayTimeout):
            client.call("health", deadline=100.0)
        assert client.retries == 0
        assert client.budget_denied == 1
        assert client.abandoned == 1
        assert fake.sleeps == []  # denied *before* sleeping
        assert transport.attempts == 1

    def test_success_deposits_refill(self):
        fake = FakeTime()
        transport = _OutageTransport(AdmissionGateway())
        transport.recover()
        budget = RetryBudget(capacity=10.0, refill=0.5, initial=0.0)
        client = _retrying(transport, _flat_policy(), fake, budget=budget)
        for _ in range(4):
            assert client.call("health")["ok"] is True
        assert budget.tokens == 2.0

    def test_attempt_exhaustion_is_not_counted_as_budget_denial(self):
        # The attempt cap fires before the budget is consulted, so a
        # client that simply ran out of attempts leaves the bucket
        # untouched by the final failure.
        fake = FakeTime()
        transport = _OutageTransport(AdmissionGateway())
        budget = RetryBudget(capacity=10.0, initial=10.0)
        client = _retrying(transport, _flat_policy(max_attempts=3), fake, budget=budget)
        with pytest.raises(GatewayTimeout):
            client.call("health")
        assert client.retries == 2
        assert client.budget_denied == 0
        assert budget.tokens == 8.0


class TestRetryStorm:
    def _storm(self, budget):
        """Eight clients hammer a dead gateway, then four recover calls."""
        fake = FakeTime()
        transport = _OutageTransport(AdmissionGateway())
        clients = [
            _retrying(
                transport,
                _flat_policy(max_attempts=4),
                fake,
                budget=budget,
                prefix=f"c{n}",
            )
            for n in range(8)
        ]
        for client in clients:
            with pytest.raises(GatewayTimeout):
                client.call("health")
        during_outage = transport.attempts
        transport.recover()
        for client in clients[:4]:
            assert client.call("health")["ok"] is True
        return fake, transport, clients, during_outage

    def test_shared_budget_caps_fleet_amplification(self):
        # 5 banked tokens, 8 clients, 3 retries each if unconstrained
        # (24 fleet-wide).  The bucket admits exactly 5 retries:
        # client 0 takes 3 (then hits its attempt cap), client 1 takes
        # 2 and is denied the third, clients 2..7 are denied their
        # first.  Offered load during the outage is 13 submits, not 32.
        budget = RetryBudget(capacity=5.0, refill=0.5, initial=5.0)
        fake, transport, clients, during_outage = self._storm(budget)
        assert [c.retries for c in clients] == [3, 2, 0, 0, 0, 0, 0, 0]
        assert [c.budget_denied for c in clients] == [0, 1, 1, 1, 1, 1, 1, 1]
        assert sum(c.abandoned for c in clients) == 8
        assert during_outage == 13
        assert budget.denied == 7
        # The four recovery successes re-earn 0.5 each.
        assert budget.tokens == 2.0
        assert fake.sleeps == [1.0] * 5

    def test_unbudgeted_storm_baseline(self):
        # Same storm with no budget: every client burns its full
        # attempt allowance — the amplification the bucket prevents.
        fake, transport, clients, during_outage = self._storm(None)
        assert [c.retries for c in clients] == [3] * 8
        assert during_outage == 32
        assert fake.sleeps == [1.0] * 24

    def test_storm_is_deterministic(self):
        first = self._storm(RetryBudget(capacity=5.0, refill=0.5, initial=5.0))
        second = self._storm(RetryBudget(capacity=5.0, refill=0.5, initial=5.0))
        assert first[0].sleeps == second[0].sleeps
        assert [c.retries for c in first[2]] == [c.retries for c in second[2]]


class TestFullJitter:
    def test_delays_span_the_full_window(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_attempts=8, full_jitter=True, seed=7
        )
        rng = random.Random(policy.seed)
        delays = [policy.delay(attempt, rng) for attempt in range(6)]
        for attempt, delay in enumerate(delays):
            assert 0.0 <= delay <= 2.0**attempt
        # Seeded: the exact same schedule replays.
        replay = random.Random(7)
        assert delays == [policy.delay(attempt, replay) for attempt in range(6)]

    def test_full_jitter_overrides_the_symmetric_fraction(self):
        # jitter=0.0 would mean "no jitter" under the symmetric scheme;
        # full_jitter ignores the fraction entirely.
        policy = RetryPolicy(
            base_delay=1.0, multiplier=1.0, jitter=0.0, full_jitter=True, seed=1
        )
        rng = random.Random(policy.seed)
        delays = {policy.delay(0, rng) for _ in range(8)}
        assert len(delays) > 1
        assert all(0.0 <= delay <= 1.0 for delay in delays)

    def test_synchronized_retriers_decorrelate(self):
        # Two clients failing at the same instants sleep *different*
        # schedules under full jitter (distinct seeds), where the
        # no-jitter policy would march them in lockstep.
        schedules = []
        for seed in (11, 12):
            fake = FakeTime()
            transport = _OutageTransport(AdmissionGateway())
            client = _retrying(
                transport,
                RetryPolicy(
                    base_delay=1.0,
                    multiplier=2.0,
                    max_attempts=4,
                    full_jitter=True,
                    seed=seed,
                ),
                fake,
            )
            with pytest.raises(GatewayTimeout):
                client.call("health")
            schedules.append(fake.sleeps)
        assert len(schedules[0]) == len(schedules[1]) == 3
        assert schedules[0] != schedules[1]
