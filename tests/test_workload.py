"""Tests for workload generation (Section-4 experiment setups)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.workload import (
    PipelineWorkload,
    balanced_workload,
    imbalanced_two_stage_workload,
)


class TestPipelineWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineWorkload((), 1.0, (1.0, 2.0))
        with pytest.raises(ValueError):
            PipelineWorkload((1.0,), 0.0, (1.0, 2.0))
        with pytest.raises(ValueError):
            PipelineWorkload((1.0,), 1.0, (2.0, 1.0))
        with pytest.raises(ValueError):
            PipelineWorkload((0.0,), 1.0, (1.0, 2.0))

    def test_derived_quantities(self):
        w = PipelineWorkload((1.0, 3.0), arrival_rate=0.5, deadline_range=(100.0, 300.0))
        assert w.num_stages == 2
        assert w.mean_deadline == 200.0
        assert w.mean_total_cost == 4.0
        assert w.task_resolution == pytest.approx(50.0)
        assert w.offered_load(0) == pytest.approx(0.5)
        assert w.offered_load(1) == pytest.approx(1.5)
        assert w.bottleneck_load == pytest.approx(1.5)

    def test_same_seed_same_stream(self):
        w = balanced_workload(2, load=1.0)
        a = list(w.tasks(100.0, random.Random(5)))
        b = list(w.tasks(100.0, random.Random(5)))
        assert [t.arrival_time for t in a] == [t.arrival_time for t in b]
        assert [t.computation_times for t in a] == [t.computation_times for t in b]

    def test_different_seeds_differ(self):
        w = balanced_workload(2, load=1.0)
        a = list(w.tasks(100.0, random.Random(1)))
        b = list(w.tasks(100.0, random.Random(2)))
        assert [t.arrival_time for t in a] != [t.arrival_time for t in b]

    def test_arrivals_sorted_and_in_horizon(self):
        w = balanced_workload(3, load=1.5)
        tasks = list(w.tasks(200.0, random.Random(3)))
        arrivals = [t.arrival_time for t in tasks]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 200.0 for a in arrivals)

    def test_deadlines_within_range(self):
        w = balanced_workload(2, load=1.0, resolution=50.0, deadline_spread=0.2)
        lo, hi = w.deadline_range
        for t in w.tasks(500.0, random.Random(4)):
            assert lo <= t.deadline <= hi

    def test_mean_arrival_rate(self):
        w = balanced_workload(1, load=1.0, mean_stage_cost=2.0)
        tasks = list(w.tasks(20000.0, random.Random(6)))
        empirical_rate = len(tasks) / 20000.0
        assert empirical_rate == pytest.approx(w.arrival_rate, rel=0.05)

    def test_mean_costs(self):
        w = balanced_workload(2, load=1.0, mean_stage_cost=3.0)
        tasks = list(w.tasks(5000.0, random.Random(7)))
        mean0 = sum(t.computation_times[0] for t in tasks) / len(tasks)
        assert mean0 == pytest.approx(3.0, rel=0.1)


class TestBalancedWorkload:
    def test_resolution_relationship(self):
        w = balanced_workload(3, load=1.0, mean_stage_cost=2.0, resolution=40.0)
        assert w.task_resolution == pytest.approx(40.0)
        # Deadline range grows linearly with the number of stages.
        assert w.mean_deadline == pytest.approx(40.0 * 3 * 2.0)

    def test_load_sets_rate(self):
        w = balanced_workload(2, load=1.4, mean_stage_cost=0.5)
        assert w.arrival_rate == pytest.approx(2.8)
        assert w.offered_load(0) == pytest.approx(1.4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            balanced_workload(0, load=1.0)
        with pytest.raises(ValueError):
            balanced_workload(2, load=0.0)
        with pytest.raises(ValueError):
            balanced_workload(2, load=1.0, resolution=0.0)
        with pytest.raises(ValueError):
            balanced_workload(2, load=1.0, deadline_spread=1.0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_construction_consistent(self, n, load, resolution):
        w = balanced_workload(n, load=load, resolution=resolution)
        assert w.num_stages == n
        assert w.task_resolution == pytest.approx(resolution)
        assert w.offered_load(0) == pytest.approx(load)


class TestImbalancedWorkload:
    def test_balanced_midpoint(self):
        w = imbalanced_two_stage_workload(cost_ratio=1.0, bottleneck_load=1.0)
        assert w.mean_stage_costs[0] == pytest.approx(w.mean_stage_costs[1])

    def test_ratio_respected(self):
        w = imbalanced_two_stage_workload(cost_ratio=4.0, bottleneck_load=1.0)
        c1, c2 = w.mean_stage_costs
        assert c1 / c2 == pytest.approx(4.0)

    def test_total_cost_preserved(self):
        for ratio in (0.25, 1.0, 4.0):
            w = imbalanced_two_stage_workload(
                cost_ratio=ratio, bottleneck_load=1.0, total_mean_cost=2.0
            )
            assert sum(w.mean_stage_costs) == pytest.approx(2.0)

    def test_bottleneck_load_fixed(self):
        for ratio in (0.125, 0.5, 1.0, 2.0, 8.0):
            w = imbalanced_two_stage_workload(cost_ratio=ratio, bottleneck_load=1.2)
            assert w.bottleneck_load == pytest.approx(1.2)

    def test_reciprocal_ratios_symmetric(self):
        a = imbalanced_two_stage_workload(cost_ratio=4.0, bottleneck_load=1.0)
        b = imbalanced_two_stage_workload(cost_ratio=0.25, bottleneck_load=1.0)
        assert a.mean_stage_costs == pytest.approx(tuple(reversed(b.mean_stage_costs)))
        assert a.arrival_rate == pytest.approx(b.arrival_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            imbalanced_two_stage_workload(cost_ratio=0.0, bottleneck_load=1.0)
        with pytest.raises(ValueError):
            imbalanced_two_stage_workload(cost_ratio=1.0, bottleneck_load=0.0)
