"""Tests for critical sections under the priority ceiling protocol."""

import pytest

from repro.core.task import make_task
from repro.sim.engine import Simulator
from repro.sim.stage import Segment, Stage


def setup_stage():
    sim = Simulator()
    completions = []
    stage = Stage(
        sim,
        index=0,
        on_job_complete=lambda job: completions.append((sim.now, job.task.task_id)),
    )
    return sim, stage, completions


def key(task):
    return (task.deadline, float(task.task_id))


class TestUncontendedLocks:
    def test_single_job_with_critical_section(self):
        sim, stage, completions = setup_stage()
        t = make_task(0.0, 10.0, [3.0])
        stage.submit(
            t,
            key(t),
            segments=[Segment(1.0), Segment(1.0, lock="L"), Segment(1.0)],
        )
        sim.run()
        assert completions == [(3.0, t.task_id)]
        assert not stage.locks.blocked_jobs()

    def test_sequential_users_no_blocking(self):
        sim, stage, completions = setup_stage()
        a = make_task(0.0, 10.0, [1.0], task_id=9301)
        b = make_task(5.0, 10.0, [1.0], task_id=9302)
        stage.submit(a, key(a), segments=[Segment(1.0, lock="L")])
        sim.at(5.0, lambda: stage.submit(b, key(b), segments=[Segment(1.0, lock="L")]))
        sim.run()
        assert completions == [(1.0, 9301), (6.0, 9302)]


class TestBlocking:
    def test_high_priority_blocked_once_then_proceeds(self):
        """Classic PCP blocking: a low-priority job inside its critical
        section delays a high-priority job for at most one section."""
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [3.0], task_id=9311)
        high = make_task(0.0, 1.0, [2.0], task_id=9312)
        # Low: 1 open + 2 critical.  High arrives at t=2, inside low's CS.
        stage.submit(
            low, key(low), segments=[Segment(1.0), Segment(2.0, lock="L")]
        )
        sim.at(
            2.0,
            lambda: stage.submit(
                high, key(high), segments=[Segment(1.0, lock="L"), Segment(1.0)]
            ),
        )
        sim.run()
        # High preempts at 2.0 but blocks on L (held by low); low inherits
        # and finishes its CS at 3.0; high then runs [3,5).
        assert completions == [(3.0, 9311), (5.0, 9312)]

    def test_blocking_time_measured(self):
        sim, stage, _ = setup_stage()
        low = make_task(0.0, 100.0, [3.0], task_id=9321)
        high = make_task(0.0, 1.0, [1.0], task_id=9322)
        stage.submit(low, key(low), segments=[Segment(1.0), Segment(2.0, lock="L")])
        jobs = []
        sim.at(
            2.0,
            lambda: jobs.append(
                stage.submit(high, key(high), segments=[Segment(1.0, lock="L")])
            ),
        )
        sim.run()
        assert jobs[0].blocking_time == pytest.approx(1.0)

    def test_ceiling_blocks_unrelated_lock(self):
        """PCP's distinguishing rule: a job may be denied a FREE lock
        when another job holds a lock with a ceiling at or above its
        priority (this is what makes blocking happen at most once)."""
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [4.0], task_id=9331)
        mid = make_task(0.0, 10.0, [2.0], task_id=9332)
        high = make_task(0.0, 1.0, [1.0], task_id=9333)
        # Lock A's ceiling is raised to high's priority by registration.
        stage.locks.register_user("A", key(high))
        stage.submit(low, key(low), segments=[Segment(1.0), Segment(3.0, lock="A")])
        # Mid wants lock B (free), but low holds A whose ceiling >= mid:
        # PCP denies the acquisition.
        sim.at(
            2.0,
            lambda: stage.submit(
                mid, key(mid), segments=[Segment(2.0, lock="B")]
            ),
        )
        sim.run()
        # Mid preempts at 2.0 but cannot take B; low (inheriting) finishes
        # its CS at 4+1=... low: open [0,1), CS [1,2) preempt... timeline:
        # low CS starts at 1.0, runs to 2.0 (preempted by mid), mid blocks
        # on B, low resumes (inherits mid's priority), CS ends 1+3=5.0
        # (2 more units: [2,4)->4.0... CS consumed [1,2) = 1 of 3; resumes
        # [2,4]: ends at 4.0.  Mid then runs [4,6).
        assert completions == [(4.0, 9331), (6.0, 9332)]

    def test_no_deadlock_with_two_locks(self):
        """Under PCP the classic AB/BA deadlock cannot occur."""
        sim, stage, completions = setup_stage()
        t1 = make_task(0.0, 10.0, [2.0], task_id=9341)
        t2 = make_task(0.0, 5.0, [2.0], task_id=9342)
        stage.locks.register_user("A", key(t2))
        stage.locks.register_user("B", key(t2))
        stage.locks.register_user("A", key(t1))
        stage.locks.register_user("B", key(t1))
        stage.submit(t1, key(t1), segments=[Segment(1.0, lock="A"), Segment(1.0, lock="B")])
        sim.at(
            0.5,
            lambda: stage.submit(
                t2, key(t2), segments=[Segment(1.0, lock="B"), Segment(1.0, lock="A")]
            ),
        )
        sim.run(until=100.0)
        # Both complete — no deadlock.
        assert sorted(tid for _, tid in completions) == [9341, 9342]

    def test_waiters_acquire_in_priority_order(self):
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [2.0], task_id=9351)
        mid = make_task(0.0, 10.0, [1.0], task_id=9352)
        high = make_task(0.0, 1.0, [1.0], task_id=9353)
        stage.submit(low, key(low), segments=[Segment(2.0, lock="L")])
        sim.at(0.5, lambda: stage.submit(mid, key(mid), segments=[Segment(1.0, lock="L")]))
        sim.at(0.6, lambda: stage.submit(high, key(high), segments=[Segment(1.0, lock="L")]))
        sim.run()
        # After low releases at 2.0, high (not mid) gets the lock first.
        assert completions == [(2.0, 9351), (3.0, 9353), (4.0, 9352)]

    def test_double_acquire_rejected(self):
        sim, stage, _ = setup_stage()
        t = make_task(0.0, 10.0, [2.0])
        job = stage.submit(t, key(t), segments=[Segment(2.0, lock="L")])
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            stage.locks.acquire(job, "L")

    def test_release_requires_holder(self):
        sim, stage, _ = setup_stage()
        t = make_task(0.0, 10.0, [1.0])
        job = stage.submit(t, key(t), duration=1.0)
        with pytest.raises(ValueError):
            stage.locks.release(job, "L")


class TestPriorityInheritance:
    def test_holder_inherits_blocked_priority(self):
        """While high is blocked on low's lock, a medium job must NOT
        run in between (unbounded priority inversion prevented)."""
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [3.0], task_id=9361)
        mid = make_task(0.0, 10.0, [5.0], task_id=9362)
        high = make_task(0.0, 1.0, [1.0], task_id=9363)
        stage.submit(low, key(low), segments=[Segment(0.5), Segment(2.5, lock="L")])
        sim.at(1.0, lambda: stage.submit(high, key(high), segments=[Segment(1.0, lock="L")]))
        sim.at(1.1, lambda: stage.submit(mid, key(mid), duration=5.0))
        sim.run()
        # low's CS runs [0.5, 3.0) under inheritance; high [3,4); mid last.
        assert completions == [(3.0, 9361), (4.0, 9363), (9.0, 9362)]

    def test_priority_restored_after_release(self):
        sim, stage, _ = setup_stage()
        low = make_task(0.0, 100.0, [2.0], task_id=9371)
        high = make_task(0.0, 1.0, [1.0], task_id=9372)
        job_low = stage.submit(low, key(low), segments=[Segment(1.0, lock="L"), Segment(1.0)])
        sim.at(0.5, lambda: stage.submit(high, key(high), segments=[Segment(1.0, lock="L")]))
        sim.run()
        assert job_low.effective_key == job_low.base_key

    def test_abort_blocked_job(self):
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [2.0], task_id=9381)
        high = make_task(0.0, 1.0, [1.0], task_id=9382)
        stage.submit(low, key(low), segments=[Segment(2.0, lock="L")])
        jobs = []
        sim.at(
            0.5,
            lambda: jobs.append(
                stage.submit(high, key(high), segments=[Segment(1.0, lock="L")])
            ),
        )
        sim.at(1.0, lambda: stage.abort(jobs[0]))
        sim.run()
        assert completions == [(2.0, 9381)]
        assert not stage.locks.blocked_jobs()

    def test_abort_running_holder_releases_lock(self):
        sim, stage, completions = setup_stage()
        low = make_task(0.0, 100.0, [5.0], task_id=9391)
        high = make_task(0.0, 1.0, [1.0], task_id=9392)
        job_low = stage.submit(low, key(low), segments=[Segment(5.0, lock="L")])
        sim.at(0.5, lambda: stage.submit(high, key(high), segments=[Segment(1.0, lock="L")]))
        sim.at(1.0, lambda: stage.abort(job_low))
        sim.run()
        # High unblocks when the aborted holder releases L: runs [1,2).
        assert completions == [(2.0, 9392)]
