"""Cross-module integration tests: theory, controller, and simulator agree.

These tests connect layers that the unit tests exercise in isolation:
the analytical bounds (repro.core), the admission controller, and the
discrete-event execution (repro.sim) must tell one consistent story.
"""

import math

import pytest

from repro.analysis.responsetime import (
    PeriodicStageTask,
    holistic_pipeline_analysis,
    response_time_analysis,
)
from repro.core.bounds import (
    stage_delay_factor,
    uniform_per_stage_bound,
)
from repro.core.task import make_task, periodic_spec
from repro.sim.pipeline import PipelineSimulation, run_pipeline_simulation
from repro.sim.policies import DeadlineMonotonic, EarliestDeadlineFirst
from repro.sim.workload import balanced_workload


class TestStageDelayTheoremInPipelines:
    """Observed per-task end-to-end delays respect the analytical bound."""

    @pytest.mark.parametrize("num_stages", [1, 2, 3])
    def test_response_time_bounded_by_region_budget_times_deadline(self, num_stages):
        """Inside the region, sum_j L_j <= sum_j f(U_j) * D_n <= D_n.
        Since the controller keeps sum f(U_j) <= 1 at all times, every
        admitted task's end-to-end response time is at most its own
        deadline — which is exactly the zero-miss property, checked
        here through the response-time lens."""
        workload = balanced_workload(num_stages, load=1.6, resolution=50.0)
        report = run_pipeline_simulation(workload, horizon=1200.0, seed=9)
        for record in report.tasks:
            if record.admitted and record.response_time is not None:
                assert record.response_time <= record.deadline + 1e-9

    def test_synthetic_utilization_upper_bounds_real_utilization_rate(self):
        """Over a long run, accepted *work* is bounded by what the
        region admits: real utilization cannot exceed 1 and tracks the
        load the controller accepted."""
        workload = balanced_workload(2, load=2.0, resolution=100.0)
        report = run_pipeline_simulation(workload, horizon=1500.0, seed=4)
        for u in report.utilizations():
            assert 0.0 <= u <= 1.0
        admitted_work = sum(
            t.deadline * 0 + 1 for t in report.tasks if t.admitted
        )  # count only
        assert admitted_work == report.admitted


class TestControllerSimulatorConsistency:
    def test_simulation_respects_controller_state(self):
        """Drive a simulation and cross-check that at completion every
        stage tracker only holds tasks that are genuinely current."""
        sim = PipelineSimulation(num_stages=2)
        tasks = [
            make_task(float(i) * 0.5, 8.0, [0.4, 0.4], task_id=50_000 + i)
            for i in range(20)
        ]
        for t in tasks:
            sim.offer_at(t)
        sim.run(100.0)
        sim.controller.expire(100.0)
        # All deadlines long past: trackers empty, back to reserved 0.
        assert sim.controller.utilizations() == (0.0, 0.0)
        assert sim.controller.admitted_count == 0

    def test_static_capacity_matches_simulated_burst(self):
        """A simultaneous burst admits exactly the number of tasks the
        static region arithmetic predicts."""
        n = 2
        contribution = 0.01
        deadline = 100.0
        per_stage_cost = contribution * deadline
        bound = uniform_per_stage_bound(n)
        expected = math.floor(bound / contribution + 1e-9)
        sim = PipelineSimulation(num_stages=n)
        for i in range(2 * expected):
            sim.offer_at(
                make_task(0.0, deadline, [per_stage_cost] * n, task_id=60_000 + i)
            )
        report = sim.run(deadline * 3)
        assert report.admitted == expected

    def test_reset_restores_full_burst_capacity(self):
        """After the pipeline drains and every stage idles, a second
        burst is admitted at full size again."""
        n = 2
        deadline = 100.0
        sim = PipelineSimulation(num_stages=n)
        first = [
            make_task(0.0, deadline, [1.0, 1.0], task_id=70_000 + i)
            for i in range(30)
        ]
        second = [
            make_task(40.0, deadline, [1.0, 1.0], task_id=71_000 + i)
            for i in range(30)
        ]
        for t in first + second:
            sim.offer_at(t)
        report = sim.run(300.0)
        admitted_first = sum(1 for t in report.tasks if 70_000 <= t.task_id < 71_000 and t.admitted)
        admitted_second = sum(1 for t in report.tasks if t.task_id >= 71_000 and t.admitted)
        # The pipeline drains the first burst's ~60 units of work well
        # before t=40 (2 stages in parallel), so the reset has fired.
        assert admitted_first == admitted_second


class TestPeriodicSpecialCase:
    """Periodic arrivals are a special case of aperiodic ones (§1)."""

    def test_periodic_streams_admitted_and_never_miss(self):
        sim = PipelineSimulation(num_stages=2)
        specs = [
            periodic_spec(f"s{i}", period=10.0, computation_times=[0.5, 0.5], phase=i * 1.0)
            for i in range(5)
        ]
        for spec in specs:
            for task in spec.invocations(until=200.0):
                sim.offer_at(task)
        report = sim.run(250.0)
        assert report.accept_ratio == 1.0
        assert report.miss_ratio() == 0.0

    def test_aperiodic_region_is_conservative_vs_rta(self):
        """A periodic set that the aperiodic region rejects can still be
        proven schedulable by response-time analysis — the aperiodic
        test is sufficient, not necessary (the price of generality)."""
        # Two tasks at 40% each: RTA accepts easily, the aperiodic
        # bound (0.586 total synthetic at coincident arrivals) rejects
        # sustained coincidence.
        tasks = [
            PeriodicStageTask("a", period=10.0, wcet=4.0),
            PeriodicStageTask("b", period=20.0, wcet=8.0),
        ]
        rta = response_time_analysis(tasks)
        assert rta[0] <= 10.0 and rta[1] is not None and rta[1] <= 20.0
        # Synthetic utilization at a coincident arrival: 0.4 + 0.4.
        assert stage_delay_factor(0.8) > 1.0  # aperiodic test would reject

    def test_holistic_and_simulation_agree_on_easy_pipeline(self):
        """For a lightly loaded periodic pipeline, the holistic bound
        dominates the simulated response times."""
        periods = [10.0, 25.0]
        wcets = [[1.0, 1.0], [2.0, 2.0]]
        deadlines = [10.0, 25.0]
        analysis = holistic_pipeline_analysis(periods, wcets, deadlines)
        assert all(analysis.schedulable)

        sim = PipelineSimulation(num_stages=2)
        for i, (p, d, (c1, c2)) in enumerate(zip(periods, deadlines, wcets)):
            spec = periodic_spec(f"t{i}", period=p, computation_times=[c1, c2], deadline=d)
            for task in spec.invocations(until=500.0):
                sim.offer_at(task)
        report = sim.run(600.0)
        by_stream = {}
        for record in report.tasks:
            by_stream.setdefault(record.stream_id, []).append(record)
        for stream_records, bound in zip(by_stream.values(), analysis.end_to_end):
            worst = max(r.response_time for r in stream_records if r.response_time)
            assert worst <= bound + 1e-9


class TestPolicyComparatives:
    def test_edf_meets_deadlines_on_admitted_load(self):
        """EDF (outside the fixed-priority theory) still meets all
        deadlines when fed the DM-admitted load — EDF is optimal on a
        single resource, and the load is light enough end to end."""
        workload = balanced_workload(2, load=1.0, resolution=100.0)
        report = run_pipeline_simulation(
            workload, horizon=1000.0, seed=6, policy=EarliestDeadlineFirst()
        )
        assert report.miss_ratio() == 0.0

    def test_admission_is_policy_independent_without_resets(self):
        """With the idle-reset rule disabled, admission depends only on
        the arrival sequence and deadline expirations — not on how the
        stages execute — so DM and EDF produce *identical* accept
        sequences.  (With resets enabled, execution timing feeds back
        into admission via idle instants, and the accept sets diverge;
        that coupling is the reset rule working as intended.)"""
        workload = balanced_workload(2, load=1.4, resolution=100.0)
        dm = run_pipeline_simulation(
            workload, horizon=600.0, seed=8,
            policy=DeadlineMonotonic(), reset_on_idle=False,
        )
        edf = run_pipeline_simulation(
            workload, horizon=600.0, seed=8,
            policy=EarliestDeadlineFirst(), reset_on_idle=False,
        )
        # Task ids are globally fresh per generation; the two runs see
        # identical arrival sequences, so compare by position.
        dm_flags = [t.admitted for t in dm.tasks]
        edf_flags = [t.admitted for t in edf.tasks]
        assert dm_flags == edf_flags

    def test_reset_couples_admission_to_execution(self):
        """The converse of the test above: with resets on, the accept
        ratio genuinely depends on the scheduling policy."""
        workload = balanced_workload(2, load=1.4, resolution=100.0)
        dm = run_pipeline_simulation(
            workload, horizon=600.0, seed=8, policy=DeadlineMonotonic()
        )
        edf = run_pipeline_simulation(
            workload, horizon=600.0, seed=8, policy=EarliestDeadlineFirst()
        )
        assert dm.accept_ratio == pytest.approx(edf.accept_ratio, abs=0.15)


class TestLongRunStability:
    def test_long_horizon_no_drift(self):
        """A long, saturated run keeps the controller's incremental
        sums honest (the resync guard) and the zero-miss property."""
        workload = balanced_workload(1, load=1.5, resolution=30.0)
        report = run_pipeline_simulation(workload, horizon=20_000.0, seed=12)
        assert report.miss_ratio() == 0.0
        assert report.generated > 20_000
        assert 0.0 <= report.utilization(0) <= 1.0

    def test_single_stage_utilization_never_below_no_reset_bound(self):
        """Sanity ordering at overload: reset-on >= reset-off."""
        workload = balanced_workload(1, load=2.0, resolution=50.0)
        with_reset = run_pipeline_simulation(workload, horizon=2000.0, seed=2)
        without = run_pipeline_simulation(
            workload, horizon=2000.0, seed=2, reset_on_idle=False
        )
        assert with_reset.utilization(0) >= without.utilization(0)
