"""CLI tests: JSON schema, exit codes, noqa suppression, path filtering."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

BAD_SNIPPET = textwrap.dedent(
    """
    import random

    def draw():
        return random.random()
    """
)

CLEAN_SNIPPET = textwrap.dedent(
    """
    import random

    def draw(seed: int):
        return random.Random(seed).random()
    """
)


def run_lint(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env=env,
    )


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_SNIPPET)
        proc = run_lint(str(target))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no findings" in proc.stdout

    def test_findings_exit_one(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        proc = run_lint(str(target))
        assert proc.returncode == 1
        assert "RNG001" in proc.stdout

    def test_missing_path_exits_two(self):
        proc = run_lint("definitely/does/not/exist")
        assert proc.returncode == 2
        assert "error" in proc.stderr

    def test_unknown_rule_exits_two(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_SNIPPET)
        proc = run_lint(str(target), "--select", "NOPE999")
        assert proc.returncode == 2
        assert "known rules" in proc.stderr


class TestJsonFormat:
    def test_schema(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        proc = run_lint(str(target), "--format=json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert isinstance(payload["findings"], list) and payload["findings"]
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "RNG001"
        assert finding["path"] == str(target)
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert payload["counts"] == {"RNG001": 1}

    def test_clean_json_payload(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_SNIPPET)
        proc = run_lint(str(target), "--format=json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["counts"] == {}


class TestNoqa:
    def test_rule_specific_noqa_suppresses(self, tmp_path):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "import random\nx = random.random()  # repro: noqa[RNG001]\n"
        )
        assert run_lint(str(target)).returncode == 0

    def test_bare_noqa_suppresses(self, tmp_path):
        target = tmp_path / "suppressed.py"
        target.write_text("import random\nx = random.random()  # repro: noqa\n")
        assert run_lint(str(target)).returncode == 0

    def test_mismatched_noqa_does_not_suppress(self, tmp_path):
        target = tmp_path / "unsuppressed.py"
        target.write_text(
            "import random\nx = random.random()  # repro: noqa[MDL001]\n"
        )
        assert run_lint(str(target)).returncode == 1


class TestPathFiltering:
    def test_only_given_paths_are_linted(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_SNIPPET)
        (tmp_path / "clean.py").write_text(CLEAN_SNIPPET)
        proc = run_lint(str(tmp_path / "clean.py"))
        assert proc.returncode == 0
        proc = run_lint(str(tmp_path))
        assert proc.returncode == 1
        assert "bad.py" in proc.stdout
        assert "clean.py" not in proc.stdout

    def test_directory_recursion_skips_caches(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "bad.py").write_text(BAD_SNIPPET)
        (tmp_path / "clean.py").write_text(CLEAN_SNIPPET)
        proc = run_lint(str(tmp_path))
        assert proc.returncode == 0

    def test_select_filters_rules(self, tmp_path):
        target = tmp_path / "mixed.py"
        target.write_text(
            BAD_SNIPPET + "\ndef f(acc=[]):\n    return acc\n"
        )
        proc = run_lint(str(target), "--select", "MUT001", "--format=json")
        payload = json.loads(proc.stdout)
        assert set(payload["counts"]) == {"MUT001"}

    def test_ignore_filters_rules(self, tmp_path):
        target = tmp_path / "mixed.py"
        target.write_text(
            BAD_SNIPPET + "\ndef f(acc=[]):\n    return acc\n"
        )
        proc = run_lint(str(target), "--ignore", "RNG001", "--format=json")
        payload = json.loads(proc.stdout)
        assert set(payload["counts"]) == {"MUT001"}


def test_list_rules_shows_catalog():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for rule_id in (
        "RNG001",
        "DET001",
        "FLT001",
        "HEAP001",
        "MUT001",
        "MDL001",
        "MDL002",
        "MDL003",
        "MDL004",
    ):
        assert rule_id in proc.stdout
