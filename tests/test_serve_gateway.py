"""Protocol-level tests for the admission gateway.

Exercises every operation through the same line-oriented protocol the
TCP server speaks, using the in-process transport for determinism and a
real asyncio server for end-to-end coverage.
"""

import json
import socket

import pytest

from repro.core.task import make_task
from repro.serve.client import (
    GatewayClient,
    GatewayError,
    GatewayTimeout,
    InProcessTransport,
    RetryingGatewayClient,
    RetryPolicy,
    TcpTransport,
)
from repro.serve.gateway import AdmissionGateway
from repro.serve.loadgen import _TcpGatewayThread
from repro.serve.protocol import task_to_wire

NUM_STAGES = 3
POLICY = {"num_stages": NUM_STAGES}


def _client():
    return GatewayClient(InProcessTransport(AdmissionGateway()))


def _task(task_id, arrival, cost=0.01, deadline=1.0):
    return make_task(
        arrival_time=arrival,
        deadline=deadline,
        computation_times=[cost] * NUM_STAGES,
        task_id=task_id,
    )


class TestOperations:
    def test_health_reports_registered_pipelines(self):
        client = _client()
        assert client.call("health")["pipelines"] == []
        client.register("web", POLICY)
        client.register("api", POLICY)
        response = client.call("health")
        assert response["pipelines"] == ["api", "web"]
        assert response["draining"] is False

    def test_register_admit_depart_idle_expire(self):
        client = _client()
        register = client.register("web", POLICY)
        assert register["region_budget"] > 0.0

        admit = client.admit("web", _task(0, 0.0))
        assert admit["admitted"] is True
        assert admit["shed"] == []
        assert admit["region_value"] > 0.0

        client.call("depart", pipeline="web", task_id=0, stage=0)
        released = client.call("idle", pipeline="web", stage=0)["released"]
        assert released > 0.0

        expire = client.call("expire", pipeline="web", now=10.0)
        assert expire["region_value"] == 0.0

    def test_capacity_rescale(self):
        client = _client()
        client.register("web", POLICY)
        response = client.call("capacity", pipeline="web", stage=1, capacity=0.5)
        assert response["capacities"] == [1.0, 0.5, 1.0]

    def test_resync_reconciles_against_frontier(self):
        client = _client()
        client.register("web", POLICY)
        client.admit("web", _task(0, 0.0, deadline=5.0))
        client.admit("web", _task(1, 0.1, deadline=5.0))
        # Ground truth: task 0 progressed to stage 2; task 1 is absent
        # from the frontier, i.e. fully departed.
        response = client.call(
            "resync", pipeline="web", now=0.5, frontier={"0": 2}
        )
        report = response["report"]
        assert report["restored"] == 2 * NUM_STAGES
        assert report["departures_marked"] == 2 + NUM_STAGES
        assert report["dropped_orphans"] == 0
        assert report["dropped_expired"] == 0

    def test_stats_scoped_and_global(self):
        client = _client()
        client.register("web", POLICY)
        client.register("api", POLICY)
        client.admit("web", _task(0, 0.0))
        scoped = client.stats("web")
        assert set(scoped["stats"]) == {"web"}
        assert scoped["stats"]["web"]["counters"]["admitted"] == 1
        everything = client.stats()
        assert set(everything["stats"]) == {"api", "web"}
        assert everything["ops"]["admit"] == 1

    def test_unregister_forgets_the_pipeline(self):
        client = _client()
        client.register("web", POLICY)
        client.call("unregister", pipeline="web")
        with pytest.raises(GatewayError) as err:
            client.admit("web", _task(0, 0.0))
        assert err.value.code == "unknown-pipeline"

    def test_drain_refuses_new_admits(self):
        gateway = AdmissionGateway()
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", POLICY)
        gateway.draining = True
        with pytest.raises(GatewayError) as err:
            client.admit("web", _task(0, 0.0))
        assert err.value.code == "draining"


class TestErrors:
    @pytest.mark.parametrize(
        "line,code",
        [
            ("{not json", "bad-json"),
            ('"just a string"', "bad-request"),
            ('{"id": 1, "op": "frobnicate"}', "unknown-op"),
            ('{"id": 1}', "unknown-op"),
        ],
    )
    def test_malformed_lines_become_error_responses(self, line, code):
        gateway = AdmissionGateway()
        routed = gateway.handle_line(line)
        assert len(routed) == 1
        response = json.loads(routed[0][1])
        assert response["ok"] is False
        assert response["error"] == code
        assert gateway.errors == 1

    def test_unknown_pipeline(self):
        client = _client()
        with pytest.raises(GatewayError) as err:
            client.admit("ghost", _task(0, 0.0))
        assert err.value.code == "unknown-pipeline"

    def test_duplicate_register(self):
        client = _client()
        client.register("web", POLICY)
        with pytest.raises(GatewayError) as err:
            client.register("web", POLICY)
        assert err.value.code == "duplicate-pipeline"

    @pytest.mark.parametrize(
        "policy",
        [
            None,
            {},
            {"num_stages": 0},
            {"num_stages": 3, "alpha": -1.0},
            {"num_stages": 3, "mystery_knob": 7},
            {"num_stages": 3, "batch_window": -0.5},
        ],
    )
    def test_bad_policies_are_rejected(self, policy):
        client = _client()
        with pytest.raises(GatewayError) as err:
            client.register("web", policy)
        assert err.value.code == "bad-policy"

    def test_bad_task(self):
        client = _client()
        client.register("web", POLICY)
        with pytest.raises(GatewayError) as err:
            client.call("admit", pipeline="web", task={"task_id": 0})
        assert err.value.code == "bad-task"

    def test_time_regression_rejected(self):
        client = _client()
        client.register("web", POLICY)
        client.admit("web", _task(0, 1.0))
        with pytest.raises(GatewayError) as err:
            client.admit("web", _task(1, 0.5))
        assert err.value.code == "time-regression"

    @pytest.mark.parametrize(
        "op,operands",
        [
            ("depart", {"pipeline": "web", "task_id": "zero", "stage": 0}),
            ("idle", {"pipeline": "web", "stage": True}),
            ("idle", {"pipeline": "web", "stage": 99}),
            ("expire", {"pipeline": "web", "now": "later"}),
            ("capacity", {"pipeline": "web", "stage": 0, "capacity": "half"}),
        ],
    )
    def test_bad_operands(self, op, operands):
        client = _client()
        client.register("web", POLICY)
        with pytest.raises(GatewayError):
            client.call(op, **operands)


class TestBatchingDeferral:
    def test_queued_admits_answer_before_barrier_response(self):
        """A barrier op releases batched decisions ahead of its own reply."""
        gateway = AdmissionGateway()
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        ids = [client.submit_admit("web", _task(k, 0.01 * k)) for k in range(3)]
        # Nothing answered yet: the batch is still open.
        assert all(client.collect(i, wait=False) is None for i in ids)

        stats_id = client.send("stats", pipeline="web")
        for i in ids:
            response = client.collect(i, wait=False)
            assert response is not None and response["admitted"] is True
        stats = client.collect(stats_id, wait=False)
        assert stats is not None
        assert stats["stats"]["web"]["counters"]["batches"] == 1
        assert stats["stats"]["web"]["counters"]["largest_batch"] == 3

    def test_size_cap_releases_batch_mid_stream(self):
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 2})
        a = client.submit_admit("web", _task(0, 0.0))
        assert client.collect(a, wait=False) is None
        b = client.submit_admit("web", _task(1, 0.1))  # fills the batch
        assert client.collect(a, wait=False)["admitted"] is True
        assert client.collect(b, wait=False)["admitted"] is True

    def test_drain_answers_every_pending_admit(self):
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 32})
        ids = [client.submit_admit("web", _task(k, 0.01 * k)) for k in range(5)]
        client.drain()
        for i in ids:
            assert client.collect(i, wait=False)["admitted"] is True

    def test_snapshot_refuses_pending_batch(self):
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 32})
        client.submit_admit("web", _task(0, 0.0))
        # snapshot is a barrier like any other pipeline op: the pending
        # admit is decided first, so the snapshot itself succeeds.
        response = client.call("snapshot", pipeline="web")
        assert len(response["snapshot"]["controller"]["admitted"]) == 1

    def test_failed_barrier_op_still_delivers_flushed_decisions(self):
        """A barrier that errors after the flush must not eat the batch.

        The flush decides the queued admissions and mutates controller
        state; the waiting clients must receive those decisions even
        though the barrier operation itself only yields an error.
        """
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        ids = [client.submit_admit("web", _task(k, 0.01 * k)) for k in range(2)]
        with pytest.raises(GatewayError) as err:
            client.call("depart", pipeline="web", task_id=0, stage=99)
        assert err.value.code == "bad-stage"
        for i in ids:
            response = client.collect(i, wait=False)
            assert response is not None and response["admitted"] is True

    def test_time_regression_after_barrier_still_delivers_flushed_decisions(self):
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        admit_id = client.submit_admit("web", _task(0, 1.0))
        with pytest.raises(GatewayError) as err:
            client.call("expire", pipeline="web", now=0.5)
        assert err.value.code == "time-regression"
        response = client.collect(admit_id, wait=False)
        assert response is not None and response["admitted"] is True

    def test_bad_operand_types_fail_before_the_barrier(self):
        """Trivially malformed requests do not force a batch flush."""
        client = _client()
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        admit_id = client.submit_admit("web", _task(0, 0.0))
        with pytest.raises(GatewayError) as err:
            client.call("depart", pipeline="web", task_id=0, stage="zero")
        assert err.value.code == "bad-request"
        assert client.collect(admit_id, wait=False) is None  # still queued
        client.drain()
        assert client.collect(admit_id, wait=False)["admitted"] is True


class TestSnapshotRestoreOps:
    def test_state_migrates_across_gateways(self):
        source = _client()
        source.register("web", POLICY)
        for k in range(10):
            source.admit("web", _task(k, 0.05 * k, deadline=5.0))
        source.call("depart", pipeline="web", task_id=0, stage=0)
        snapshot = source.call("snapshot", pipeline="web")["snapshot"]
        before = source.stats("web")["stats"]["web"]

        target = _client()
        restore = target.call("restore", pipeline="web", snapshot=snapshot)
        assert restore["audited"] is True

        after = target.stats("web")["stats"]["web"]
        assert after["admitted_live"] == before["admitted_live"]
        assert after["region_value"] == pytest.approx(before["region_value"])

        # Both gateways must agree on the next decision.
        probe = _task(100, 1.0, deadline=5.0)
        a = source.admit("web", probe)
        b = target.admit("web", probe)
        assert (a["admitted"], a["shed"]) == (b["admitted"], b["shed"])

    def test_restore_rejects_corrupt_snapshot(self):
        source = _client()
        source.register("web", POLICY)
        source.admit("web", _task(0, 0.0, deadline=5.0))
        snapshot = source.call("snapshot", pipeline="web")["snapshot"]
        snapshot["controller"]["format"] = "bogus/0"
        target = _client()
        with pytest.raises(GatewayError) as err:
            target.call("restore", pipeline="web", snapshot=snapshot)
        assert err.value.code == "bad-snapshot"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_stages", NUM_STAGES + 1),
            ("alpha", 0.5),
            ("betas", [0.1] * NUM_STAGES),
            ("reserved", [0.2, 0.0, 0.0]),
            ("demand", {"kind": "scaled", "factor": 2.0}),
            ("reset_on_idle", False),
        ],
    )
    def test_restore_rejects_policy_controller_mismatch(self, field, value):
        """The two snapshot documents must describe the same pipeline.

        A policy claiming (say) more stages than the controller has
        trackers would pass stage validation for operations the
        controller cannot serve, turning a later depart/idle into an
        IndexError that escapes the protocol layer.
        """
        source = _client()
        source.register("web", POLICY)
        source.admit("web", _task(0, 0.0, deadline=5.0))
        snapshot = source.call("snapshot", pipeline="web")["snapshot"]
        snapshot["policy"][field] = value
        target = _client()
        with pytest.raises(GatewayError) as err:
            target.call("restore", pipeline="web", snapshot=snapshot)
        assert err.value.code == "bad-snapshot"
        # The mismatched pipeline must not be adopted.
        assert target.call("health")["pipelines"] == []


class TestTcpServer:
    def test_end_to_end_over_sockets(self):
        with _TcpGatewayThread() as server:
            host, port = server.address
            client = GatewayClient(TcpTransport(host, port))
            try:
                client.register("web", POLICY)
                for k in range(20):
                    response = client.admit("web", _task(k, 0.05 * k))
                    assert response["admitted"] is True
                stats = client.stats("web")
                assert stats["stats"]["web"]["counters"]["admitted"] == 20
            finally:
                client.close()

    def test_two_connections_share_one_registry(self):
        with _TcpGatewayThread() as server:
            host, port = server.address
            first = GatewayClient(TcpTransport(host, port))
            second = GatewayClient(TcpTransport(host, port))
            try:
                first.register("web", POLICY)
                assert second.call("health")["pipelines"] == ["web"]
                second.admit("web", _task(0, 0.0))
                assert (
                    first.stats("web")["stats"]["web"]["counters"]["admitted"]
                    == 1
                )
            finally:
                first.close()
                second.close()


class TestIdempotency:
    def _admit_doc(self, request_id, rid, task_id=0, arrival=0.0):
        return json.dumps({
            "id": request_id, "rid": rid, "op": "admit", "pipeline": "web",
            "task": task_to_wire(_task(task_id, arrival)),
        })

    def test_retry_is_served_from_cache_not_re_executed(self):
        gateway = AdmissionGateway()
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", POLICY)
        (_, first), = gateway.handle_line(self._admit_doc(1, "r1"))
        (_, again), = gateway.handle_line(self._admit_doc(2, "r1"))
        first_doc, again_doc = json.loads(first), json.loads(again)
        assert first_doc["admitted"] is True
        # Same decision, rewritten to the retry's request id.
        assert again_doc == {**first_doc, "id": 2}
        assert gateway.dedup_hits == 1
        # Executed once: a double-admit would raise on the duplicate
        # task id, and the counter would read 2.
        stats = client.stats("web")
        assert stats["stats"]["web"]["counters"]["admitted"] == 1

    def test_error_responses_are_cached_as_final_answers(self):
        gateway = AdmissionGateway()
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", POLICY)
        bad = json.dumps({"id": 1, "rid": "r1", "op": "admit",
                          "pipeline": "web", "task": {"task_id": 0}})
        (_, first), = gateway.handle_line(bad)
        (_, again), = gateway.handle_line(
            json.dumps({"id": 2, "rid": "r1", "op": "admit",
                        "pipeline": "web", "task": {"task_id": 0}}))
        assert json.loads(first)["error"] == "bad-task"
        assert json.loads(again) == {**json.loads(first), "id": 2}
        assert gateway.dedup_hits == 1

    def test_pending_rid_bounces_as_duplicate_request(self):
        gateway = AdmissionGateway()
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        gateway.handle_line(self._admit_doc(1, "r1"))  # queued, undecided
        (_, bounce), = gateway.handle_line(self._admit_doc(2, "r1"))
        doc = json.loads(bounce)
        assert doc["error"] == "duplicate-request"
        assert doc["id"] == 2
        # The bounce is not a final answer: after the batch decides,
        # the retry is served the real decision.
        gateway.drain()
        (_, decided), = gateway.handle_line(self._admit_doc(3, "r1"))
        assert json.loads(decided)["admitted"] is True

    def test_health_is_exempt_from_rid_tracking(self):
        gateway = AdmissionGateway()
        (_, a), = gateway.handle_line('{"id": 1, "rid": "h", "op": "health"}')
        (_, b), = gateway.handle_line('{"id": 2, "rid": "h", "op": "health"}')
        assert gateway.dedup_hits == 0
        assert json.loads(a)["id"] == 1 and json.loads(b)["id"] == 2

    def test_window_evicts_oldest_decision(self):
        gateway = AdmissionGateway(dedup_window=2)
        client = GatewayClient(InProcessTransport(gateway))
        client.register("web", POLICY)
        for n in range(3):
            gateway.handle_line(json.dumps(
                {"id": n, "rid": f"r{n}", "op": "expire",
                 "pipeline": "web", "now": 0.1 * n}))
        assert gateway.dedup_status("r0") == "unknown"  # evicted
        assert gateway.dedup_status("r1") == "decided"
        assert gateway.dedup_status("r2") == "decided"

    @pytest.mark.parametrize("rid", [17, "", "x" * 201])
    def test_invalid_rid_rejected(self, rid):
        gateway = AdmissionGateway()
        (_, line), = gateway.handle_line(
            json.dumps({"id": 1, "rid": rid, "op": "health"}))
        assert json.loads(line)["error"] == "bad-request"

    def test_non_finite_json_rejected(self):
        gateway = AdmissionGateway()
        (_, line), = gateway.handle_line(
            '{"id": 1, "op": "expire", "pipeline": "web", "now": Infinity}')
        doc = json.loads(line)
        assert doc["error"] == "bad-json"
        assert "non-finite" in doc["detail"]


class _FlakyTransport(InProcessTransport):
    """Fails the first ``failures`` submits with a timeout, then works."""

    def __init__(self, gateway, failures):
        super().__init__(gateway)
        self.remaining = failures

    def submit(self, line):
        if self.remaining > 0:
            self.remaining -= 1
            raise GatewayTimeout("injected timeout")
        return super().submit(line)


class TestRetryingClient:
    def _retrying(self, gateway, failures, **policy_kwargs):
        transport = _FlakyTransport(gateway, failures)
        rids = iter(f"rid-{n}" for n in range(100))
        return RetryingGatewayClient(
            connect=lambda: GatewayClient(transport),
            policy=RetryPolicy(base_delay=0.001, seed=0, **policy_kwargs),
            rid_factory=lambda: next(rids),
            sleep=lambda _delay: None,
        )

    def test_timeouts_are_retried_with_the_same_rid(self):
        gateway = AdmissionGateway()
        GatewayClient(InProcessTransport(gateway)).register("web", POLICY)
        client = self._retrying(gateway, failures=2)
        response = client.admit("web", _task(0, 0.0))
        assert response["admitted"] is True
        assert client.retries == 2
        assert client.reconnects == 2
        # Exactly-once despite the ambiguity: one admission recorded.
        stats = GatewayClient(InProcessTransport(gateway)).stats("web")
        assert stats["stats"]["web"]["counters"]["admitted"] == 1

    def test_budget_exhaustion_reraises_last_failure(self):
        gateway = AdmissionGateway()
        GatewayClient(InProcessTransport(gateway)).register("web", POLICY)
        client = self._retrying(gateway, failures=99, max_attempts=3)
        with pytest.raises(GatewayTimeout):
            client.admit("web", _task(0, 0.0))
        assert client.retries == 2  # 3 attempts = initial + 2 retries
        assert client.abandoned == 1

    def test_deadline_aware_abandonment(self):
        gateway = AdmissionGateway()
        GatewayClient(InProcessTransport(gateway)).register("web", POLICY)
        transport = _FlakyTransport(gateway, 99)
        clock = iter([0.0, 1.0, 2.0, 3.0, 4.0])
        client = RetryingGatewayClient(
            connect=lambda: GatewayClient(transport),
            policy=RetryPolicy(base_delay=0.001, max_attempts=50, seed=0),
            rid_factory=lambda: "r-deadline",
            clock=lambda: next(clock),
            sleep=lambda _delay: None,
        )
        with pytest.raises(GatewayTimeout):
            client.call("stats", deadline=1.5)
        assert client.abandoned == 1
        # Retries at t=0 and t=1 still fit; the attempt that would
        # start past t=1.5 is abandoned.
        assert client.retries == 2

    def test_final_error_answers_are_not_retried(self):
        gateway = AdmissionGateway()
        client = self._retrying(gateway, failures=0)
        with pytest.raises(GatewayError) as err:
            client.admit("ghost", _task(0, 0.0))
        assert err.value.code == "unknown-pipeline"
        assert client.retries == 0

    def test_duplicate_request_bounce_retries_until_decided(self):
        gateway = AdmissionGateway()
        setup = GatewayClient(InProcessTransport(gateway))
        setup.register("web", {"num_stages": NUM_STAGES, "max_batch": 8})
        # Queue the admit under the retry rid, so the retrying client's
        # own request bounces off the pending batch.
        gateway.handle_line(json.dumps({
            "id": 900, "rid": "rid-0", "op": "admit", "pipeline": "web",
            "task": task_to_wire(_task(0, 0.0)),
        }))
        transport = InProcessTransport(gateway)
        client = RetryingGatewayClient(
            connect=lambda: GatewayClient(transport),
            policy=RetryPolicy(base_delay=0.001, seed=0),
            rid_factory=lambda: "rid-0",
            # The batch decides while the client is backing off.
            sleep=lambda _delay: gateway.drain(),
        )
        response = client.admit("web", _task(0, 0.0))
        assert response["admitted"] is True
        assert client.retries >= 1
        assert client.reconnects == 0  # bounces do not drop the connection


class TestDrainingServer:
    def test_new_connections_rejected_while_draining(self):
        gateway = AdmissionGateway()
        with _TcpGatewayThread(gateway=gateway) as server:
            host, port = server.address
            established = GatewayClient(TcpTransport(host, port))
            try:
                established.register("web", POLICY)
                gateway.draining = True
                # A connection opened mid-drain gets a structured error
                # and an immediate close.
                raw = socket.create_connection((host, port), timeout=10)
                try:
                    line = raw.makefile("rb").readline()
                finally:
                    raw.close()
                doc = json.loads(line)
                assert doc["ok"] is False
                assert doc["error"] == "draining"
                # Established connections keep working for non-admit ops.
                assert established.call("health")["draining"] is True
            finally:
                established.close()


class TestTimeouts:
    def test_read_timeout_raises_gateway_timeout(self):
        with _TcpGatewayThread() as server:
            host, port = server.address
            transport = TcpTransport(
                host, port, connect_timeout=10.0, read_timeout=0.05
            )
            try:
                # No request submitted: the server has nothing to say.
                with pytest.raises(GatewayTimeout):
                    transport.readline()
            finally:
                transport.close()

    def test_connect_failure_is_a_transport_error(self):
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        _host, port = sink.getsockname()
        sink.close()  # nothing listens here anymore
        with pytest.raises(GatewayError) as err:
            TcpTransport("127.0.0.1", port, connect_timeout=0.5)
        assert err.value.code in ("transport", "timeout")


class TestWireFormat:
    def test_task_round_trip_is_lossless(self):
        task = _task(7, 1.25, cost=0.0123456789, deadline=0.75)
        from repro.serve.protocol import task_from_wire

        again = task_from_wire(json.loads(json.dumps(task_to_wire(task))))
        assert again.task_id == task.task_id
        assert again.arrival_time == task.arrival_time
        assert again.deadline == task.deadline
        assert again.computation_times == task.computation_times
        assert again.importance == task.importance

    def test_responses_are_canonical_json(self):
        gateway = AdmissionGateway()
        (_, line), = gateway.handle_line('{"id": 5, "op": "health"}')
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
