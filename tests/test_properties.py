"""Property-based system tests (hypothesis) on the headline invariants.

These go beyond the unit-level properties: whole simulations are run
on randomly generated workloads and the paper's guarantees are checked
as universal properties — zero misses under exact admission control,
scheduler equivalence with a brute-force reference, and conservation
laws of the reporting layer.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.task import make_task
from repro.sim.engine import Simulator
from repro.sim.pipeline import PipelineSimulation
from repro.sim.stage import Stage

QUANTUM = 0.25


# ----------------------------------------------------------------------
# Zero-miss property over random workloads
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),  # stages
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=2.0),  # inter-arrival gap
            st.floats(min_value=1.0, max_value=50.0),  # deadline
            st.floats(min_value=0.0, max_value=4.0),  # cost scale
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=0, max_value=3),  # cost-shape seed
)
def test_exact_admission_never_misses(num_stages, arrivals, shape_seed):
    """For ANY arrival pattern, admitted tasks meet their end-to-end
    deadlines under deadline-monotonic scheduling with exact admission
    control — the paper's central guarantee as a universal property."""
    rng = random.Random(shape_seed)
    sim = PipelineSimulation(num_stages=num_stages)
    now = 0.0
    horizon = 0.0
    for gap, deadline, cost_scale in arrivals:
        now += gap
        costs = [cost_scale * rng.random() for _ in range(num_stages)]
        task = make_task(now, deadline, costs)
        sim.offer_at(task)
        horizon = max(horizon, now + deadline)
    report = sim.run(horizon + 1.0)
    for record in report.tasks:
        if record.admitted:
            assert record.completed_at is not None
            assert record.completed_at <= record.absolute_deadline + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=2.0),
            st.floats(min_value=1.0, max_value=50.0),
            st.floats(min_value=0.0, max_value=4.0),
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_report_conservation_laws(arrivals):
    """generated = admitted + rejected; completed <= admitted; all
    response times positive; utilizations within [0, 1]."""
    sim = PipelineSimulation(num_stages=2)
    now = 0.0
    horizon = 0.0
    for gap, deadline, cost in arrivals:
        now += gap
        task = make_task(now, deadline, [cost / 2.0, cost / 2.0])
        sim.offer_at(task)
        horizon = max(horizon, now + deadline)
    report = sim.run(horizon + 1.0)
    assert report.generated == report.admitted + report.rejected
    assert report.completed <= report.admitted
    for record in report.tasks:
        if record.response_time is not None:
            assert record.response_time >= 0.0
    for u in report.utilizations():
        assert 0.0 <= u <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Scheduler equivalence with a quantized reference (hypothesis-driven)
# ----------------------------------------------------------------------


def _reference(jobs):
    """Quantized preemptive fixed-priority scheduler (exact for
    quantum-aligned inputs); see tests/test_scheduler_reference.py."""
    remaining = [d for _, d, _ in jobs]
    completion = [None] * len(jobs)
    t = 0.0
    pending = len(jobs)
    guard = sum(remaining) + max(a for a, _, _ in jobs) + 1.0
    while pending > 0 and t < guard:
        ready = [
            i
            for i in range(len(jobs))
            if jobs[i][0] <= t + 1e-12 and remaining[i] > 1e-12
        ]
        if ready:
            chosen = min(ready, key=lambda i: jobs[i][2])
            remaining[chosen] -= QUANTUM
            if remaining[chosen] <= 1e-12:
                completion[chosen] = t + QUANTUM
                pending -= 1
        t += QUANTUM
    return completion


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),  # arrival gap quanta
            st.integers(min_value=1, max_value=8),  # duration quanta
            st.integers(min_value=0, max_value=3),  # priority class
        ),
        min_size=1,
        max_size=15,
    )
)
def test_stage_equals_reference_scheduler(raw_jobs):
    jobs = []
    t = 0.0
    for i, (gap, duration, prio) in enumerate(raw_jobs):
        t += QUANTUM * gap
        jobs.append((t, QUANTUM * duration, (float(prio), float(i))))

    expected = _reference(jobs)

    sim = Simulator()
    stage = Stage(sim, index=0)
    completions = {}
    stage.on_job_complete = lambda job: completions.__setitem__(
        job.task.task_id, sim.now
    )
    for i, (arrival, duration, priority) in enumerate(jobs):
        task = make_task(arrival, 1e6, [duration], task_id=i)
        sim.at(
            arrival,
            lambda tk=task, key=priority, d=duration: stage.submit(
                tk, key, duration=d
            ),
        )
    sim.run()
    for i in range(len(jobs)):
        assert completions[i] == pytest.approx(expected[i], abs=1e-9)

    # Busy-time conservation: the stage was busy exactly the total work.
    assert stage.busy_time() == pytest.approx(sum(d for _, d, _ in jobs), abs=1e-9)
