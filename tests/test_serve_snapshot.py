"""Snapshot/restore round trips for the serving layer.

The acceptance bar from the ISSUE: snapshot a controller mid-run — with
reservations, shed tasks, departures, and partial expiry in flight —
restore it into a fresh instance, audit it with zero violations, and
confirm subsequent admission decisions are identical to an
uninterrupted run.
"""

import json
import random

import pytest

from repro.core.admission import (
    PipelineAdmissionController,
    ScaledDemand,
)
from repro.core.task import make_task
from repro.core.numeric import approx_le
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_FORMAT_V1,
    SNAPSHOT_FORMAT_V2,
    SNAPSHOT_FORMAT_V3,
    SUPPORTED_SNAPSHOT_FORMATS,
    controller_snapshot,
    demand_model_from_wire,
    demand_model_to_wire,
    restore_controller,
    verify_restored,
)

NUM_STAGES = 3


def _busy_controller(seed=0):
    """A controller caught mid-run with every kind of state in play.

    Reserved baselines, alpha < 1, admitted tasks of mixed importance
    (some shed on arrival of more important work), departures at the
    front stages, zero-cost stages, and records whose expiries straddle
    the snapshot instant.
    """
    rng = random.Random(seed)
    controller = PipelineAdmissionController(
        NUM_STAGES,
        alpha=0.9,
        betas=[0.02, 0.0, 0.01],
        reserved=[0.05, 0.0, 0.02],
        demand_model=ScaledDemand(1.1),
    )
    now = 0.0
    for task_id in range(60):
        now += rng.expovariate(20.0)
        costs = [
            rng.expovariate(1.0 / 0.05) if rng.random() > 0.25 else 0.0
            for _ in range(NUM_STAGES)
        ]
        task = make_task(
            arrival_time=now,
            deadline=rng.uniform(0.3, 2.0),
            computation_times=costs,
            importance=rng.randrange(3),
            task_id=task_id,
        )
        decision = controller.request_with_shedding(task, now)
        if decision.admitted and rng.random() < 0.4:
            # Simulate progress: the task clears its first stage(s).
            controller.notify_subtask_departure(task_id, 0)
            if rng.random() < 0.5:
                controller.notify_subtask_departure(task_id, 1)
    return controller, now


def _decide_tail(controller, now, seed=99, count=40):
    """Continue offering load and record every decision."""
    rng = random.Random(seed)
    decisions = []
    for task_id in range(1000, 1000 + count):
        now += rng.expovariate(15.0)
        task = make_task(
            arrival_time=now,
            deadline=rng.uniform(0.3, 1.5),
            computation_times=[
                rng.expovariate(1.0 / 0.06) for _ in range(NUM_STAGES)
            ],
            importance=rng.randrange(3),
            task_id=task_id,
        )
        decision = controller.request_with_shedding(task, now)
        decisions.append(
            (decision.admitted, decision.shed, decision.region_value)
        )
    return decisions


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_restore_audits_clean(self, seed):
        controller, now = _busy_controller(seed)
        assert len(controller.iter_admitted()) > 0  # non-vacuous snapshot
        restored = restore_controller(controller_snapshot(controller))
        assert verify_restored(restored, now) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_restored_matches_original_decisions(self, seed):
        """Original and restored controllers decide the same tail.

        The restored instance rebuilds incremental sums in a different
        association order, so region values may differ by ulps — the
        admitted/shed verdicts must be exactly equal and region values
        equal within the shared tolerance.
        """
        controller, now = _busy_controller(seed)
        restored = restore_controller(controller_snapshot(controller))

        original_tail = _decide_tail(controller, now)
        restored_tail = _decide_tail(restored, now)
        assert [(a, s) for a, s, _ in original_tail] == [
            (a, s) for a, s, _ in restored_tail
        ]
        for (_, _, rv_a), (_, _, rv_b) in zip(original_tail, restored_tail):
            assert approx_le(rv_a, rv_b) and approx_le(rv_b, rv_a)

    @pytest.mark.parametrize("seed", range(3))
    def test_snapshot_restore_snapshot_is_byte_stable(self, seed):
        controller, _ = _busy_controller(seed)
        first = controller_snapshot(controller)
        second = controller_snapshot(restore_controller(first))
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_config_survives_round_trip(self):
        controller, _ = _busy_controller()
        controller.set_stage_capacity(1, 0.5)
        restored = restore_controller(controller_snapshot(controller))
        assert restored.num_stages == controller.num_stages
        assert restored.alpha == controller.alpha
        assert restored.betas == controller.betas
        assert restored.reset_on_idle == controller.reset_on_idle
        assert restored.stage_capacities() == controller.stage_capacities()
        assert [t.reserved for t in restored.trackers] == [
            t.reserved for t in controller.trackers
        ]
        assert isinstance(restored.demand_model, ScaledDemand)
        assert restored.demand_model.factor == 1.1

    def test_expiry_after_restore_releases_same_records(self):
        controller, now = _busy_controller(2)
        restored = restore_controller(controller_snapshot(controller))
        horizon = now + 10.0
        controller.expire(horizon)
        restored.expire(horizon)
        assert restored.admitted_snapshot() == controller.admitted_snapshot()

    def test_idle_reset_state_survives(self):
        """A stage released by an idle reset stays released on restore."""
        controller = PipelineAdmissionController(NUM_STAGES)
        task = make_task(0.0, 5.0, [0.1, 0.1, 0.1], task_id=1)
        assert controller.request(task, 0.0).admitted
        controller.notify_subtask_departure(1, 0)
        controller.notify_stage_idle(0)
        restored = restore_controller(controller_snapshot(controller))
        assert restored.utilizations() == controller.utilizations()
        assert restored.trackers[0].tracked_ids() == frozenset()
        assert 1 in restored.trackers[1].tracked_ids()
        assert verify_restored(restored, 0.6) == []


class TestValidation:
    def test_rejects_wrong_format(self):
        controller, _ = _busy_controller()
        doc = controller_snapshot(controller)
        doc["format"] = "repro.serve.controller-snapshot/999"
        with pytest.raises(ValueError, match="unsupported snapshot format"):
            restore_controller(doc)

    def test_rejects_duplicate_task_id(self):
        controller, _ = _busy_controller()
        doc = controller_snapshot(controller)
        assert doc["admitted"], "need at least one record to duplicate"
        doc["admitted"].append(dict(doc["admitted"][0]))
        with pytest.raises(ValueError):
            restore_controller(doc)

    def test_rejects_non_integer_task_id(self):
        controller = PipelineAdmissionController(1)
        task = make_task(0.0, 1.0, [0.1], task_id="s-1")
        controller.request(task, 0.0)
        with pytest.raises(ValueError, match="not an integer"):
            controller_snapshot(controller)

    def test_demand_model_wire_round_trip(self):
        for model in (
            ScaledDemand(0.8),
            demand_model_from_wire({"kind": "exact"}),
            demand_model_from_wire({"kind": "mean", "means": [0.1, 0.2]}),
        ):
            doc = demand_model_to_wire(model)
            again = demand_model_to_wire(demand_model_from_wire(doc))
            assert doc == again
        with pytest.raises(ValueError, match="unknown demand model"):
            demand_model_from_wire({"kind": "quadratic"})

    def test_format_constant_is_versioned(self):
        assert SNAPSHOT_FORMAT.endswith("/4")
        assert SNAPSHOT_FORMAT_V3.endswith("/3")
        assert SNAPSHOT_FORMAT_V2.endswith("/2")
        assert SNAPSHOT_FORMAT_V1.endswith("/1")
        assert SUPPORTED_SNAPSHOT_FORMATS == (
            SNAPSHOT_FORMAT,
            SNAPSHOT_FORMAT_V3,
            SNAPSHOT_FORMAT_V2,
            SNAPSHOT_FORMAT_V1,
        )


def _as_v3_document(doc):
    """Down-convert a v4 snapshot to what a v3 writer would have produced."""
    legacy = {
        k: v
        for k, v in doc.items()
        if k not in ("admission_seq", "charges_follow_capacity")
    }
    legacy["admitted"] = [
        {k: v for k, v in record.items() if k not in ("demand", "seq")}
        for record in doc["admitted"]
    ]
    legacy["format"] = SNAPSHOT_FORMAT_V3
    return legacy


def _as_v1_document(doc):
    """Down-convert a v4 snapshot to what a v1 writer would have produced."""
    legacy = _as_v3_document(doc)
    del legacy["accumulators"]
    legacy["format"] = SNAPSHOT_FORMAT_V1
    return legacy


class TestV1Compat:
    """Old raw-sum snapshots (existing --state-dir deployments) restore cleanly."""

    @pytest.mark.parametrize("seed", range(3))
    def test_v1_restore_audits_clean(self, seed):
        controller, now = _busy_controller(seed)
        legacy = _as_v1_document(controller_snapshot(controller))
        restored = restore_controller(legacy)
        assert verify_restored(restored, now) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_v1_restore_preserves_sums_bitwise(self, seed):
        controller, _ = _busy_controller(seed)
        doc = controller_snapshot(controller)
        restored = restore_controller(_as_v1_document(doc))
        assert [t.audit_sums()[0] for t in restored.trackers] == doc["sums"]
        assert restored.utilizations() == controller.utilizations()

    @pytest.mark.parametrize("seed", range(3))
    def test_v1_restore_decides_the_same_tail(self, seed):
        controller, now = _busy_controller(seed)
        restored = restore_controller(
            _as_v1_document(controller_snapshot(controller))
        )
        original_tail = _decide_tail(controller, now)
        restored_tail = _decide_tail(restored, now)
        assert [(a, s) for a, s, _ in original_tail] == [
            (a, s) for a, s, _ in restored_tail
        ]
        for (_, _, rv_a), (_, _, rv_b) in zip(original_tail, restored_tail):
            assert approx_le(rv_a, rv_b) and approx_le(rv_b, rv_a)

    @pytest.mark.parametrize("seed", range(3))
    def test_v1_lineage_upgrades_to_byte_stable_v2(self, seed):
        """v1 restore → v4 snapshot → restore → v4 snapshot is a fixpoint.

        The first upgraded document after a legacy restore adopts the
        legacy rounded totals; every round trip from there on must be
        byte-identical.
        """
        controller, _ = _busy_controller(seed)
        legacy = _as_v1_document(controller_snapshot(controller))
        upgraded = controller_snapshot(restore_controller(legacy))
        assert upgraded["format"] == SNAPSHOT_FORMAT
        again = controller_snapshot(restore_controller(upgraded))
        assert json.dumps(upgraded, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestV3Compat:
    """Pre-degradation snapshots (v3) restore and upgrade deterministically."""

    @pytest.mark.parametrize("seed", range(3))
    def test_v3_restore_audits_clean_and_decides_the_same_tail(self, seed):
        controller, now = _busy_controller(seed)
        legacy = _as_v3_document(controller_snapshot(controller))
        restored = restore_controller(legacy)
        assert verify_restored(restored, now) == []
        original_tail = _decide_tail(controller, now)
        restored_tail = _decide_tail(restored, now)
        assert [(a, s) for a, s, _ in original_tail] == [
            (a, s) for a, s, _ in restored_tail
        ]

    @pytest.mark.parametrize("seed", range(3))
    def test_v3_restore_assigns_deterministic_seqs(self, seed):
        """Legacy records take sequence numbers in document (task id) order."""
        controller, _ = _busy_controller(seed)
        legacy = _as_v3_document(controller_snapshot(controller))
        restored = restore_controller(legacy)
        records = sorted(restored.iter_admitted(), key=lambda r: r[0])
        assert [r[7] for r in records] == list(range(1, len(records) + 1))
        assert restored.admission_seq == len(records)
        # Legacy records never persisted raw demand: charges stay
        # pinned across future rescales.
        assert all(r[6] is None for r in records)
        assert restored.charges_follow_capacity is False

    @pytest.mark.parametrize("seed", range(3))
    def test_v3_lineage_upgrades_to_byte_stable_v4(self, seed):
        """v3 restore → v4 snapshot → restore → v4 snapshot is a fixpoint."""
        controller, _ = _busy_controller(seed)
        legacy = _as_v3_document(controller_snapshot(controller))
        upgraded = controller_snapshot(restore_controller(legacy))
        assert upgraded["format"] == SNAPSHOT_FORMAT
        again = controller_snapshot(restore_controller(upgraded))
        assert json.dumps(upgraded, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestV4Degradation:
    """v4 documents carry the degradation state bitwise."""

    def test_v4_round_trips_demand_seq_and_flags(self):
        controller, now = _busy_controller(3)
        controller.rescale_stage_capacity(1, 0.5)
        controller.repair_region()
        doc = controller_snapshot(controller)
        assert doc["charges_follow_capacity"] is True
        assert doc["admission_seq"] == controller.admission_seq
        restored = restore_controller(doc)
        assert verify_restored(restored, now) == []
        assert restored.charges_follow_capacity is True
        assert restored.admission_seq == controller.admission_seq
        assert sorted(restored.iter_admitted()) == sorted(
            controller.iter_admitted()
        )
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            controller_snapshot(restored), sort_keys=True
        )

    def test_admission_seq_below_record_maximum_is_refused(self):
        controller, _ = _busy_controller(1)
        doc = controller_snapshot(controller)
        doc["admission_seq"] = 0
        with pytest.raises(ValueError, match="admission_seq"):
            restore_controller(doc)
