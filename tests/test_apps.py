"""Tests for the application models (TSCE and the web server)."""

import random

import pytest

from repro.apps.tsce import (
    NUM_STAGES,
    display_pipeline_spec,
    simulate_tracking_capacity,
    target_tracking_spec,
    tsce_critical_tasks,
    tsce_reservation,
    uav_video,
    weapon_detection,
    weapon_targeting,
)
from repro.apps.webserver import DEFAULT_REQUEST_MIX, RequestClass, WebServerModel


class TestTsceTaskSet:
    def test_table1_contributions(self):
        """Per-stage synthetic utilizations from Table 1."""
        wd = weapon_detection()
        assert [wd.stage_contribution(j) for j in range(3)] == pytest.approx(
            [0.2, 0.13, 0.06]
        )
        wt = weapon_targeting()
        assert [wt.stage_contribution(j) for j in range(3)] == pytest.approx(
            [0.1, 0.1, 0.1]
        )
        uav = uav_video()
        assert [uav.stage_contribution(j) for j in range(3)] == pytest.approx(
            [0.1, 0.02, 0.1]
        )

    def test_reservation_matches_paper(self):
        """The paper's reservation: (0.4, 0.25, 0.1), Eq.13 value 0.93 < 1."""
        plan = tsce_reservation()
        assert plan.reserved == pytest.approx((0.4, 0.25, 0.1))
        assert plan.region_value == pytest.approx(0.93, abs=0.005)
        assert plan.feasible

    def test_three_critical_tasks(self):
        names = [t.name for t in tsce_critical_tasks()]
        assert names == ["Weapon Detection", "Weapon Targeting", "UAV Video"]

    def test_weapon_targeting_scales_with_weapons(self):
        wt = weapon_targeting(num_weapons=3)
        assert wt.computation_times[1] == pytest.approx(0.015)
        with pytest.raises(ValueError):
            weapon_targeting(num_weapons=0)

    def test_tracking_spec_marginal_cost_on_stage_one(self):
        spec = target_tracking_spec(0)
        assert spec.computation_times == (0.001, 0.0, 0.0)
        assert spec.period == 1.0
        assert spec.deadline == 1.0

    def test_display_spec_track_independent(self):
        spec = display_pipeline_spec(num_consoles=10)
        assert spec.computation_times == pytest.approx((0.0, 0.020, 0.020))
        with pytest.raises(ValueError):
            display_pipeline_spec(num_consoles=0)


class TestTrackingCapacity:
    def test_small_population_sustained(self):
        result = simulate_tracking_capacity(100, horizon=6.0, seed=1)
        assert result.rejection_ratio == 0.0
        assert result.miss_ratio == 0.0
        assert len(result.stage_utilizations) == NUM_STAGES

    def test_stage_one_is_bottleneck(self):
        result = simulate_tracking_capacity(400, horizon=6.0, seed=1)
        assert result.bottleneck_stage == 0

    def test_utilization_grows_with_population(self):
        small = simulate_tracking_capacity(100, horizon=6.0, seed=1)
        large = simulate_tracking_capacity(400, horizon=6.0, seed=1)
        assert large.stage_utilizations[0] > small.stage_utilizations[0]

    def test_overload_produces_rejections_not_misses(self):
        result = simulate_tracking_capacity(900, horizon=6.0, seed=1)
        assert result.rejection_ratio > 0.0
        assert result.miss_ratio == 0.0

    def test_without_critical_tasks(self):
        result = simulate_tracking_capacity(
            100, horizon=6.0, seed=1, include_critical=False
        )
        # Only tracking load: stage 1 carries 100 x 1ms/s on top of the
        # idle reserved baseline.
        assert result.stage_utilizations[0] == pytest.approx(0.1, abs=0.02)


class TestRequestClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestClass("bad", (0.1, 0.1, 0.1), deadline=0.0, weight=1.0)
        with pytest.raises(ValueError):
            RequestClass("bad", (-0.1, 0.1, 0.1), deadline=1.0, weight=1.0)
        with pytest.raises(ValueError):
            RequestClass("bad", (0.1, 0.1, 0.1), deadline=1.0, weight=0.0)

    def test_resolution(self):
        cls = RequestClass("x", (0.01, 0.01, 0.0), deadline=1.0, weight=1.0)
        assert cls.resolution == pytest.approx(50.0)

    def test_zero_cost_resolution_infinite(self):
        cls = RequestClass("x", (0.0, 0.0, 0.0), deadline=1.0, weight=1.0)
        assert cls.resolution == float("inf")

    def test_default_mix_is_consistent(self):
        assert len(DEFAULT_REQUEST_MIX) == 3
        assert all(c.deadline > 0 for c in DEFAULT_REQUEST_MIX)
        # High resolution: the intro's "hundreds of concurrent requests".
        assert all(c.resolution > 20 for c in DEFAULT_REQUEST_MIX)


class TestWebServerModel:
    def test_offered_loads(self):
        model = WebServerModel(arrival_rate=100.0)
        loads = model.offered_tier_loads()
        assert len(loads) == 3
        assert all(u >= 0 for u in loads)
        # Front end serves every request: load = rate * E[front cost].
        expected_front = 100.0 * 0.002
        assert loads[0] == pytest.approx(expected_front)

    def test_static_headroom_positive_at_moderate_rate(self):
        model = WebServerModel(arrival_rate=50.0)
        assert model.static_headroom() > 0

    def test_static_headroom_negative_when_saturated(self):
        model = WebServerModel(arrival_rate=100_000.0)
        assert model.static_headroom() < 0

    def test_max_rate_is_boundary(self):
        model = WebServerModel(arrival_rate=100.0)
        rate = model.max_arrival_rate_within_region()
        assert rate > 0
        at_boundary = WebServerModel(arrival_rate=rate)
        assert abs(at_boundary.static_headroom()) < 1e-6

    def test_requests_stream_deterministic(self):
        model = WebServerModel(arrival_rate=200.0)
        a = list(model.requests(5.0, random.Random(3)))
        b = list(model.requests(5.0, random.Random(3)))
        assert [t.arrival_time for t in a] == [t.arrival_time for t in b]

    def test_simulation_no_misses(self):
        model = WebServerModel(arrival_rate=150.0)
        report = model.simulate(horizon=20.0, seed=2)
        assert report.admitted > 0
        assert report.miss_ratio() == 0.0

    def test_per_class_accept_ratios(self):
        model = WebServerModel(arrival_rate=400.0)
        report = model.simulate(horizon=20.0, seed=2)
        ratios = model.per_class_accept_ratios(report)
        assert set(ratios) <= {"static", "dynamic", "transactional"}
        assert all(0.0 <= v <= 1.0 for v in ratios.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            WebServerModel(request_mix=[])
        with pytest.raises(ValueError):
            WebServerModel(arrival_rate=0.0)


class TestSelfDefenseScenario:
    def test_urgent_tasks_always_admitted(self):
        from repro.apps.tsce import simulate_self_defense_scenario

        result = simulate_self_defense_scenario(horizon=8.0, seed=0)
        assert result.urgent_admitted

    def test_urgent_tasks_meet_hard_deadlines(self):
        from repro.apps.tsce import simulate_self_defense_scenario

        for seed in (0, 1):
            result = simulate_self_defense_scenario(horizon=8.0, seed=seed)
            assert result.urgent_misses == 0

    def test_routine_load_is_shed(self):
        from repro.apps.tsce import simulate_self_defense_scenario

        result = simulate_self_defense_scenario(horizon=8.0, seed=1)
        assert result.shed_tasks >= 1

    def test_surviving_routine_tasks_unharmed(self):
        """Shedding removes load; it never delays what stays admitted."""
        from repro.apps.tsce import simulate_self_defense_scenario

        result = simulate_self_defense_scenario(horizon=8.0, seed=0)
        assert result.tracking_miss_ratio == 0.0

    def test_urgent_profile_fits_alone(self):
        """The Weapon Detection profile fits an empty pipeline."""
        from repro.core.bounds import is_pipeline_feasible
        from repro.apps.tsce import weapon_detection

        wd = weapon_detection()
        utils = [wd.stage_contribution(j) for j in range(3)]
        assert is_pipeline_feasible(utils)


class TestAperiodicCapacity:
    def test_tsce_static_track_capacity(self):
        """Static (no-reset) capacity is far below the simulated ~550 —
        quantifying how much the idle-reset rule buys."""
        from repro.core.reservation import aperiodic_capacity
        from repro.apps.tsce import tsce_reservation

        plan = tsce_reservation()
        k = aperiodic_capacity(plan, deadline=1.0, computation_times=[0.001, 0.0, 0.0])
        assert 20 <= k <= 60  # ~35 with the paper's numbers

    def test_capacity_boundary_exact(self):
        from repro.core.reservation import aperiodic_capacity, build_reservation
        from repro.core.bounds import is_pipeline_feasible

        plan = build_reservation([], num_stages=2)
        k = aperiodic_capacity(plan, deadline=10.0, computation_times=[0.5, 0.5])
        # k tasks fit, k+1 do not.
        assert is_pipeline_feasible([k * 0.05, k * 0.05])
        assert not is_pipeline_feasible([(k + 1) * 0.05, (k + 1) * 0.05])

    def test_zero_when_reservation_full(self):
        from repro.core.reservation import aperiodic_capacity, CriticalTask, build_reservation

        plan = build_reservation(
            [CriticalTask("hog", 1.0, (0.55,))], num_stages=1
        )
        assert plan.feasible
        k = aperiodic_capacity(plan, deadline=1.0, computation_times=[0.1])
        assert k == 0

    def test_validation(self):
        import pytest as _pytest
        from repro.core.reservation import (
            aperiodic_capacity,
            CriticalTask,
            build_reservation,
        )

        plan = build_reservation([], num_stages=2)
        with _pytest.raises(ValueError):
            aperiodic_capacity(plan, deadline=0.0, computation_times=[0.1, 0.1])
        with _pytest.raises(ValueError):
            aperiodic_capacity(plan, deadline=1.0, computation_times=[0.1])
        with _pytest.raises(ValueError):
            aperiodic_capacity(plan, deadline=1.0, computation_times=[0.0, 0.0])
        infeasible = build_reservation([CriticalTask("x", 1.0, (0.5, 0.5))], 2)
        with _pytest.raises(ValueError):
            aperiodic_capacity(infeasible, deadline=1.0, computation_times=[0.1, 0.1])
