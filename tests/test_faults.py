"""Tests for the fault-injection and graceful-degradation subsystem."""

import math
import random

import pytest

from repro.core.task import make_task
from repro.faults import (
    ArrivalBurst,
    BackoffAdmission,
    BackoffPolicy,
    BrownoutConfig,
    BrownoutController,
    DropNotification,
    ExecutionOverrun,
    FaultInjector,
    FaultSchedule,
    StageOutage,
    StageSlowdown,
)
from repro.faults.cli import main as faults_main
from repro.faults.report import build_payload, render_report
from repro.faults.scenarios import run_scenario, run_scenarios, scenario_names
from repro.sim.pipeline import PipelineSimulation


def completed_at(report, task_id):
    for record in report.tasks:
        if record.task_id == task_id:
            return record.completed_at
    raise AssertionError(f"task {task_id} not in report")


def loaded_pipeline(seed, num_stages=2, load=0.8, horizon=60.0):
    """A pipeline plus a Poisson arrival stream at the given mean load."""
    pipeline = PipelineSimulation(num_stages)
    rng = random.Random(seed)
    mean_cost = 0.5
    rate = load / (num_stages * mean_cost)
    tasks = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        tasks.append(
            make_task(
                t,
                rng.uniform(5.0, 15.0),
                [rng.expovariate(1.0 / mean_cost) for _ in range(num_stages)],
            )
        )
    pipeline.offer_stream(tasks)
    return pipeline


class TestScheduleValidation:
    def test_slowdown_rejects_bad_window_and_factor(self):
        with pytest.raises(ValueError):
            StageSlowdown(stage=0, start=5.0, end=5.0, factor=0.5)
        with pytest.raises(ValueError):
            StageSlowdown(stage=0, start=-1.0, end=5.0, factor=0.5)
        with pytest.raises(ValueError):
            StageSlowdown(stage=0, start=0.0, end=5.0, factor=1.0)
        with pytest.raises(ValueError):
            StageSlowdown(stage=0, start=0.0, end=5.0, factor=0.0)

    def test_outage_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StageOutage(stage=0, start=3.0, end=2.0)
        assert StageOutage(stage=0, start=2.0, end=5.0).duration == 3.0

    def test_overrun_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExecutionOverrun(factor=0.9)
        with pytest.raises(ValueError):
            ExecutionOverrun(factor=math.inf)
        with pytest.raises(ValueError):
            ExecutionOverrun(factor=2.0, probability=1.5)

    def test_drop_rejects_bad_kind_and_probability(self):
        with pytest.raises(ValueError):
            DropNotification(kind="bogus")
        with pytest.raises(ValueError):
            DropNotification(kind="idle", probability=0.0)

    def test_burst_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ArrivalBurst(time=-1.0, count=5, deadline=1.0, mean_costs=(1.0,))
        with pytest.raises(ValueError):
            ArrivalBurst(time=0.0, count=0, deadline=1.0, mean_costs=(1.0,))
        with pytest.raises(ValueError):
            ArrivalBurst(time=0.0, count=5, deadline=0.0, mean_costs=(1.0,))
        with pytest.raises(ValueError):
            ArrivalBurst(time=0.0, count=5, deadline=1.0, mean_costs=())

    def test_schedule_sorts_and_classifies(self):
        late = StageSlowdown(stage=0, start=10.0, end=20.0, factor=0.5)
        early = StageSlowdown(stage=1, start=1.0, end=2.0, factor=0.5)
        dep = DropNotification(kind="departure")
        idle = DropNotification(kind="idle")
        schedule = FaultSchedule(slowdowns=[late, early], drops=[dep, idle])
        assert schedule.slowdowns == (early, late)
        assert schedule.drops_of_kind("departure") == (dep,)
        assert schedule.drops_of_kind("idle") == (idle,)
        assert not schedule.empty
        assert FaultSchedule().empty


class TestInjection:
    def test_install_twice_raises(self):
        injector = FaultInjector(PipelineSimulation(1), FaultSchedule())
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_slowdown_stretches_execution(self):
        pipeline = PipelineSimulation(1)
        task = make_task(0.0, 10.0, [1.0])
        pipeline.offer_at(task)
        schedule = FaultSchedule(
            slowdowns=[StageSlowdown(stage=0, start=0.0, end=10.0, factor=0.5)]
        )
        FaultInjector(pipeline, schedule).install()
        report = pipeline.run(20.0)
        # Half speed: the 1.0-unit job takes 2.0 wall-clock units.
        assert completed_at(report, task.task_id) == pytest.approx(2.0)

    def test_outage_freezes_in_flight_work(self):
        pipeline = PipelineSimulation(1)
        task = make_task(0.0, 10.0, [2.0])
        pipeline.offer_at(task)
        schedule = FaultSchedule(outages=[StageOutage(stage=0, start=1.0, end=3.0)])
        FaultInjector(pipeline, schedule).install()
        report = pipeline.run(20.0)
        # Runs [0,1), frozen during the outage [1,3), resumes [3,4).
        assert completed_at(report, task.task_id) == pytest.approx(4.0)

    def test_overrun_executes_longer_than_declared(self):
        pipeline = PipelineSimulation(1)
        task = make_task(0.0, 10.0, [1.0])
        pipeline.offer_at(task)
        schedule = FaultSchedule(
            overruns=[ExecutionOverrun(factor=2.0, probability=1.0)]
        )
        FaultInjector(pipeline, schedule).install()
        report = pipeline.run(20.0)
        record = next(r for r in report.tasks if r.task_id == task.task_id)
        # Admission charged the declared demand; execution overran it.
        assert record.admitted
        assert record.completed_at == pytest.approx(2.0)

    def test_rescaling_inflates_admission_charge(self):
        pipeline = PipelineSimulation(1)
        # Alone, this task contributes C/D = 0.3; at capacity 0.5 the
        # charge doubles to 0.6, past the 2 - sqrt(2) region bound.
        task = make_task(1.0, 10.0, [3.0])
        pipeline.offer_at(task)
        schedule = FaultSchedule(
            slowdowns=[StageSlowdown(stage=0, start=0.0, end=20.0, factor=0.5)]
        )
        FaultInjector(pipeline, schedule, rescale_admission=True).install()
        report = pipeline.run(30.0)
        record = next(r for r in report.tasks if r.task_id == task.task_id)
        assert not record.admitted

    def test_empty_schedule_is_transparent(self):
        plain = loaded_pipeline(seed=7).run(60.0)
        chaotic = loaded_pipeline(seed=7)
        injector = FaultInjector(chaotic, FaultSchedule(), audit_period=5.0)
        injector.install()
        report = chaotic.run(60.0)
        assert injector.final_audit() == []
        assert [(r.admitted, r.completed_at) for r in report.tasks] == [
            (r.admitted, r.completed_at) for r in plain.tasks
        ]

    def test_burst_injection_is_deterministic(self):
        def run(seed):
            pipeline = PipelineSimulation(2)
            schedule = FaultSchedule(
                bursts=[
                    ArrivalBurst(
                        time=5.0, count=30, deadline=10.0, mean_costs=(0.5, 0.5)
                    )
                ]
            )
            injector = FaultInjector(pipeline, schedule, seed=seed).install()
            report = pipeline.run(40.0)
            return injector.summary(), report.admitted, report.miss_ratio()

        assert run(3) == run(3)
        assert run(3)[0]["burst_tasks"] == 30


class TestDetectionAndHealing:
    def drop_run(self, heal):
        pipeline = loaded_pipeline(seed=11, load=0.9)
        schedule = FaultSchedule(
            drops=[DropNotification(kind="departure", probability=1.0)]
        )
        injector = FaultInjector(pipeline, schedule, seed=12, heal=heal)
        injector.install()
        report = pipeline.run(60.0)
        return injector, report

    def test_every_corrupting_drop_is_detected(self):
        injector, _ = self.drop_run(heal=False)
        summary = injector.summary()
        assert summary["corrupting_drops"] > 0
        assert summary["detected_corruptions"] == summary["corrupting_drops"]
        assert summary["detection_ratio"] == 1.0

    def test_healing_repairs_the_controller(self):
        injector, _ = self.drop_run(heal=True)
        assert injector.heals > 0
        # After the last in-run heal the controller is consistent again:
        # the final ground-truth audit must come back clean.
        assert injector.final_audit() == []

    def test_healing_recovers_accept_ratio(self):
        _, degraded = self.drop_run(heal=False)
        _, healed = self.drop_run(heal=True)
        assert healed.accept_ratio > degraded.accept_ratio


class TestBackoffAdmission:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay=1.0, multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay=1.0, max_attempts=0)
        assert BackoffPolicy(base_delay=1.0, multiplier=3.0).delay(2) == 9.0

    def test_rejects_pipeline_with_wait_queue(self):
        pipeline = PipelineSimulation(1, max_admission_wait=5.0)
        with pytest.raises(ValueError):
            BackoffAdmission(pipeline, BackoffPolicy(base_delay=1.0))

    def test_retry_admits_after_transient_pressure(self):
        pipeline = PipelineSimulation(1)
        # The blocker saturates the region until it departs and the
        # stage goes idle at t = 1, releasing its contribution.
        blocker = make_task(0.0, 2.0, [1.0])
        contender = make_task(0.0, 10.0, [2.0])
        pipeline.offer_at(blocker)
        backoff = BackoffAdmission(pipeline, BackoffPolicy(base_delay=1.0))
        backoff.offer_at(contender)
        report = pipeline.run(20.0)
        assert backoff.admitted_first_try == 0
        assert backoff.admitted_after_retry == 1
        assert backoff.abandoned == 0
        record = next(r for r in report.tasks if r.task_id == contender.task_id)
        assert record.admitted and not record.missed

    def test_abandons_when_deadline_unreachable(self):
        pipeline = PipelineSimulation(1)
        # f(2/3) > 1: this demand never fits the region, and by t = 1
        # a retry could not finish before the deadline anyway.
        contender = make_task(0.0, 3.0, [2.0])
        backoff = BackoffAdmission(pipeline, BackoffPolicy(base_delay=1.0))
        backoff.offer_at(contender)
        pipeline.run(20.0)
        assert backoff.abandoned == 1
        assert backoff.admitted_first_try == backoff.admitted_after_retry == 0


class TestBrownout:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(max_level=0)
        with pytest.raises(ValueError):
            BrownoutConfig(max_level=1, window=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(
                max_level=1, enter_reject_ratio=0.1, exit_reject_ratio=0.2
            )
        with pytest.raises(ValueError):
            BrownoutConfig(max_level=1, min_samples=0)

    def test_install_twice_raises(self):
        controller = BrownoutController(
            PipelineSimulation(1), BrownoutConfig(max_level=1)
        )
        controller.install()
        with pytest.raises(RuntimeError):
            controller.install()

    def test_gate_sheds_below_level_only(self):
        pipeline = PipelineSimulation(1)
        brownout = BrownoutController(pipeline, BrownoutConfig(max_level=2))
        brownout.level = 1
        low = make_task(1.0, 10.0, [0.1], importance=0)
        high = make_task(1.0, 10.0, [0.1], importance=1)
        brownout.offer_at(low)
        brownout.offer_at(high)
        report = pipeline.run(20.0)
        assert brownout.browned_out == 1
        assert brownout.browned_out_by_importance == {0: 1}
        by_id = {r.task_id: r for r in report.tasks}
        # The shed task is recorded as rejected but was never charged.
        assert not by_id[low.task_id].admitted
        assert by_id[high.task_id].admitted


class TestScenarios:
    def test_catalog_and_unknown_name(self):
        names = scenario_names()
        assert "baseline" in names and "brownout" in names
        with pytest.raises(KeyError):
            run_scenario("no-such-scenario", seed=0)

    def test_baseline_scenario_is_fault_free(self):
        result = run_scenario("baseline", seed=0)
        (point,) = result["points"]
        assert point["violations_total"] == 0
        assert point["detection_ratio"] == 1.0
        assert point["miss_ratio_admitted"] == 0.0

    @pytest.mark.slow_chaos
    def test_all_scenarios_are_deterministic(self):
        names = scenario_names()
        first = render_report(run_scenarios(names, seed=0), seed=0)
        second = render_report(run_scenarios(names, seed=0), seed=0)
        assert first == second
        assert build_payload({}, 0)["harness"] == "repro.faults"


class TestCli:
    def test_list_names_scenarios(self, capsys):
        assert faults_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_fails(self, capsys):
        assert faults_main(["--scenario", "bogus"]) == 2

    def test_output_is_byte_identical_across_runs(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        args = ["--scenario", "baseline", "--scenario", "burst", "--seed", "3"]
        assert faults_main(args + ["--out", str(first)]) == 0
        assert faults_main(args + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert b'"harness": "repro.faults"' in first.read_bytes()


class TestNetworkFaultSchedule:
    """ISSUE-7: the fleet chaos harness's pure-data fault scripts."""

    def test_validation_rejects_bad_parameters(self):
        from repro.faults.schedule import (
            ConnectionStorm,
            PartialWrite,
            SlowClientStall,
            TornFrame,
            WorkerKill,
        )

        with pytest.raises(ValueError):
            TornFrame(at_op=-1)
        with pytest.raises(ValueError):
            TornFrame(at_op=0, keep=1.0)
        with pytest.raises(ValueError):
            PartialWrite(at_op=0, cut=0.0)
        with pytest.raises(ValueError):
            SlowClientStall(at_op=0, retries=0)
        with pytest.raises(ValueError):
            ConnectionStorm(at_op=0, count=0)
        with pytest.raises(ValueError):
            WorkerKill(at_op=0, worker=-1)
        with pytest.raises(ValueError):
            WorkerKill(at_op=0, worker=0, kind="mid-quantum")
        with pytest.raises(ValueError):
            WorkerKill(at_op=0, worker=0, detect="telepathy")

    def test_kill_kind_and_detection_enums_accept_all_members(self):
        from repro.faults.schedule import (
            WORKER_KILL_DETECTIONS,
            WORKER_KILL_KINDS,
            WorkerKill,
        )

        for kind in WORKER_KILL_KINDS:
            for detect in WORKER_KILL_DETECTIONS:
                kill = WorkerKill(at_op=1, worker=0, kind=kind, detect=detect)
                assert (kill.kind, kill.detect) == (kind, detect)

    def test_construction_order_does_not_matter(self):
        from repro.faults.schedule import (
            NetworkFaultSchedule,
            TornFrame,
            WorkerKill,
        )

        forward = NetworkFaultSchedule(
            torn_frames=(TornFrame(at_op=1), TornFrame(at_op=5)),
            kills=(WorkerKill(at_op=2, worker=0), WorkerKill(at_op=2, worker=1)),
        )
        backward = NetworkFaultSchedule(
            torn_frames=(TornFrame(at_op=5), TornFrame(at_op=1)),
            kills=(WorkerKill(at_op=2, worker=1), WorkerKill(at_op=2, worker=0)),
        )
        assert forward == backward
        assert [f.at_op for f in forward.torn_frames] == [1, 5]
        assert [k.worker for k in forward.kills] == [0, 1]

    def test_empty_and_counts(self):
        from repro.faults.schedule import (
            ConnectionStorm,
            NetworkFaultSchedule,
            PartialWrite,
            SlowClientStall,
            TornFrame,
            WorkerKill,
        )

        assert NetworkFaultSchedule().empty is True
        schedule = NetworkFaultSchedule(
            torn_frames=(TornFrame(at_op=0),),
            partial_writes=(PartialWrite(at_op=1), PartialWrite(at_op=2)),
            stalls=(SlowClientStall(at_op=3),),
            storms=(ConnectionStorm(at_op=4),),
            kills=(WorkerKill(at_op=5, worker=0),),
        )
        assert schedule.empty is False
        assert schedule.counts() == {
            "torn_frames": 1,
            "partial_writes": 2,
            "stalls": 1,
            "storms": 1,
            "kills": 1,
        }
