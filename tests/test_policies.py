"""Tests for scheduling policies."""

import pytest

from repro.core.task import make_task
from repro.sim.policies import (
    DeadlineMonotonic,
    EarliestDeadlineFirst,
    FifoPolicy,
    ImportanceFirst,
    RandomPriority,
)


class TestDeadlineMonotonic:
    def test_orders_by_relative_deadline(self):
        p = DeadlineMonotonic()
        short = make_task(50.0, 1.0, [0.1])
        long = make_task(0.0, 9.0, [0.1])
        assert p.priority_key(short) < p.priority_key(long)

    def test_fixed_priority_flag(self):
        assert DeadlineMonotonic.fixed_priority

    def test_alpha_is_one(self):
        assert DeadlineMonotonic().alpha([1.0, 5.0, 2.0]) == 1.0

    def test_tie_broken_by_id(self):
        p = DeadlineMonotonic()
        a = make_task(0.0, 5.0, [0.1], task_id=1)
        b = make_task(0.0, 5.0, [0.1], task_id=2)
        assert p.priority_key(a) < p.priority_key(b)


class TestEDF:
    def test_orders_by_absolute_deadline(self):
        p = EarliestDeadlineFirst()
        early = make_task(0.0, 5.0, [0.1])
        late = make_task(10.0, 5.0, [0.1])
        assert p.priority_key(early) < p.priority_key(late)

    def test_not_fixed_priority(self):
        """EDF priority depends on arrival time, so it is not a
        fixed-priority policy in the paper's sense (Section 2)."""
        assert not EarliestDeadlineFirst.fixed_priority

    def test_arrival_can_invert_relative_order(self):
        p = EarliestDeadlineFirst()
        urgent_late = make_task(10.0, 1.0, [0.1])  # absolute 11
        relaxed_early = make_task(0.0, 5.0, [0.1])  # absolute 5
        assert p.priority_key(relaxed_early) < p.priority_key(urgent_late)


class TestFifo:
    def test_orders_by_arrival(self):
        p = FifoPolicy()
        first = make_task(0.0, 100.0, [0.1])
        second = make_task(1.0, 0.5, [0.1])
        assert p.priority_key(first) < p.priority_key(second)

    def test_not_fixed_priority(self):
        assert not FifoPolicy.fixed_priority


class TestRandomPriority:
    def test_deterministic_per_task(self):
        p = RandomPriority(seed=3)
        t = make_task(0.0, 1.0, [0.1], task_id=77)
        assert p.priority_key(t) == p.priority_key(t)

    def test_seed_changes_assignment(self):
        t = make_task(0.0, 1.0, [0.1], task_id=77)
        keys = {RandomPriority(seed=s).priority_key(t)[0] for s in range(10)}
        assert len(keys) > 1

    def test_alpha_least_over_most(self):
        p = RandomPriority()
        assert p.alpha([1.0, 2.0, 4.0]) == pytest.approx(0.25)

    def test_independent_of_deadline(self):
        p = RandomPriority(seed=0)
        a = make_task(0.0, 1.0, [0.1], task_id=5)
        b = make_task(0.0, 100.0, [0.1], task_id=5)
        assert p.priority_key(a)[0] == p.priority_key(b)[0]


class TestImportanceFirst:
    def test_importance_dominates(self):
        p = ImportanceFirst()
        vip = make_task(0.0, 100.0, [0.1], importance=5)
        urgent = make_task(0.0, 0.1, [0.1], importance=0)
        assert p.priority_key(vip) < p.priority_key(urgent)

    def test_dm_within_class(self):
        p = ImportanceFirst()
        a = make_task(0.0, 1.0, [0.1], importance=5)
        b = make_task(0.0, 9.0, [0.1], importance=5)
        assert p.priority_key(a) < p.priority_key(b)

    def test_alpha_conservative(self):
        p = ImportanceFirst()
        assert p.alpha([1.0, 4.0]) == pytest.approx(0.25)
