"""Serve-layer degradation: manager, wire ops, snapshots, chaos gates.

ISSUE-9 tentpole coverage above the controller: the
:class:`~repro.serve.degradation.DegradationManager` (signal ingestion
with hysteresis, transactional rescale + sacrifice, replayable ledger),
the ``set_capacity`` / ``report`` protocol operations (validation,
idempotence, journaled recovery), degradation state riding the pipeline
snapshot, and small-cycle runs of the dedicated chaos gates.
"""

import json

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.task import make_task
from repro.faults.degradation import CapacityHysteresis
from repro.serve.client import GatewayClient, GatewayError, InProcessTransport
from repro.serve.degchaos import (
    degradation_chaos_gate_failures,
    run_degradation_chaos,
)
from repro.serve.degradation import (
    OBSERVATION_KINDS,
    SACRIFICE_LEDGER_LIMIT,
    DegradationManager,
    hysteresis_from_wire,
    hysteresis_to_wire,
)
from repro.serve.fleetchaos import fleet_chaos_gate_failures, run_fleet_chaos
from repro.serve.gateway import AdmissionGateway
from repro.serve.recovery import recover, registry_fingerprint

#: Two confirmations on a 0.1 grid: drops and restores both take two
#: agreeing samples, so each test can step the hysteresis explicitly.
HYSTERESIS = {
    "confirm_drops": 2,
    "confirm_restores": 2,
    "quantum": 0.1,
    "floor": 0.2,
}
POLICY = {"num_stages": 2, "alpha": 0.9, "degradation": HYSTERESIS}


def _task(task_id, costs, deadline=1.0, importance=0):
    return make_task(
        arrival_time=0.0,
        deadline=deadline,
        computation_times=costs,
        importance=importance,
        task_id=task_id,
    )


def _manager(num_stages=2):
    return DegradationManager(num_stages, hysteresis_from_wire(HYSTERESIS))


def _controller(num_stages=2):
    controller = PipelineAdmissionController(num_stages, alpha=0.9)
    assert controller.request(
        _task(1, [0.1] * num_stages, deadline=2.0, importance=1), now=0.0
    ).admitted
    assert controller.request(
        _task(2, [0.1] * num_stages, deadline=2.0), now=0.0
    ).admitted
    return controller


class TestHysteresisWire:
    def test_none_selects_defaults(self):
        assert hysteresis_from_wire(None) == CapacityHysteresis()

    def test_round_trip_is_canonical(self):
        config = hysteresis_from_wire(HYSTERESIS)
        assert hysteresis_to_wire(config) == HYSTERESIS
        assert hysteresis_from_wire(hysteresis_to_wire(config)) == config

    def test_partial_documents_inherit_defaults(self):
        config = hysteresis_from_wire({"confirm_drops": 5})
        assert config.confirm_drops == 5
        assert config.quantum == CapacityHysteresis().quantum

    @pytest.mark.parametrize(
        "doc",
        [
            "not-an-object",
            {"confirm_drop": 2},  # typo must not silently default
            {"confirm_drops": 0},
            {"quantum": 0.0},
            {"floor": -0.5},
        ],
    )
    def test_malformed_documents_are_rejected(self, doc):
        with pytest.raises(ValueError):
            hysteresis_from_wire(doc)


class TestDegradationManager:
    def test_observation_kinds_are_the_wire_contract(self):
        assert OBSERVATION_KINDS == ("overrun", "slowdown", "ok")

    def test_single_blip_never_moves_the_estimate(self):
        manager, controller = _manager(), _controller()
        result = manager.observe(controller, 0, "slowdown", 0.5)
        assert result == {"confirmed": False, "capacity": 1.0, "sacrificed": []}
        assert controller.stage_capacities() == (1.0, 1.0)

    def test_agreeing_samples_confirm_and_rescale(self):
        manager, controller = _manager(), _controller()
        before = {t[0]: t[1] for t in controller.iter_admitted()}
        manager.observe(controller, 0, "slowdown", 0.5)
        result = manager.observe(controller, 0, "slowdown", 0.5)
        assert result["confirmed"] is True
        assert result["capacity"] == 0.5
        assert controller.stage_capacities() == (0.5, 1.0)
        after = {t[0]: t[1] for t in controller.iter_admitted()}
        for task_id in before:
            assert after[task_id][0] == before[task_id][0] * 2.0

    def test_overrun_ratio_is_reciprocal_capacity(self):
        manager, controller = _manager(), _controller()
        # Service twice as slow as nominal == capacity one half.
        manager.observe(controller, 1, "overrun", 2.0)
        result = manager.observe(controller, 1, "overrun", 2.0)
        assert result["confirmed"] is True
        assert result["capacity"] == 0.5

    def test_ok_probes_confirm_the_restore(self):
        manager, controller = _manager(), _controller()
        manager.observe(controller, 0, "slowdown", 0.5)
        manager.observe(controller, 0, "slowdown", 0.5)
        manager.observe(controller, 0, "ok")
        result = manager.observe(controller, 0, "ok")
        assert result["confirmed"] is True
        assert result["capacity"] == 1.0
        assert controller.stage_capacities() == (1.0, 1.0)

    @pytest.mark.parametrize(
        "kind,ratio",
        [
            ("meltdown", 2.0),  # unknown kind
            ("slowdown", None),  # missing ratio
            ("overrun", 0.0),  # non-positive ratio
            ("slowdown", -1.0),
        ],
    )
    def test_bad_observations_are_rejected(self, kind, ratio):
        manager, controller = _manager(), _controller()
        with pytest.raises(ValueError):
            manager.observe(controller, 0, kind, ratio)

    def test_out_of_range_stage_is_rejected(self):
        manager, controller = _manager(), _controller()
        with pytest.raises(ValueError):
            manager.observe(controller, 7, "ok")

    def test_apply_capacity_records_sacrifices_in_the_ledger(self):
        manager = _manager(1)
        controller = PipelineAdmissionController(1, alpha=0.9)
        assert controller.request(
            _task(1, [0.25], deadline=2.0, importance=1), now=0.0
        ).admitted
        assert controller.request(_task(2, [0.25], deadline=2.0), now=0.0).admitted
        summary = manager.apply_capacity(controller, 0, 0.4)
        assert summary["sacrificed"] == [2]  # importance 0 falls first
        assert controller.is_admitted(1)
        assert controller.region_ok()
        assert manager.sacrifices() == [
            {"stage": 0, "capacity": 0.4, "sacrificed": [2]}
        ]
        assert manager.stats_doc()["ledger_entries"] == 1
        # A sacrifice-free restore adds no ledger noise.
        assert manager.apply_capacity(controller, 0, 1.0)["sacrificed"] == []
        assert manager.stats_doc()["ledger_entries"] == 1

    def test_declared_level_anchors_subsequent_reports(self):
        manager, controller = _manager(), _controller()
        manager.apply_capacity(controller, 0, 0.5)
        # Reports agreeing with the declared level are not "changes".
        assert manager.observe(controller, 0, "slowdown", 0.5)["confirmed"] is False
        assert manager.observe(controller, 0, "slowdown", 0.5)["confirmed"] is False
        assert controller.stage_capacities() == (0.5, 1.0)

    def test_state_round_trips_bitwise(self):
        manager = _manager(1)
        controller = PipelineAdmissionController(1, alpha=0.9)
        assert controller.request(
            _task(1, [0.25], deadline=2.0, importance=1), now=0.0
        ).admitted
        assert controller.request(_task(2, [0.25], deadline=2.0), now=0.0).admitted
        manager.apply_capacity(controller, 0, 0.4)  # sacrifices task 2
        manager.observe(controller, 0, "ok")  # half-confirmed restore
        assert manager.sacrifices()  # the ledger rides along
        twin = _manager(1)
        twin.load_state(manager.state_doc())
        assert twin.fingerprint_doc() == manager.fingerprint_doc()
        assert json.dumps(twin.state_doc(), sort_keys=True) == json.dumps(
            manager.state_doc(), sort_keys=True
        )

    @pytest.mark.parametrize(
        "doc",
        [
            "nope",
            {"ledger": "nope"},
            {"ledger": ["nope"]},
            {"ledger": [{"stage": 0}]},  # missing fields
        ],
    )
    def test_malformed_state_is_rejected(self, doc):
        with pytest.raises(ValueError):
            _manager().load_state(doc)

    def test_loaded_ledger_is_bounded(self):
        manager = _manager()
        oversized = [
            {"stage": 0, "capacity": 0.5, "sacrificed": [n]}
            for n in range(SACRIFICE_LEDGER_LIMIT + 10)
        ]
        manager.load_state(
            {"estimator": manager.estimator.state_doc(), "ledger": oversized}
        )
        ledger = manager.sacrifices()
        assert len(ledger) == SACRIFICE_LEDGER_LIMIT
        assert ledger[-1]["sacrificed"] == [SACRIFICE_LEDGER_LIMIT + 9]


def _client(gateway=None):
    return GatewayClient(InProcessTransport(gateway or AdmissionGateway()))


class TestWireOps:
    def test_set_capacity_rescales_and_reports_sacrifices(self):
        client = _client()
        client.register("web", POLICY)
        client.admit("web", _task(1, [0.25, 0.1], deadline=2.0, importance=1))
        client.admit("web", _task(2, [0.25, 0.1], deadline=2.0))
        response = client.call(
            "set_capacity", pipeline="web", stage=0, capacity=0.4
        )
        assert response["capacities"] == [0.4, 1.0]
        assert response["sacrificed"] == [2]
        assert response["region_value"] >= 0.0
        stats = client.stats("web")["stats"]["web"]
        assert stats["counters"]["rescales"] == 1
        assert stats["counters"]["sacrificed"] == 1
        assert stats["degradation"]["estimated_capacities"] == [0.4, 1.0]
        assert stats["degradation"]["ledger_entries"] == 1

    def test_report_follows_the_hysteresis(self):
        client = _client()
        client.register("web", POLICY)
        first = client.call(
            "report", pipeline="web", stage=1, kind="slowdown", ratio=0.5
        )
        assert first["confirmed"] is False
        assert first["capacity"] == 1.0
        second = client.call(
            "report", pipeline="web", stage=1, kind="slowdown", ratio=0.5
        )
        assert second["confirmed"] is True
        assert second["capacity"] == 0.5
        stats = client.stats("web")["stats"]["web"]
        assert stats["capacities"] == [1.0, 0.5]
        assert stats["counters"]["rescales"] == 1
        assert stats["degradation"]["confirmed_drops"] == 1

    def test_operand_validation(self):
        client = _client()
        client.register("web", POLICY)
        with pytest.raises(GatewayError) as excinfo:
            client.call("set_capacity", pipeline="web", stage=0)
        assert excinfo.value.code == "bad-request"
        with pytest.raises(GatewayError) as excinfo:
            client.call("set_capacity", pipeline="web", stage=0, capacity=1.5)
        assert excinfo.value.code == "bad-capacity"
        with pytest.raises(GatewayError) as excinfo:
            client.call("set_capacity", pipeline="web", stage=9, capacity=0.5)
        assert excinfo.value.code == "bad-stage"
        with pytest.raises(GatewayError) as excinfo:
            client.call("report", pipeline="web", stage=0, kind="meltdown")
        assert excinfo.value.code == "bad-report"
        with pytest.raises(GatewayError) as excinfo:
            client.call("report", pipeline="web", stage=0, kind="slowdown")
        assert excinfo.value.code == "bad-report"

    def test_failed_validation_mutates_nothing(self):
        client = _client()
        client.register("web", POLICY)
        for kwargs in (
            {"op": "set_capacity", "stage": 0, "capacity": 2.0},
            {"op": "report", "stage": 0, "kind": "meltdown"},
        ):
            op = kwargs.pop("op")
            with pytest.raises(GatewayError):
                client.call(op, pipeline="web", **kwargs)
        stats = client.stats("web")["stats"]["web"]
        assert stats["capacities"] == [1.0, 1.0]
        assert stats["counters"]["rescales"] == 0

    def test_set_capacity_is_idempotent_under_rid_replay(self):
        gateway = AdmissionGateway()
        client = _client(gateway)
        client.register("web", POLICY)
        first = client.call(
            "set_capacity", rid="cap-1", pipeline="web", stage=0, capacity=0.5
        )
        replay = client.call(
            "set_capacity", rid="cap-1", pipeline="web", stage=0, capacity=0.5
        )
        assert gateway.dedup_hits == 1
        assert replay["capacities"] == first["capacities"]
        stats = client.stats("web")["stats"]["web"]
        assert stats["counters"]["rescales"] == 1  # applied exactly once

    def test_prospective_capacity_op_is_unchanged(self):
        client = _client()
        client.register("web", POLICY)
        client.admit("web", _task(1, [0.1, 0.1], deadline=2.0))
        before = client.stats("web")["stats"]["web"]["region_value"]
        response = client.call("capacity", pipeline="web", stage=0, capacity=0.5)
        assert response["capacities"] == [0.5, 1.0]
        stats = client.stats("web")["stats"]["web"]
        # Prospective: no re-charge, no rescale counter, no sacrifice.
        assert stats["region_value"] == before
        assert stats["counters"]["rescales"] == 0


class TestJournaledRecovery:
    def test_degradation_ops_replay_bitwise(self, tmp_path):
        durable, _ = recover(tmp_path)
        durable.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "web", "policy": POLICY,
        }))
        durable.handle_line(json.dumps({
            "id": 1, "op": "admit", "pipeline": "web",
            "task": {"task_id": 1, "arrival": 0.0, "deadline": 2.0,
                     "costs": [0.25, 0.1], "importance": 1},
        }))
        durable.handle_line(json.dumps({
            "id": 2, "op": "admit", "pipeline": "web",
            "task": {"task_id": 2, "arrival": 0.0, "deadline": 2.0,
                     "costs": [0.25, 0.1]},
        }))
        durable.handle_line(json.dumps({
            "id": 3, "op": "set_capacity", "pipeline": "web",
            "stage": 0, "capacity": 0.4,
        }))
        durable.handle_line(json.dumps({
            "id": 4, "op": "report", "pipeline": "web",
            "stage": 1, "kind": "slowdown", "ratio": 0.5,
        }))
        # SIGKILL-equivalent: close the journal, no drain.
        durable.journal.close()
        fingerprint = registry_fingerprint(durable)
        fingerprinted = json.loads(fingerprint)["pipelines"][0]["degradation"]
        assert fingerprinted["ledger"]  # the sacrifice rides the fingerprint
        recovered, report = recover(tmp_path)
        try:
            assert report.replayed >= 5
            assert registry_fingerprint(recovered) == fingerprint
        finally:
            recovered.close()


class TestSnapshotCarriesDegradation:
    def _degraded_gateway(self):
        client = _client()
        client.register("web", POLICY)
        client.admit("web", _task(1, [0.25, 0.1], deadline=2.0, importance=1))
        client.admit("web", _task(2, [0.25, 0.1], deadline=2.0))
        client.call("set_capacity", pipeline="web", stage=0, capacity=0.4)
        client.call("report", pipeline="web", stage=1, kind="slowdown", ratio=0.5)
        return client

    def test_snapshot_restore_round_trips_degradation_state(self):
        source = self._degraded_gateway()
        snapshot = source.call("snapshot", pipeline="web")["snapshot"]
        assert snapshot["degradation"]["ledger"] == [
            {"stage": 0, "capacity": 0.4, "sacrificed": [2]}
        ]
        target = _client()
        target.call("restore", pipeline="web", snapshot=snapshot)
        assert (
            target.stats("web")["stats"]["web"]["degradation"]
            == source.stats("web")["stats"]["web"]["degradation"]
        )
        assert target.call("snapshot", pipeline="web")["snapshot"] == snapshot

    def test_pre_degradation_snapshot_restores_with_fresh_state(self):
        source = self._degraded_gateway()
        snapshot = source.call("snapshot", pipeline="web")["snapshot"]
        legacy = {k: v for k, v in snapshot.items() if k != "degradation"}
        target = _client()
        target.call("restore", pipeline="web", snapshot=legacy)
        degradation = target.stats("web")["stats"]["web"]["degradation"]
        # No degradation history — but the estimator is alive and sized.
        assert degradation["ledger_entries"] == 0
        assert degradation["confirmed_drops"] == 0
        assert degradation["estimated_capacities"] == [1.0, 1.0]


class TestChaosGates:
    def test_degradation_chaos_gate_holds_and_is_byte_stable(self, tmp_path):
        report = run_degradation_chaos(
            seed=5, cycles=6, ops_per_cycle=12,
            state_dir=tmp_path / "a", snapshot_every=10,
        )
        assert degradation_chaos_gate_failures(report, min_recoveries=6) == []
        again = run_degradation_chaos(
            seed=5, cycles=6, ops_per_cycle=12,
            state_dir=tmp_path / "b", snapshot_every=10,
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_fleet_chaos_with_degradation_waves(self, tmp_path):
        report = run_fleet_chaos(
            seed=2, cycles=6, workers=2, ops_per_cycle=10,
            state_dir=tmp_path, degradation=True,
        )
        assert fleet_chaos_gate_failures(report, min_recoveries=4) == []
        assert report["degradation"]["ops"] > 0
        assert report["degradation"]["rescales"] > 0
