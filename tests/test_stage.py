"""Tests for the preemptive fixed-priority stage."""

import pytest

from repro.core.task import make_task
from repro.sim.engine import Simulator
from repro.sim.stage import Segment, Stage


def setup_stage():
    sim = Simulator()
    completions = []
    idles = []
    stage = Stage(
        sim,
        index=0,
        on_job_complete=lambda job: completions.append((sim.now, job.task.task_id)),
        on_idle=lambda s: idles.append(sim.now),
    )
    return sim, stage, completions, idles


def key(task):
    return (task.deadline, float(task.task_id))


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        sim, stage, completions, idles = setup_stage()
        t = make_task(0.0, 10.0, [3.0])
        stage.submit(t, key(t), duration=3.0)
        sim.run()
        assert completions == [(3.0, t.task_id)]
        assert idles == [3.0]
        assert stage.busy_time() == pytest.approx(3.0)
        assert stage.jobs_completed == 1

    def test_sequential_jobs_same_priority_fifo(self):
        sim, stage, completions, _ = setup_stage()
        a = make_task(0.0, 10.0, [2.0], task_id=9001)
        b = make_task(0.0, 10.0, [2.0], task_id=9002)
        stage.submit(a, (10.0, 1.0), duration=2.0)
        stage.submit(b, (10.0, 2.0), duration=2.0)
        sim.run()
        assert completions == [(2.0, 9001), (4.0, 9002)]

    def test_zero_duration_job(self):
        sim, stage, completions, _ = setup_stage()
        t = make_task(0.0, 10.0, [0.0])
        stage.submit(t, key(t), duration=0.0)
        sim.run()
        assert completions == [(0.0, t.task_id)]
        assert stage.busy_time() == 0.0

    def test_negative_duration_rejected(self):
        sim, stage, _, _ = setup_stage()
        t = make_task(0.0, 10.0, [1.0])
        with pytest.raises(ValueError):
            stage.submit(t, key(t), duration=-1.0)

    def test_duration_xor_segments(self):
        sim, stage, _, _ = setup_stage()
        t = make_task(0.0, 10.0, [1.0])
        with pytest.raises(ValueError):
            stage.submit(t, key(t))
        with pytest.raises(ValueError):
            stage.submit(t, key(t), duration=1.0, segments=[Segment(1.0)])

    def test_empty_segments_rejected(self):
        sim, stage, _, _ = setup_stage()
        t = make_task(0.0, 10.0, [1.0])
        with pytest.raises(ValueError):
            stage.submit(t, key(t), segments=[])


class TestPreemption:
    def test_higher_priority_preempts(self):
        sim, stage, completions, _ = setup_stage()
        low = make_task(0.0, 100.0, [4.0], task_id=9101)
        high = make_task(0.0, 1.0, [1.0], task_id=9102)
        job_low = stage.submit(low, key(low), duration=4.0)
        sim.at(1.0, lambda: stage.submit(high, key(high), duration=1.0))
        sim.run()
        # low runs [0,1), high runs [1,2), low resumes [2,5).
        assert completions == [(2.0, 9102), (5.0, 9101)]
        assert job_low.preemptions == 1

    def test_lower_priority_does_not_preempt(self):
        sim, stage, completions, _ = setup_stage()
        high = make_task(0.0, 1.0, [4.0], task_id=9111)
        low = make_task(0.0, 100.0, [1.0], task_id=9112)
        stage.submit(high, key(high), duration=4.0)
        sim.at(1.0, lambda: stage.submit(low, key(low), duration=1.0))
        sim.run()
        assert completions == [(4.0, 9111), (5.0, 9112)]

    def test_equal_priority_does_not_preempt(self):
        sim, stage, completions, _ = setup_stage()
        a = make_task(0.0, 5.0, [4.0], task_id=9121)
        b = make_task(0.0, 5.0, [1.0], task_id=9122)
        stage.submit(a, (5.0, 1.0), duration=4.0)
        sim.at(1.0, lambda: stage.submit(b, (5.0, 2.0), duration=1.0))
        sim.run()
        assert completions == [(4.0, 9121), (5.0, 9122)]

    def test_nested_preemption(self):
        sim, stage, completions, _ = setup_stage()
        t1 = make_task(0.0, 100.0, [5.0], task_id=9131)
        t2 = make_task(0.0, 10.0, [3.0], task_id=9132)
        t3 = make_task(0.0, 1.0, [1.0], task_id=9133)
        stage.submit(t1, key(t1), duration=5.0)
        sim.at(1.0, lambda: stage.submit(t2, key(t2), duration=3.0))
        sim.at(2.0, lambda: stage.submit(t3, key(t3), duration=1.0))
        sim.run()
        # t1 [0,1), t2 [1,2), t3 [2,3), t2 [3,5), t1 [5,9).
        assert completions == [(3.0, 9133), (5.0, 9132), (9.0, 9131)]

    def test_preempted_job_resumes_with_remaining_time(self):
        sim, stage, completions, _ = setup_stage()
        low = make_task(0.0, 100.0, [2.0], task_id=9141)
        stage.submit(low, key(low), duration=2.0)
        for i, arrival in enumerate((0.5, 1.0, 1.5)):
            hp = make_task(arrival, 1.0, [0.25], task_id=9150 + i)
            sim.at(arrival, lambda t=hp: stage.submit(t, key(t), duration=0.25))
        sim.run()
        # Low executes 2.0 total, delayed by 0.75 of preemption.
        assert completions[-1] == (2.75, 9141)

    def test_busy_time_excludes_idle_gaps(self):
        sim, stage, _, _ = setup_stage()
        a = make_task(0.0, 10.0, [1.0])
        stage.submit(a, key(a), duration=1.0)
        b = make_task(5.0, 10.0, [1.0])
        sim.at(5.0, lambda: stage.submit(b, key(b), duration=1.0))
        sim.run()
        assert stage.busy_time() == pytest.approx(2.0)
        assert sim.now == 6.0


class TestIdleTransitions:
    def test_idle_fires_once_per_transition(self):
        sim, stage, _, idles = setup_stage()
        a = make_task(0.0, 10.0, [1.0])
        b = make_task(3.0, 10.0, [1.0])
        stage.submit(a, key(a), duration=1.0)
        sim.at(3.0, lambda: stage.submit(b, key(b), duration=1.0))
        sim.run()
        assert idles == [1.0, 4.0]

    def test_no_idle_while_queue_nonempty(self):
        sim, stage, _, idles = setup_stage()
        for i in range(3):
            t = make_task(0.0, 10.0, [1.0])
            stage.submit(t, (10.0, float(i)), duration=1.0)
        sim.run()
        assert idles == [3.0]

    def test_is_idle_property(self):
        sim, stage, _, _ = setup_stage()
        assert stage.is_idle
        t = make_task(0.0, 10.0, [1.0])
        stage.submit(t, key(t), duration=1.0)
        assert not stage.is_idle
        sim.run()
        assert stage.is_idle

    def test_queue_length(self):
        sim, stage, _, _ = setup_stage()
        for i in range(3):
            t = make_task(0.0, 10.0, [1.0])
            stage.submit(t, (10.0, float(i)), duration=1.0)
        # One runs, two queued.
        assert stage.queue_length() == 2


class TestAbort:
    def test_abort_running_job(self):
        sim, stage, completions, idles = setup_stage()
        t = make_task(0.0, 10.0, [5.0])
        job = stage.submit(t, key(t), duration=5.0)
        sim.at(2.0, lambda: stage.abort(job))
        sim.run()
        assert completions == []
        assert idles == [2.0]
        # The 2 units actually executed still count as busy.
        assert stage.busy_time() == pytest.approx(2.0)

    def test_abort_ready_job_lets_other_finish(self):
        sim, stage, completions, _ = setup_stage()
        a = make_task(0.0, 1.0, [3.0], task_id=9201)
        b = make_task(0.0, 100.0, [3.0], task_id=9202)
        stage.submit(a, key(a), duration=3.0)
        job_b = stage.submit(b, key(b), duration=3.0)
        sim.at(1.0, lambda: stage.abort(job_b))
        sim.run()
        assert completions == [(3.0, 9201)]

    def test_abort_is_idempotent(self):
        sim, stage, _, _ = setup_stage()
        t = make_task(0.0, 10.0, [5.0])
        job = stage.submit(t, key(t), duration=5.0)
        stage.abort(job)
        stage.abort(job)  # no-op
        sim.run()
        assert stage.jobs_completed == 0

    def test_abort_promotes_next_job(self):
        sim, stage, completions, _ = setup_stage()
        a = make_task(0.0, 1.0, [10.0], task_id=9211)
        b = make_task(0.0, 100.0, [1.0], task_id=9212)
        job_a = stage.submit(a, key(a), duration=10.0)
        stage.submit(b, key(b), duration=1.0)
        sim.at(2.0, lambda: stage.abort(job_a))
        sim.run()
        assert completions == [(3.0, 9212)]


class TestSegments:
    def test_multi_segment_job(self):
        sim, stage, completions, _ = setup_stage()
        t = make_task(0.0, 10.0, [3.0])
        stage.submit(t, key(t), segments=[Segment(1.0), Segment(2.0)])
        sim.run()
        assert completions == [(3.0, t.task_id)]

    def test_job_records_start_and_finish(self):
        sim, stage, _, _ = setup_stage()
        blocker = make_task(0.0, 1.0, [2.0])
        stage.submit(blocker, key(blocker), duration=2.0)
        t = make_task(0.0, 100.0, [1.0])
        job = stage.submit(t, key(t), duration=1.0)
        sim.run()
        assert job.started_at == pytest.approx(2.0)
        assert job.finished_at == pytest.approx(3.0)
        assert job.total_duration == pytest.approx(1.0)
