"""Shard map, worker-side enforcement, and client-side re-resolution."""

import json

import pytest

from repro.serve.client import GatewayClient, GatewayError, InProcessTransport
from repro.serve.gateway import AdmissionGateway
from repro.serve.journal import DurableGateway, Journal
from repro.serve.protocol import ProtocolError, encode
from repro.serve.router import (
    SHARD_MAP_FORMAT,
    ShardGateway,
    ShardMap,
    ShardRouter,
    partition_names,
    wrong_shard_response,
)

POLICY = {"num_stages": 2, "alpha": 0.9}


class TestShardMap:
    def test_hashing_is_stable_and_in_range(self):
        shard_map = ShardMap(shards=3)
        for name in ("api", "img", "web", "etl", "x" * 50):
            shard = shard_map.shard_of(name)
            assert 0 <= shard < 3
            assert shard_map.shard_of(name) == shard

    def test_explicit_assignment_overrides_hash(self):
        shard_map = ShardMap(shards=4, assignments=(("api", 3),))
        assert shard_map.shard_of("api") == 3

    def test_balanced_covers_every_shard(self):
        shard_map = ShardMap.balanced(["a", "b", "c", "d", "e"], 3)
        owners = {shard_map.shard_of(n) for n in "abcde"}
        assert owners == {0, 1, 2}
        # Deterministic: sorted names round-robin.
        assert shard_map.shard_of("a") == 0
        assert shard_map.shard_of("b") == 1
        assert shard_map.shard_of("c") == 2
        assert shard_map.shard_of("d") == 0

    def test_assign_bumps_version_and_replaces(self):
        first = ShardMap.balanced(["a", "b"], 2)
        second = first.assign("a", 1)
        assert second.version == first.version + 1
        assert second.shard_of("a") == 1
        assert first.shard_of("a") == 0  # immutable

    def test_wire_round_trip(self):
        shard_map = ShardMap.balanced(["a", "b", "c"], 2, version=7)
        doc = shard_map.to_wire()
        assert doc["format"] == SHARD_MAP_FORMAT
        assert ShardMap.from_wire(doc) == shard_map

    def test_from_wire_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            ShardMap.from_wire({"format": "nope"})
        with pytest.raises(ProtocolError):
            ShardMap.from_wire({"format": SHARD_MAP_FORMAT, "shards": 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(shards=0)
        with pytest.raises(ValueError):
            ShardMap(shards=2, assignments=(("a", 5),))
        with pytest.raises(ValueError):
            ShardMap(shards=2, assignments=(("a", 0), ("a", 1)))

    def test_partition_names_groups_by_owner(self):
        shard_map = ShardMap.balanced(["a", "b", "c"], 2)
        grouped = partition_names(["a", "b", "c"], shard_map)
        assert grouped == {0: ["a", "c"], 1: ["b"]}


def _register_line(name, request_id=1):
    return encode(
        {
            "id": request_id,
            "rid": f"r{request_id}",
            "op": "register",
            "pipeline": name,
            "policy": dict(POLICY),
        }
    )


class TestShardGateway:
    def _gateway(self, shard=0, names=("owned", "foreign")):
        shard_map = ShardMap(
            shards=2, assignments=((names[0], 0), (names[1], 1))
        )
        return ShardGateway(AdmissionGateway(), shard, shard_map)

    def test_owned_pipeline_passes_through(self):
        gateway = self._gateway()
        routed = gateway.handle_line(_register_line("owned"))
        assert json.loads(routed[0][1])["ok"] is True

    def test_foreign_pipeline_bounces_with_map(self):
        gateway = self._gateway()
        routed = gateway.handle_line(_register_line("foreign"))
        response = json.loads(routed[0][1])
        assert response["ok"] is False
        assert response["error"] == "wrong-shard"
        assert response["shard"] == 1
        assert ShardMap.from_wire(response["map"]).shard_of("foreign") == 1
        assert gateway.bounced == 1

    def test_bounce_never_touches_journal_or_dedup(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(
            AdmissionGateway(), journal, tmp_path / "s.json"
        )
        shard_map = ShardMap(shards=2, assignments=(("foreign", 1),))
        gateway = ShardGateway(durable, 0, shard_map)
        try:
            gateway.handle_line(_register_line("foreign"))
            assert journal.last_seq == 0
            assert durable.gateway.dedup_status("r1") == "unknown"
        finally:
            durable.close()

    def test_ops_without_pipeline_pass_through(self):
        gateway = self._gateway()
        routed = gateway.handle_line('{"id":1,"op":"health"}')
        assert json.loads(routed[0][1])["ok"] is True

    def test_unparseable_lines_pass_to_inner_error_path(self):
        gateway = self._gateway()
        routed = gateway.handle_line("{nope")
        response = json.loads(routed[0][1])
        assert response["error"] == "bad-json"
        assert gateway.bounced == 0

    def test_install_map_refuses_rollback(self):
        gateway = self._gateway()
        newer = gateway.shard_map.assign("owned", 0)
        gateway.install_map(newer)
        with pytest.raises(ValueError):
            gateway.install_map(ShardMap(shards=2, version=1))


class TestShardRouter:
    def _fleet(self):
        """Two shard gateways over one logical namespace + a router."""
        shard_map = ShardMap(shards=2, assignments=(("a", 0), ("b", 1)))
        workers = [
            ShardGateway(AdmissionGateway(), shard, shard_map)
            for shard in range(2)
        ]
        router = ShardRouter(
            shard_map,
            connect=lambda shard: GatewayClient(
                InProcessTransport(workers[shard])
            ),
        )
        return workers, router

    def test_routes_to_owner(self):
        workers, router = self._fleet()
        response = router.call("register", pipeline="a", policy=dict(POLICY))
        assert response["ok"] is True
        assert workers[0].inner.registry.names() == ["a"]
        assert workers[1].inner.registry.names() == []

    def test_stale_map_re_resolves_from_bounce(self):
        workers, router = self._fleet()
        router.call("register", pipeline="a", policy=dict(POLICY))
        # The cluster rebalances "a" to shard 1 behind the router's back.
        newer = workers[0].shard_map.assign("a", 1)
        for worker in workers:
            worker.install_map(newer)
        # Move the state too, mirroring what the supervisor would do.
        snap = [
            json.loads(r)
            for _, r in workers[0].inner.handle_line(
                '{"id":9,"op":"snapshot","pipeline":"a"}'
            )
        ][0]["snapshot"]
        workers[0].inner.handle_line('{"id":10,"op":"unregister","pipeline":"a"}')
        workers[1].inner.handle_line(
            encode({"id": 11, "op": "restore", "pipeline": "a", "snapshot": snap})
        )
        response = router.call("expire", pipeline="a", now=0.5)
        assert response["ok"] is True
        assert router.stale_resolves == 1
        assert router.shard_map.version == newer.version

    def test_persistent_wrong_shard_raises(self):
        workers, router = self._fleet()
        # A worker whose map claims it owns nothing it serves: the
        # bounce re-resolves to the same shard, which is a topology
        # bug, not staleness — the router must raise, not loop.
        broken = ShardMap(shards=2, version=5, assignments=(("a", 1),))
        workers[1].install_map(broken)
        workers[0].install_map(broken)
        workers[1].shard = 0  # worker claims shard 0 while serving slot 1
        with pytest.raises(GatewayError) as excinfo:
            router.call("register", pipeline="a", policy=dict(POLICY))
        assert excinfo.value.code == "wrong-shard"

    def test_non_routing_errors_pass_through(self):
        workers, router = self._fleet()
        with pytest.raises(GatewayError) as excinfo:
            router.call("expire", pipeline="a", now=1.0)
        assert excinfo.value.code == "unknown-pipeline"


class TestWrongShardResponse:
    def test_payload_shape(self):
        shard_map = ShardMap(shards=2, assignments=(("a", 1),))
        line = wrong_shard_response(
            {"id": 4, "op": "admit", "pipeline": "a"}, 1, shard_map
        )
        doc = json.loads(line)
        assert doc["id"] == 4
        assert doc["error"] == "wrong-shard"
        assert doc["shard"] == 1
        assert doc["map"]["format"] == SHARD_MAP_FORMAT


class TestShardHandleFrames:
    """The shard wrapper's chunk ingest is the per-line loop, exactly.

    One chunk can mix owned and foreign pipelines, so every line needs
    its own ownership check — only the unsharded inner core fuses
    chunks.  Responses (including bounces) must match the decode/
    strip/``handle_line`` loop line for line.
    """

    def test_matches_per_line_loop(self):
        shard_map = ShardMap(
            shards=2, assignments=(("owned", 0), ("foreign", 1))
        )
        frames = [
            _register_line("owned", 1).encode(),
            _register_line("foreign", 2).encode(),  # bounce
            b"  ",
            b"garbage",
            encode({"id": 3, "op": "stats", "pipeline": "owned"}).encode(),
        ]
        fused = ShardGateway(AdmissionGateway(), 0, shard_map)
        fused_routed = fused.handle_frames(frames, origin="c")
        mirrored = ShardGateway(AdmissionGateway(), 0, shard_map)
        mirrored_routed = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                mirrored_routed.extend(mirrored.handle_line(line, "c"))
        assert fused_routed == mirrored_routed
        assert fused.bounced == mirrored.bounced == 1
