"""Empirical verification of the stage delay theorem (Theorem 1).

Two kinds of checks on a single simulated stage:

1. **Worst-case construction** (Figure 2 / Lemma 5): synthesize the
   adversarial pattern — a low-priority task arriving at the start of
   a busy period, saturated by back-to-back higher-priority tasks of
   maximal deadline ``D_max`` — and verify the observed delay
   approaches the theorem's bound ``f(U) * D_max`` (tightness).
2. **Soundness over random patterns**: for arbitrary arrival patterns,
   the observed delay of any task never exceeds ``f(U_max) * D_max``
   where ``U_max`` is the maximum synthetic utilization observed over
   its busy period.
"""

import random

import pytest

from repro.core.bounds import stage_delay_factor
from repro.core.synthetic import StageUtilizationTracker
from repro.core.task import make_task
from repro.sim.engine import Simulator
from repro.sim.stage import Stage


def dm_key(task):
    return (task.deadline, float(task.task_id))


class TestWorstCaseConstruction:
    def run_burst_pattern(self, u, d_max, num_tasks=100):
        """An adversarial pattern: burst of higher-priority work at t=0.

        ``num_tasks`` interferers with deadline ``d_max`` and total
        computation ``u * d_max`` arrive simultaneously with the
        observed task Tn (longest deadline, negligible computation).
        The synthetic utilization peaks at exactly ``u`` and Tn is
        delayed ``u * d_max`` — a constructive lower bound on the
        worst case that the theorem's ``f(u) * d_max`` must dominate
        (``f(u) >= u`` on [0, 1)).

        Returns (observed delay, peak synthetic utilization, bound).
        """
        sim = Simulator()
        stage = Stage(sim, index=0)
        tracker = StageUtilizationTracker()
        c = u * d_max / num_tasks
        observed = make_task(0.0, d_max * 1.0001, [1e-9], task_id=10_000_000)
        job = stage.submit(observed, dm_key(observed), duration=1e-9)
        tracker.add(observed.task_id, 1e-9 / observed.deadline, observed.absolute_deadline)
        for i in range(num_tasks):
            hp = make_task(0.0, d_max, [c], task_id=i)
            stage.submit(hp, dm_key(hp), duration=c)
            tracker.add(hp.task_id, c / d_max, hp.absolute_deadline)
        peak = tracker.value
        sim.run(until=5.0 * d_max)
        assert job.finished_at is not None
        return job.finished_at, peak, stage_delay_factor(u) * d_max

    @pytest.mark.parametrize("u", [0.2, 0.4, 0.55])
    def test_burst_delay_never_exceeds_bound(self, u):
        delay, peak, bound = self.run_burst_pattern(u, d_max=100.0)
        assert peak == pytest.approx(u, abs=1e-6)
        assert delay <= bound + 1e-9

    @pytest.mark.parametrize("u", [0.3, 0.5, 0.58])
    def test_burst_achieves_u_times_dmax(self, u):
        """The burst realizes delay = U * D_max exactly, so the theorem
        bound is tight to within f(u)/u = (1 - u/2)/(1 - u): at the
        uniprocessor bound (~0.586) the construction reaches ~59% of
        f(u) * D_max; the full Lemma-5 pattern closes the rest."""
        d_max = 100.0
        delay, peak, bound = self.run_burst_pattern(u, d_max=d_max)
        assert delay == pytest.approx(u * d_max, rel=1e-6)
        assert delay >= 0.5 * bound

    def test_back_to_back_stream_saturates_utilization(self):
        """A continuously busy back-to-back stream (Lemma 5 property 1,
        all deadlines D_max) drives the synthetic utilization to 1 —
        which is why bounding U below 1 genuinely limits busy-period
        length, the mechanism behind the area property in the proof."""
        d_max = 100.0
        tracker = StageUtilizationTracker()
        c = 1.0
        t = 0.0
        i = 0
        while t < d_max:
            tracker.expire_until(t)
            tracker.add(i, c / d_max, t + d_max)
            t += c
            i += 1
        # After D_max of back-to-back arrivals, utilization ~ 1.
        assert tracker.value == pytest.approx(1.0, abs=0.02)

    def test_area_property(self):
        """The area under the synthetic utilization curve equals the
        sum of the computation times of arrived tasks (each task is a
        C/D x D rectangle) — the proof's key accounting step."""
        rng = random.Random(11)
        events = []  # (time, delta)
        total_work = 0.0
        t = 0.0
        for i in range(200):
            t += rng.expovariate(1.0)
            c = rng.expovariate(1.0 / 0.4)
            d = rng.uniform(5.0, 40.0)
            events.append((t, c / d))
            events.append((t + d, -c / d))
            total_work += c
        events.sort()
        area = 0.0
        level = 0.0
        prev = 0.0
        for when, delta in events:
            area += level * (when - prev)
            level += delta
            prev = when
        assert area == pytest.approx(total_work, rel=1e-9)

    def test_busy_processor_during_delay(self):
        """The observed task is delayed only while higher-priority work
        runs — the processor is continuously busy until it finishes."""
        sim = Simulator()
        stage = Stage(sim, index=0)
        d_max, u = 50.0, 0.4
        observed = make_task(0.0, d_max * 1.0001, [1e-9], task_id=20_000_000)
        job = stage.submit(observed, dm_key(observed), duration=1e-9)
        num = 40
        c = u * d_max / num
        for i in range(num):
            hp = make_task(0.0, d_max, [c], task_id=i)
            stage.submit(hp, dm_key(hp), duration=c)
        sim.run(until=5 * d_max)
        assert stage.busy_time(job.finished_at) == pytest.approx(
            job.finished_at, rel=1e-6
        )


class TestSoundnessOverRandomPatterns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_delay_bounded_by_theorem(self, seed):
        """For arbitrary patterns: every task's stage delay is at most
        f(U_max) * D_max, with U_max the max synthetic utilization over
        the task's residence and D_max the largest deadline among
        equal-or-higher-priority current tasks."""
        rng = random.Random(seed)
        sim = Simulator()
        stage = Stage(sim, index=0)
        tracker = StageUtilizationTracker()
        tasks = []
        t = 0.0
        for i in range(300):
            t += rng.expovariate(1.0)
            deadline = rng.uniform(20.0, 60.0)
            c = min(rng.expovariate(1.0 / 0.5), deadline * 0.4)
            task = make_task(t, deadline, [c], task_id=i)
            tasks.append(task)

        jobs = {}
        util_samples = []  # (time, utilization) after each arrival

        def arrive(task):
            tracker.expire_until(sim.now)
            tracker.add(task.task_id, task.synthetic_contribution(0), task.absolute_deadline)
            util_samples.append((sim.now, tracker.value))
            jobs[task.task_id] = stage.submit(
                task, dm_key(task), duration=task.computation_times[0]
            )

        for task in tasks:
            sim.at(task.arrival_time, arrive, task)
        sim.run()

        for task in tasks:
            job = jobs[task.task_id]
            if job.finished_at is None:
                continue
            delay = job.finished_at - task.arrival_time
            u_max = max(
                (u for when, u in util_samples if task.arrival_time <= when <= job.finished_at),
                default=tracker.reserved,
            )
            u_max = min(u_max, 1.0 - 1e-12)
            if u_max >= 0.999:
                continue  # theorem gives no useful bound near saturation
            d_max = max(
                (
                    other.deadline
                    for other in tasks
                    if other.arrival_time <= job.finished_at
                    and other.absolute_deadline > task.arrival_time
                    and dm_key(other) <= dm_key(task)
                ),
                default=task.deadline,
            )
            bound = stage_delay_factor(u_max) * d_max
            assert delay <= bound + 1e-6, (
                f"task {task.task_id}: delay {delay:.3f} exceeds "
                f"f({u_max:.3f})*{d_max:.1f} = {bound:.3f}"
            )
