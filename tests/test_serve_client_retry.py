"""Retry-budget, drain, and cross-restart edge cases for the client.

ISSUE-7 satellite: pins the exact boundary where the deadline-aware
retry loop abandons, what happens when a reconnect lands on a draining
gateway, and that a pinned rid survives a worker kill/recover cycle
with its decision intact.
"""

import json

import pytest

from repro.core.task import PipelineTask
from repro.serve.client import (
    GatewayClient,
    GatewayError,
    GatewayTimeout,
    InProcessTransport,
    RetryPolicy,
    RetryingGatewayClient,
)
from repro.serve.gateway import AdmissionGateway
from repro.serve.recovery import recover, registry_fingerprint

POLICY = {"num_stages": 2, "alpha": 0.9}


class FakeTime:
    """A clock that only sleep() advances — the schedule, replayed dry."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, delay: float) -> None:
        self.sleeps.append(delay)
        self.now += delay


class _TimeoutTransport(InProcessTransport):
    """Times out the first ``failures`` submissions, then serves."""

    def __init__(self, gateway, failures):
        super().__init__(gateway)
        self.failures = failures
        self.attempts = 0

    def submit(self, line):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise GatewayTimeout("injected")
        return super().submit(line)


def _flat_policy(max_attempts=10):
    # base 1s, no growth, no jitter: every retry delay is exactly 1.0,
    # so the abandonment boundary is an exact arithmetic statement.
    return RetryPolicy(
        base_delay=1.0, multiplier=1.0, max_attempts=max_attempts, jitter=0.0
    )


def _retrying(transport, policy, fake):
    return RetryingGatewayClient(
        connect=lambda: GatewayClient(transport),
        policy=policy,
        rid_factory=iter(f"rid-{n}" for n in range(1000)).__next__,
        clock=fake.clock,
        sleep=fake.sleep,
    )


class TestDeadlineBoundary:
    def test_retry_starting_exactly_at_the_deadline_is_taken(self):
        # Failures at t=0,1,2; the third retry is scheduled for t=3,
        # exactly the deadline.  approx_le(3.0, 3.0) holds, so the
        # attempt runs — and succeeds.
        fake = FakeTime()
        transport = _TimeoutTransport(AdmissionGateway(), failures=3)
        client = _retrying(transport, _flat_policy(), fake)
        response = client.call("health", deadline=3.0)
        assert response["ok"] is True
        assert client.retries == 3
        assert client.abandoned == 0
        assert fake.sleeps == [1.0, 1.0, 1.0]

    def test_retry_past_the_deadline_is_abandoned(self):
        # Same schedule, deadline one sleep earlier: the retry that
        # would start at t=3 > 2.0 is never taken and the last timeout
        # resurfaces, even though the transport would have recovered.
        fake = FakeTime()
        transport = _TimeoutTransport(AdmissionGateway(), failures=3)
        client = _retrying(transport, _flat_policy(), fake)
        with pytest.raises(GatewayTimeout):
            client.call("health", deadline=2.0)
        assert client.retries == 2
        assert client.abandoned == 1
        assert fake.now == 2.0  # abandoned *before* sleeping past it

    def test_attempt_budget_binds_without_a_deadline(self):
        fake = FakeTime()
        transport = _TimeoutTransport(AdmissionGateway(), failures=99)
        client = _retrying(transport, _flat_policy(max_attempts=4), fake)
        with pytest.raises(GatewayTimeout):
            client.call("health")
        assert transport.attempts == 4
        assert client.retries == 3
        assert client.abandoned == 1

    def test_zero_budget_deadline_means_no_retry_at_all(self):
        fake = FakeTime()
        transport = _TimeoutTransport(AdmissionGateway(), failures=1)
        client = _retrying(transport, _flat_policy(), fake)
        with pytest.raises(GatewayTimeout):
            client.call("health", deadline=0.5)
        assert client.retries == 0
        assert fake.sleeps == []


class TestReconnectDuringDrain:
    def test_draining_refusal_is_final_not_retried(self):
        # A reconnect can land on a gateway already in shutdown drain.
        # ``draining`` is a *decision* (the gateway answered), not an
        # ambiguous failure — retrying it would just burn the budget.
        gateway = AdmissionGateway()
        gateway.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "api", "policy": POLICY,
        }))
        gateway.draining = True
        fake = FakeTime()
        client = _retrying(InProcessTransport(gateway), _flat_policy(), fake)
        task = PipelineTask(
            task_id=1, arrival_time=0.0, deadline=5.0,
            computation_times=(0.05, 0.03),
        )
        with pytest.raises(GatewayError) as excinfo:
            client.admit("api", task)
        assert excinfo.value.code == "draining"
        assert client.retries == 0
        assert fake.sleeps == []

    def test_timeout_then_drain_refusal_stops_the_loop(self):
        # First attempt times out (ambiguous, retried); the reconnect
        # reaches a draining gateway whose refusal ends the story.
        gateway = AdmissionGateway()
        gateway.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "api", "policy": POLICY,
        }))
        gateway.draining = True
        fake = FakeTime()
        transport = _TimeoutTransport(gateway, failures=1)
        client = _retrying(transport, _flat_policy(), fake)
        task = PipelineTask(
            task_id=1, arrival_time=0.0, deadline=5.0,
            computation_times=(0.05, 0.03),
        )
        with pytest.raises(GatewayError) as excinfo:
            client.admit("api", task)
        assert excinfo.value.code == "draining"
        assert client.retries == 1
        assert client.reconnects == 1  # the timeout dropped the client

    def test_duplicate_request_backs_off_without_reconnecting(self):
        # ``duplicate-request`` means "your original is still pending
        # in a batch" — the connection is healthy, so the client backs
        # off on the *same* connection instead of churning sockets.
        gateway = AdmissionGateway()
        gateway.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "api",
            "policy": {**POLICY, "max_batch": 2},
        }))
        # Queue the original admit directly so the rid sits pending.
        gateway.handle_line(json.dumps({
            "id": 100, "rid": "rid-0", "op": "admit", "pipeline": "api",
            "task": {"task_id": 1, "arrival": 0.0, "deadline": 5.0,
                     "costs": [0.05, 0.03]},
        }))
        fake = FakeTime()

        class _DrainingRetry(InProcessTransport):
            """Flushes the pending batch right before the 3rd attempt."""

            def __init__(self, inner_gateway):
                super().__init__(inner_gateway)
                self.submits = 0

            def submit(self, line):
                self.submits += 1
                if self.submits == 3:
                    self.gateway.drain()
                return super().submit(line)

        transport = _DrainingRetry(gateway)
        client = _retrying(transport, _flat_policy(), fake)
        response = client.call(
            "admit", rid="rid-0", pipeline="api",
            task={"task_id": 1, "arrival": 0.0, "deadline": 5.0,
                  "costs": [0.05, 0.03]},
        )
        assert response["ok"] is True
        assert client.retries == 2
        assert client.reconnects == 0
        assert gateway.dedup_hits == 1  # the settled decision, replayed


class TestRidReuseAcrossRestart:
    def test_pinned_rid_survives_kill_and_recovery(self, tmp_path):
        durable, _ = recover(tmp_path)
        durable.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "api", "policy": POLICY,
        }))
        fake = FakeTime()
        client = _retrying(InProcessTransport(durable), _flat_policy(), fake)
        first = client.call(
            "admit", rid="pinned-rid", pipeline="api",
            task={"task_id": 1, "arrival": 0.0, "deadline": 5.0,
                  "costs": [0.05, 0.03]},
        )
        assert first["ok"] is True

        # SIGKILL-equivalent: no drain, no close bookkeeping.
        durable.journal.close()
        fingerprint = registry_fingerprint(durable)
        recovered, report = recover(tmp_path)
        try:
            assert report.replayed >= 2
            assert registry_fingerprint(recovered) == fingerprint

            # Failover: the same logical request, same rid, against the
            # recovered worker.  The rebuilt dedup window answers it
            # without re-admitting.
            retry_client = _retrying(
                InProcessTransport(recovered), _flat_policy(), fake
            )
            second = retry_client.call(
                "admit", rid="pinned-rid", pipeline="api",
                task={"task_id": 1, "arrival": 0.0, "deadline": 5.0,
                      "costs": [0.05, 0.03]},
            )
            assert second["admitted"] == first["admitted"]
            assert second["region_value"] == first["region_value"]
            assert recovered.gateway.dedup_hits == 1
            stats = retry_client.call("stats", pipeline="api")
            assert stats["stats"]["api"]["counters"]["offered"] == 1
        finally:
            recovered.close()

    def test_fresh_rids_are_not_deduped_after_recovery(self, tmp_path):
        durable, _ = recover(tmp_path)
        durable.handle_line(json.dumps({
            "id": 0, "op": "register", "pipeline": "api", "policy": POLICY,
        }))
        fake = FakeTime()
        client = _retrying(InProcessTransport(durable), _flat_policy(), fake)
        client.call(
            "admit", rid="rid-a", pipeline="api",
            task={"task_id": 1, "arrival": 0.0, "deadline": 5.0,
                  "costs": [0.05, 0.03]},
        )
        durable.journal.close()
        recovered, _ = recover(tmp_path)
        try:
            retry_client = _retrying(
                InProcessTransport(recovered), _flat_policy(), fake
            )
            retry_client.call(
                "admit", rid="rid-b", pipeline="api",
                task={"task_id": 2, "arrival": 0.1, "deadline": 5.0,
                      "costs": [0.05, 0.03]},
            )
            assert recovered.gateway.dedup_hits == 0
            stats = retry_client.call("stats", pipeline="api")
            assert stats["stats"]["api"]["counters"]["offered"] == 2
        finally:
            recovered.close()
