"""Tests for DAG-structured task execution with Theorem-2 admission."""

import pytest

from repro.core.dag import TaskGraph
from repro.sim.graphrun import GraphPipelineSimulation, GraphTask


def diamond_graph():
    """The Figure-3 shape: R1 -> (R2 | R3) -> R4."""
    return TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )


def diamond_task(arrival, deadline, costs, importance=0):
    return GraphTask.create(
        arrival_time=arrival,
        deadline=deadline,
        graph=diamond_graph(),
        costs={1: costs[0], 2: costs[1], 3: costs[2], 4: costs[3]},
        importance=importance,
    )


class TestGraphTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            diamond_task(0.0, -1.0, [1, 1, 1, 1])
        with pytest.raises(ValueError):
            GraphTask.create(0.0, 1.0, diamond_graph(), {1: 1.0})  # missing costs
        with pytest.raises(ValueError):
            GraphTask.create(
                0.0, 1.0, diamond_graph(), {1: -1.0, 2: 0.0, 3: 0.0, 4: 0.0}
            )

    def test_resource_contributions_sum_on_shared_processor(self):
        graph = TaskGraph(
            resource_of={1: "P", 2: "Q", 3: "P"},
            edges=[(1, 2), (2, 3)],
        )
        task = GraphTask.create(0.0, 10.0, graph, {1: 1.0, 2: 2.0, 3: 3.0})
        contributions = task.resource_contributions()
        assert contributions["P"] == pytest.approx(0.4)  # (1 + 3) / 10
        assert contributions["Q"] == pytest.approx(0.2)

    def test_unique_ids(self):
        a = diamond_task(0.0, 1.0, [0, 0, 0, 0])
        b = diamond_task(0.0, 1.0, [0, 0, 0, 0])
        assert a.task_id != b.task_id


class TestExecution:
    def test_empty_system_completion_is_critical_path(self):
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        task = diamond_task(0.0, 100.0, [1.0, 5.0, 2.0, 3.0])
        sim.offer_at(task)
        rep = sim.run(50.0)
        record = rep.tasks[0]
        assert record.admitted
        # Critical path: 1 + max(5, 2) + 3 = 9.
        assert record.completed_at == pytest.approx(9.0)
        assert not record.missed

    def test_precedence_respected(self):
        """A successor never starts before all predecessors finish —
        verified via the completion time of a join-heavy graph."""
        graph = TaskGraph(
            resource_of={"a": "R1", "b": "R2", "join": "R3"},
            edges=[("a", "join"), ("b", "join")],
        )
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3"])
        task = GraphTask.create(0.0, 100.0, graph, {"a": 2.0, "b": 7.0, "join": 1.0})
        sim.offer_at(task)
        rep = sim.run(50.0)
        assert rep.tasks[0].completed_at == pytest.approx(8.0)

    def test_parallel_branches_run_concurrently(self):
        graph = TaskGraph(
            resource_of={"a": "R1", "b": "R2"},
            edges=[],
        )
        sim = GraphPipelineSimulation(resources=["R1", "R2"])
        task = GraphTask.create(0.0, 100.0, graph, {"a": 5.0, "b": 5.0})
        sim.offer_at(task)
        rep = sim.run(50.0)
        assert rep.tasks[0].completed_at == pytest.approx(5.0)

    def test_shared_resource_serializes(self):
        graph = TaskGraph(
            resource_of={"a": "P", "b": "P"},
            edges=[],
        )
        sim = GraphPipelineSimulation(resources=["P"])
        task = GraphTask.create(0.0, 100.0, graph, {"a": 3.0, "b": 4.0})
        sim.offer_at(task)
        rep = sim.run(50.0)
        assert rep.tasks[0].completed_at == pytest.approx(7.0)

    def test_unknown_resource_rejected(self):
        sim = GraphPipelineSimulation(resources=["R1"])
        with pytest.raises(ValueError):
            sim.offer_at(diamond_task(0.0, 1.0, [0, 0, 0, 0]))

    def test_duplicate_resources_rejected(self):
        with pytest.raises(ValueError):
            GraphPipelineSimulation(resources=["R", "R"])

    def test_no_resources_rejected(self):
        with pytest.raises(ValueError):
            GraphPipelineSimulation(resources=[])


class TestTheorem2Admission:
    def test_oversized_task_rejected(self):
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        hog = diamond_task(0.0, 1.0, [0.4, 0.4, 0.4, 0.4])
        sim.offer_at(hog)
        rep = sim.run(10.0)
        assert not rep.tasks[0].admitted

    def test_within_region_admitted(self):
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        ok = diamond_task(0.0, 10.0, [0.5, 0.5, 0.5, 0.5])
        sim.offer_at(ok)
        rep = sim.run(20.0)
        assert rep.tasks[0].admitted

    def test_admission_uses_critical_path_not_sum(self):
        """A parallel-heavy graph admits more than its series
        flattening: the max() in d(...) frees budget."""
        wide = TaskGraph(
            resource_of={i: f"R{i}" for i in range(4)},
            edges=[],  # fully parallel
        )
        chain = TaskGraph(
            resource_of={i: f"R{i}" for i in range(4)},
            edges=[(0, 1), (1, 2), (2, 3)],
        )
        costs = {i: 4.0 for i in range(4)}  # per-resource U = 0.4
        resources = [f"R{i}" for i in range(4)]

        sim_wide = GraphPipelineSimulation(resources=resources)
        sim_wide.offer_at(GraphTask.create(0.0, 10.0, wide, dict(costs)))
        wide_admitted = sim_wide.run(20.0).tasks[0].admitted

        sim_chain = GraphPipelineSimulation(resources=resources)
        sim_chain.offer_at(GraphTask.create(0.0, 10.0, chain, dict(costs)))
        chain_admitted = sim_chain.run(20.0).tasks[0].admitted

        assert wide_admitted  # max f(0.4) = 0.53 <= 1
        assert not chain_admitted  # 4 * f(0.4) = 2.1 > 1

    def test_mixed_shapes_all_checked(self):
        """Admission re-checks the regions of graphs already in the
        system: a wide newcomer that would break an in-flight chain's
        region is rejected."""
        resources = [f"R{i}" for i in range(4)]
        chain = TaskGraph(
            resource_of={i: f"R{i}" for i in range(4)},
            edges=[(0, 1), (1, 2), (2, 3)],
        )
        wide = TaskGraph(
            resource_of={i: f"R{i}" for i in range(4)},
            edges=[],
        )
        sim = GraphPipelineSimulation(resources=resources)
        # Chain task first: per-resource U = 0.1, region value ~0.42.
        sim.offer_at(GraphTask.create(0.0, 100.0, chain, {i: 10.0 for i in range(4)}))
        # Wide newcomer with U = 0.45 each: its own region is fine
        # (max f(0.55) < 1) but the chain's region would become
        # 4 * f(0.55) > 1 -> reject.
        sim.offer_at(GraphTask.create(1.0, 100.0, wide, {i: 45.0 for i in range(4)}))
        rep = sim.run(300.0)
        assert rep.tasks[0].admitted
        assert not rep.tasks[1].admitted

    def test_no_misses_under_admission(self):
        """Randomized diamond tasks: admitted ones always meet their
        end-to-end deadlines."""
        import random

        rng = random.Random(3)
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        t = 0.0
        for _ in range(300):
            t += rng.expovariate(0.5)
            deadline = rng.uniform(20.0, 60.0)
            costs = [rng.expovariate(1.0 / 0.8) for _ in range(4)]
            sim.offer_at(diamond_task(t, deadline, costs))
        rep = sim.run(t + 200.0)
        assert rep.admitted > 0
        assert rep.miss_ratio() == 0.0

    def test_idle_reset_recovers_capacity(self):
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        a = diamond_task(0.0, 10.0, [0.5, 0.5, 0.5, 0.5])
        sim.offer_at(a)
        # b arrives after a fully completes (resources idle): the reset
        # releases a's contributions even though a's deadline (10) has
        # not expired.
        b = diamond_task(3.0, 10.0, [0.5, 0.5, 0.5, 0.5])
        sim.offer_at(b)
        rep = sim.run(30.0)
        assert all(r.admitted for r in rep.tasks)

    def test_reset_disabled_blocks_capacity(self):
        sim = GraphPipelineSimulation(
            resources=["R1", "R2", "R3", "R4"], reset_on_idle=False
        )
        a = diamond_task(0.0, 10.0, [1.5, 1.5, 1.5, 1.5])
        b = diamond_task(5.0, 10.0, [1.5, 1.5, 1.5, 1.5])
        sim.offer_at(a)
        sim.offer_at(b)
        rep = sim.run(30.0)
        admitted = [r.admitted for r in rep.tasks]
        assert admitted == [True, False]

    def test_utilizations_query(self):
        sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
        task = diamond_task(0.0, 10.0, [1.0, 0.0, 0.0, 0.0])
        sim.offer_at(task)
        sim.sim.run(until=0.5)
        utils = sim.utilizations()
        assert utils["R1"] == pytest.approx(0.1)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            GraphPipelineSimulation(resources=["R"], alpha=0.0)
