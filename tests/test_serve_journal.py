"""Write-ahead journal: record codec, tail repair, and compaction."""

import json

import pytest

from repro.serve.gateway import AdmissionGateway
from repro.serve.journal import (
    GATEWAY_SNAPSHOT_FORMAT,
    JOURNALED_OPS,
    DurableGateway,
    Journal,
    JournalError,
    decode_record,
    encode_record,
    record_crc,
    scan_journal,
)
from repro.serve.protocol import OPS


def _op(n=1):
    return {"id": n, "op": "expire", "pipeline": "web", "now": float(n)}


class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record(_op(), 3)
        record = decode_record(line)
        assert record["op"] == _op()
        assert record["seq"] == 3
        assert record["crc"] == record_crc(_op(), 3)

    def test_encoding_is_canonical(self):
        line = encode_record(_op(), 1)
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_crc_covers_op_and_seq(self):
        assert record_crc(_op(1), 1) != record_crc(_op(2), 1)
        assert record_crc(_op(1), 1) != record_crc(_op(1), 2)

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '"a string"',
            "[1,2,3]",
            '{"op":{},"seq":1}',  # missing crc
            '{"crc":"00000000","op":{},"seq":1,"extra":true}',
            '{"crc":"00000000","op":[],"seq":1}',  # op not an object
            '{"crc":"00000000","op":{},"seq":0}',  # seq < 1
            '{"crc":"00000000","op":{},"seq":true}',  # bool seq
            '{"crc":"00000000","op":{},"seq":"1"}',  # str seq
        ],
    )
    def test_malformed_records_rejected(self, line):
        with pytest.raises(ValueError):
            decode_record(line)

    def test_bit_flip_fails_crc(self):
        line = encode_record(_op(), 1)
        flipped = line.replace('"now":1.0', '"now":2.0')
        assert flipped != line
        with pytest.raises(ValueError, match="crc"):
            decode_record(flipped)

    def test_every_mutating_op_is_journaled(self):
        assert JOURNALED_OPS == frozenset(OPS) - {"health"}


class TestScanJournal:
    def test_missing_file_is_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "journal.ndjson")
        assert scan.records == []
        assert scan.truncated_bytes == 0

    def test_clean_journal_round_trips(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        journal = Journal(path)
        for n in range(1, 4):
            assert journal.append(_op(n)) == n
        journal.close()
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1, 2, 3]
        assert [r["op"]["id"] for r in scan.records] == [1, 2, 3]

    def test_torn_tail_is_truncated_physically(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        journal = Journal(path)
        journal.append(_op(1))
        good_size = path.stat().st_size
        journal.append_torn(_op(2), keep=0.5)
        journal.close()
        assert path.stat().st_size > good_size

        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.truncated_bytes > 0
        assert path.stat().st_size == good_size  # repaired in place
        # A second scan is clean: the tail is gone.
        again = scan_journal(path)
        assert again.truncated_bytes == 0
        assert [r["seq"] for r in again.records] == [1]

    def test_valid_but_unterminated_tail_is_torn(self, tmp_path):
        """A record cut exactly at the newline was never acknowledged."""
        path = tmp_path / "journal.ndjson"
        path.write_text(encode_record(_op(1), 1) + "\n" + encode_record(_op(2), 2))
        scan = scan_journal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.truncated_bytes > 0

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        path.write_text("garbage\n" + encode_record(_op(2), 2) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            scan_journal(path)

    def test_newline_terminated_invalid_final_record_raises(self, tmp_path):
        """Only *unterminated* tails are crash artifacts; a terminated
        record that fails validation is real corruption."""
        path = tmp_path / "journal.ndjson"
        line = encode_record(_op(2), 2)
        path.write_text(
            encode_record(_op(1), 1) + "\n" + line.replace('"id":2', '"id":3') + "\n"
        )
        with pytest.raises(JournalError, match="corrupt"):
            scan_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        path.write_text(
            encode_record(_op(1), 1) + "\n" + encode_record(_op(3), 3) + "\n"
        )
        with pytest.raises(JournalError, match="sequence gap"):
            scan_journal(path)

    def test_truncate_false_leaves_file_alone(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        journal = Journal(path)
        journal.append(_op(1))
        journal.append_torn(_op(2))
        journal.close()
        size = path.stat().st_size
        scan = scan_journal(path, truncate=False)
        assert scan.truncated_bytes > 0
        assert path.stat().st_size == size


def _durable(tmp_path, snapshot_every=0, policy=None):
    gateway = AdmissionGateway()
    journal = Journal(tmp_path / "journal.ndjson")
    durable = DurableGateway(
        gateway, journal, tmp_path / "snapshot.json", snapshot_every=snapshot_every
    )
    if policy is not None:
        durable.handle_line(
            json.dumps(
                {"id": 0, "op": "register", "pipeline": "web", "policy": policy}
            )
        )
    return durable


class TestDurableGateway:
    def test_mutating_ops_are_journaled_before_dispatch(self, tmp_path):
        durable = _durable(tmp_path, policy={"num_stages": 2})
        durable.handle_line(json.dumps({"id": 1, "op": "expire",
                                        "pipeline": "web", "now": 1.0}))
        durable.close()
        scan = scan_journal(tmp_path / "journal.ndjson")
        assert [r["op"]["op"] for r in scan.records] == ["register", "expire"]

    def test_health_and_bad_json_bypass_the_journal(self, tmp_path):
        durable = _durable(tmp_path)
        durable.handle_line('{"id": 1, "op": "health"}')
        durable.handle_line("{not json")
        durable.close()
        assert scan_journal(tmp_path / "journal.ndjson").records == []

    def test_dedup_hits_bypass_the_journal(self, tmp_path):
        durable = _durable(tmp_path, policy={"num_stages": 2})
        line = json.dumps({"id": 1, "rid": "r1", "op": "expire",
                           "pipeline": "web", "now": 1.0})
        durable.handle_line(line)
        durable.handle_line(line)  # idempotent retry: served from cache
        durable.close()
        scan = scan_journal(tmp_path / "journal.ndjson")
        assert sum(1 for r in scan.records if r["op"].get("op") == "expire") == 1

    def test_compaction_snapshots_and_resets(self, tmp_path):
        durable = _durable(tmp_path, snapshot_every=3, policy={"num_stages": 2})
        for n in range(1, 4):
            durable.handle_line(json.dumps(
                {"id": n, "op": "expire", "pipeline": "web", "now": float(n)}))
        durable.close()
        snapshot = json.loads((tmp_path / "snapshot.json").read_text())
        assert snapshot["format"] == GATEWAY_SNAPSHOT_FORMAT
        # Compaction fired at the 3rd journaled op (register + 2 expires).
        assert snapshot["seq"] == 3
        assert [p["name"] for p in snapshot["pipelines"]] == ["web"]
        # The post-compaction expire continues the sequence in the
        # fresh journal.
        assert [r["seq"] for r in scan_journal(tmp_path / "journal.ndjson").records] == [4]

    def test_compaction_skipped_while_batch_pending(self, tmp_path):
        durable = _durable(
            tmp_path, policy={"num_stages": 2, "max_batch": 8},
        )
        durable.handle_line(json.dumps({
            "id": 1, "op": "admit", "pipeline": "web",
            "task": {"task_id": 1, "arrival": 0.0, "deadline": 1.0,
                     "costs": [0.1, 0.1]},
        }))
        assert durable.compact() is False
        assert not (tmp_path / "snapshot.json").exists()
        # Draining flushes the batch; compaction can proceed.
        durable.drain()
        assert durable.compact() is True
        assert (tmp_path / "snapshot.json").exists()
        durable.close()

    def test_drain_without_pending_is_not_journaled(self, tmp_path):
        durable = _durable(tmp_path, policy={"num_stages": 2})
        assert durable.drain() == []
        durable.close()
        scan = scan_journal(tmp_path / "journal.ndjson")
        assert [r["op"]["op"] for r in scan.records] == ["register"]


class TestAsyncOffload:
    """The event-loop-safe entry points must be byte-equivalent to the
    sync ones: same responses, same journal bytes, same snapshots —
    only *where* the I/O runs (the default executor) changes."""

    @staticmethod
    def _workload():
        lines = [json.dumps({"id": 0, "op": "register", "pipeline": "web",
                             "policy": {"num_stages": 2, "max_batch": 2}})]
        for n in range(1, 6):
            lines.append(json.dumps({
                "id": n, "op": "admit", "pipeline": "web",
                "task": {"task_id": n, "arrival": float(n),
                         "deadline": float(n) + 1.0, "costs": [0.1, 0.1]},
            }))
        lines.append('{"id": 99, "op": "health"}')
        lines.append("{not json")
        return lines

    def test_async_path_is_bitwise_identical_to_sync(self, tmp_path):
        import asyncio

        sync_dir = tmp_path / "sync"
        async_dir = tmp_path / "async"
        sync_dir.mkdir()
        async_dir.mkdir()
        sync_gw = _durable(sync_dir, snapshot_every=3)
        async_gw = _durable(async_dir, snapshot_every=3)

        sync_out = [sync_gw.handle_line(line) for line in self._workload()]
        sync_out.append(sync_gw.drain())
        sync_gw.close()

        async def run():
            out = [await async_gw.handle_line_async(line)
                   for line in self._workload()]
            out.append(await async_gw.drain_async())
            return out

        async_out = asyncio.run(run())
        async_gw.close()

        assert async_out == sync_out
        assert (async_dir / "journal.ndjson").read_bytes() == \
            (sync_dir / "journal.ndjson").read_bytes()
        assert (async_dir / "snapshot.json").exists() == \
            (sync_dir / "snapshot.json").exists()
        if (sync_dir / "snapshot.json").exists():
            assert (async_dir / "snapshot.json").read_bytes() == \
                (sync_dir / "snapshot.json").read_bytes()

    def test_plain_gateway_async_facade(self):
        import asyncio

        gateway = AdmissionGateway()
        line = json.dumps({"id": 0, "op": "register", "pipeline": "web",
                           "policy": {"num_stages": 2}})
        twin = AdmissionGateway()

        async def run():
            routed = await gateway.handle_line_async(line)
            routed += await gateway.drain_async()
            return routed

        assert asyncio.run(run()) == twin.handle_line(line) + twin.drain()


class TestRenameDurability:
    """ISSUE-7 satellite: the rename itself must be made durable.

    fsyncing the snapshot's *data* is not enough — ``os.replace`` only
    updates the parent directory's entry, and a power cut can roll that
    entry back.  These tests record the actual syscall order through
    monkeypatched wrappers and pin the three-step discipline:
    fsync(temp file) -> rename -> fsync(parent directory).
    """

    @pytest.fixture
    def syscalls(self, monkeypatch):
        import os
        import stat

        events = []
        real_fsync, real_replace, real_fstat = os.fsync, os.replace, os.fstat

        def recording_fsync(fd):
            kind = (
                "fsync-dir"
                if stat.S_ISDIR(real_fstat(fd).st_mode)
                else "fsync-file"
            )
            events.append(kind)
            return real_fsync(fd)

        def recording_replace(src, dst):
            events.append("rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)
        return events

    def test_snapshot_write_orders_fsync_rename_fsync_dir(
        self, tmp_path, syscalls
    ):
        from repro.serve.journal import write_gateway_snapshot

        write_gateway_snapshot(
            tmp_path / "snap.json", {"format": "x"}, fsync=True
        )
        assert syscalls == ["fsync-file", "rename", "fsync-dir"]

    def test_snapshot_write_without_fsync_skips_both_fsyncs(
        self, tmp_path, syscalls
    ):
        from repro.serve.journal import write_gateway_snapshot

        write_gateway_snapshot(
            tmp_path / "snap.json", {"format": "x"}, fsync=False
        )
        assert syscalls == ["rename"]

    def test_journal_reset_fsyncs_the_parent_directory(
        self, tmp_path, syscalls
    ):
        journal = Journal(tmp_path / "j.ndjson", fsync=True)
        journal.append(_op())
        del syscalls[:]
        journal.reset(next_seq=2)
        journal.close()
        # Truncate-and-reopen rewrites the directory entry, so the
        # parent is pinned after the (empty) file itself is synced.
        assert syscalls == ["fsync-file", "fsync-dir"]

    def test_compaction_runs_the_full_discipline_in_order(
        self, tmp_path, syscalls
    ):
        journal = Journal(tmp_path / "j.ndjson", fsync=True)
        durable = DurableGateway(
            AdmissionGateway(), journal, tmp_path / "snap.json"
        )
        durable.handle_line(
            '{"id":1,"op":"register","pipeline":"web",'
            '"policy":{"num_stages":2,"alpha":0.9}}'
        )
        del syscalls[:]
        assert durable.compact() is True
        durable.close()
        # Snapshot: data fsync, rename, dir fsync.  Journal reset:
        # truncated-file fsync, dir fsync.  Strictly in that order —
        # the journal must never shrink before its snapshot is pinned.
        assert syscalls == [
            "fsync-file",
            "rename",
            "fsync-dir",
            "fsync-file",
            "fsync-dir",
        ]


class TestDurableHandleFrames:
    """The durable wrapper's chunk ingest is the per-line loop, exactly.

    Durability is per request — each mutating line must reach the
    journal before its effects exist — so ``DurableGateway`` must not
    take the fused chunk lane.  Two identical journals fed the same
    frames, one through ``handle_frames`` and one through the decode/
    strip/``handle_line`` loop, must produce identical responses AND
    byte-identical journals.
    """

    FRAMES = [
        json.dumps({"id": 0, "op": "register", "pipeline": "web",
                    "policy": {"num_stages": 2}}).encode(),
        json.dumps({"id": 1, "rid": "r1", "op": "admit", "pipeline": "web",
                    "task": {"arrival_time": 0.1, "deadline": 1.0,
                             "computation_times": [0.01, 0.01],
                             "task_id": 1}}).encode(),
        b"   ",
        b"not json",
        json.dumps({"id": 2, "op": "stats", "pipeline": "web"}).encode(),
    ]

    def test_matches_per_line_loop(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        fused = _durable(tmp_path / "a")
        fused_routed = fused.handle_frames(self.FRAMES, origin="c")
        mirrored = _durable(tmp_path / "b")
        mirrored_routed = []
        for raw in self.FRAMES:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                mirrored_routed.extend(mirrored.handle_line(line, "c"))
        assert fused_routed == mirrored_routed
        fused.journal.close()
        mirrored.journal.close()
        assert (
            (tmp_path / "a" / "journal.ndjson").read_bytes()
            == (tmp_path / "b" / "journal.ndjson").read_bytes()
        )
