"""Tests for feasible-region geometry objects."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import (
    UNIPROCESSOR_APERIODIC_BOUND,
    stage_delay_factor,
)
from repro.core.dag import TaskGraph
from repro.core.regions import DagFeasibleRegion, PipelineFeasibleRegion


class TestPipelineRegionConstruction:
    def test_defaults(self):
        r = PipelineFeasibleRegion(num_stages=3)
        assert r.budget == 1.0

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=0)

    def test_beta_length_mismatch(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=2, betas=(0.1,))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=1, alpha=2.0)

    def test_budget_with_alpha_and_beta(self):
        r = PipelineFeasibleRegion(num_stages=2, alpha=0.5, betas=(0.1, 0.1))
        assert r.budget == pytest.approx(0.4)


class TestMembership:
    def test_origin_inside(self):
        r = PipelineFeasibleRegion(num_stages=4)
        assert r.contains([0.0] * 4)

    def test_tsce_point_inside(self):
        r = PipelineFeasibleRegion(num_stages=3)
        assert r.contains([0.4, 0.25, 0.1])
        assert r.margin([0.4, 0.25, 0.1]) == pytest.approx(1 - 0.9306, abs=1e-3)

    def test_outside(self):
        r = PipelineFeasibleRegion(num_stages=2)
        assert not r.contains([0.5, 0.5])
        assert r.margin([0.5, 0.5]) < 0

    def test_dimension_mismatch(self):
        r = PipelineFeasibleRegion(num_stages=2)
        with pytest.raises(ValueError):
            r.contains([0.1])

    def test_single_stage_is_scalar_bound(self):
        r = PipelineFeasibleRegion(num_stages=1)
        assert r.uniform_bound() == pytest.approx(UNIPROCESSOR_APERIODIC_BOUND)


class TestHeadroom:
    def test_headroom_at_origin_is_bound(self):
        r = PipelineFeasibleRegion(num_stages=1)
        assert r.stage_headroom([0.0], 0) == pytest.approx(
            UNIPROCESSOR_APERIODIC_BOUND
        )

    def test_headroom_zero_when_saturated(self):
        r = PipelineFeasibleRegion(num_stages=2)
        u = r.uniform_bound()
        assert r.stage_headroom([u, u], 0) == pytest.approx(0.0, abs=1e-9)

    def test_headroom_consumed_by_other_stage(self):
        r = PipelineFeasibleRegion(num_stages=2)
        free = r.stage_headroom([0.0, 0.0], 0)
        constrained = r.stage_headroom([0.0, 0.4], 0)
        assert constrained < free

    def test_headroom_lands_on_boundary(self):
        r = PipelineFeasibleRegion(num_stages=3)
        point = [0.1, 0.2, 0.15]
        h = r.stage_headroom(point, 1)
        boundary = list(point)
        boundary[1] += h
        assert r.value(boundary) == pytest.approx(r.budget, abs=1e-9)


class TestBoundaryGeometry:
    def test_uniform_bound_on_boundary(self):
        for n in (1, 2, 5):
            r = PipelineFeasibleRegion(num_stages=n)
            u = r.uniform_bound()
            assert r.value([u] * n) == pytest.approx(r.budget, abs=1e-9)

    def test_boundary_curve_endpoints(self):
        r = PipelineFeasibleRegion(num_stages=2)
        curve = r.boundary_curve_2d(samples=11)
        assert len(curve) == 11
        u1_first, u2_first = curve[0]
        assert u1_first == 0.0
        assert u2_first == pytest.approx(UNIPROCESSOR_APERIODIC_BOUND)
        u1_last, u2_last = curve[-1]
        assert u1_last == pytest.approx(UNIPROCESSOR_APERIODIC_BOUND)
        assert u2_last == pytest.approx(0.0, abs=1e-9)

    def test_boundary_curve_points_on_boundary(self):
        r = PipelineFeasibleRegion(num_stages=2)
        for u1, u2 in r.boundary_curve_2d(samples=21):
            assert stage_delay_factor(u1) + stage_delay_factor(u2) == pytest.approx(
                1.0, abs=1e-9
            )

    def test_boundary_curve_monotone(self):
        r = PipelineFeasibleRegion(num_stages=2)
        curve = r.boundary_curve_2d(samples=21)
        u2s = [p[1] for p in curve]
        assert all(a >= b for a, b in zip(u2s, u2s[1:]))

    def test_boundary_curve_requires_two_stages(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=3).boundary_curve_2d()

    def test_boundary_curve_sample_validation(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=2).boundary_curve_2d(samples=1)

    def test_boundary_scale_uniform_direction(self):
        r = PipelineFeasibleRegion(num_stages=2)
        t = r.boundary_scale([1.0, 1.0])
        assert t == pytest.approx(r.uniform_bound(), abs=1e-9)

    def test_boundary_scale_point_is_feasible(self):
        r = PipelineFeasibleRegion(num_stages=3)
        direction = [0.2, 0.5, 0.3]
        t = r.boundary_scale(direction)
        assert r.contains([t * d for d in direction])
        assert not r.contains([(t + 1e-6) * d for d in direction])

    def test_boundary_scale_rejects_zero(self):
        r = PipelineFeasibleRegion(num_stages=2)
        with pytest.raises(ValueError):
            r.boundary_scale([0.0, 0.0])

    def test_boundary_scale_rejects_negative(self):
        r = PipelineFeasibleRegion(num_stages=2)
        with pytest.raises(ValueError):
            r.boundary_scale([1.0, -1.0])

    def test_boundary_slice(self):
        r = PipelineFeasibleRegion(num_stages=3)
        u = r.boundary_slice({0: 0.1, 2: 0.2}, stage=1)
        assert r.value([0.1, u, 0.2]) == pytest.approx(r.budget, abs=1e-9)

    def test_boundary_slice_exhausted(self):
        r = PipelineFeasibleRegion(num_stages=2)
        assert r.boundary_slice({0: 0.58}, stage=1) >= 0.0
        assert r.boundary_slice({0: UNIPROCESSOR_APERIODIC_BOUND}, stage=1) == (
            pytest.approx(0.0, abs=1e-6)
        )

    def test_boundary_slice_validation(self):
        r = PipelineFeasibleRegion(num_stages=3)
        with pytest.raises(ValueError):
            r.boundary_slice({0: 0.1}, stage=1)

    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=5),
    )
    def test_boundary_scale_generic(self, n, direction):
        direction = (direction * n)[:n]
        r = PipelineFeasibleRegion(num_stages=n)
        t = r.boundary_scale(direction)
        point = [t * d for d in direction]
        assert all(u < 1.0 for u in point)
        assert r.value(point) <= r.budget + 1e-9


class TestDagRegion:
    def make_region(self, alpha=1.0, betas=None):
        graph = TaskGraph(
            resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
            edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
        )
        return DagFeasibleRegion(graph=graph, alpha=alpha, betas=betas)

    def test_contains(self):
        r = self.make_region()
        assert r.contains({"R1": 0.2, "R2": 0.3, "R3": 0.1, "R4": 0.2})

    def test_margin_sign(self):
        r = self.make_region()
        assert r.margin({"R1": 0.2, "R2": 0.3, "R3": 0.1, "R4": 0.2}) > 0
        assert r.margin({"R1": 0.5, "R2": 0.5, "R3": 0.5, "R4": 0.5}) < 0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            self.make_region(alpha=1.5)

    def test_betas_enter_value(self):
        plain = self.make_region()
        blocked = self.make_region(betas={"R1": 0.1})
        utils = {"R1": 0.1, "R2": 0.1, "R3": 0.1, "R4": 0.1}
        assert blocked.value(utils) == pytest.approx(plain.value(utils) + 0.1)


class TestBoundarySurface3D:
    def test_requires_three_stages(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=2).boundary_surface_3d()

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            PipelineFeasibleRegion(num_stages=3).boundary_surface_3d(samples=1)

    def test_points_lie_on_surface(self):
        region = PipelineFeasibleRegion(num_stages=3)
        points = region.boundary_surface_3d(samples=15)
        assert points
        for u1, u2, u3 in points:
            total = (
                stage_delay_factor(u1)
                + stage_delay_factor(u2)
                + stage_delay_factor(u3)
            )
            assert total == pytest.approx(region.budget, abs=1e-9)

    def test_corners_hit_uniprocessor_bound(self):
        region = PipelineFeasibleRegion(num_stages=3)
        points = region.boundary_surface_3d(samples=15)
        origin_corner = next(p for p in points if p[0] == 0.0 and p[1] == 0.0)
        assert origin_corner[2] == pytest.approx(UNIPROCESSOR_APERIODIC_BOUND)

    def test_respects_budget_parameter(self):
        region = PipelineFeasibleRegion(num_stages=3, alpha=0.5)
        for u1, u2, u3 in region.boundary_surface_3d(samples=9):
            total = (
                stage_delay_factor(u1)
                + stage_delay_factor(u2)
                + stage_delay_factor(u3)
            )
            assert total == pytest.approx(0.5, abs=1e-9)
