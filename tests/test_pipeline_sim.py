"""End-to-end tests of the pipeline simulation with admission control.

The central soundness property (the paper's main claim): with exact
admission control under deadline-monotonic scheduling, *no admitted
task ever misses its end-to-end deadline*, across loads, pipeline
lengths, and seeds — including with the idle-reset rule active.
"""

import pytest

from repro.core.admission import MeanDemand, PipelineAdmissionController
from repro.core.task import make_task, periodic_spec
from repro.sim.pipeline import PipelineSimulation, run_pipeline_simulation
from repro.sim.policies import EarliestDeadlineFirst, RandomPriority
from repro.sim.workload import balanced_workload, imbalanced_two_stage_workload


class TestDeterministicScenarios:
    def test_single_task_flows_through(self):
        sim = PipelineSimulation(num_stages=3)
        t = make_task(0.0, 10.0, [1.0, 1.0, 1.0])
        sim.offer_at(t)
        rep = sim.run(20.0)
        record = rep.tasks[0]
        assert record.admitted
        assert record.completed_at == pytest.approx(3.0)
        assert not record.missed

    def test_pipelining_overlaps_stages(self):
        """Two tasks overlap: while the first occupies stage 1, the
        second runs at stage 0."""
        sim = PipelineSimulation(num_stages=2)
        a = make_task(0.0, 100.0, [1.0, 1.0], task_id=8001)
        b = make_task(0.0, 100.0, [1.0, 1.0], task_id=8002)
        sim.offer_at(a)
        sim.offer_at(b)
        rep = sim.run(50.0)
        done = {r.task_id: r.completed_at for r in rep.tasks}
        assert done[8001] == pytest.approx(2.0)
        assert done[8002] == pytest.approx(3.0)  # not 4.0: stages overlap

    def test_dm_priority_respected_across_stages(self):
        sim = PipelineSimulation(num_stages=2)
        relaxed = make_task(0.0, 50.0, [2.0, 2.0], task_id=8011)
        urgent = make_task(1.0, 5.0, [1.0, 1.0], task_id=8012)
        sim.offer_at(relaxed)
        sim.offer_at(urgent)
        rep = sim.run(50.0)
        done = {r.task_id: r.completed_at for r in rep.tasks}
        # urgent preempts at stage 0 (t=1..2), then runs stage 1 (2..3).
        assert done[8012] == pytest.approx(3.0)
        assert done[8011] == pytest.approx(5.0)

    def test_rejected_task_consumes_nothing(self):
        sim = PipelineSimulation(num_stages=1)
        hog = make_task(0.0, 1.0, [0.58])
        reject = make_task(0.0, 1.0, [0.58])
        sim.offer_at(hog)
        sim.offer_at(reject)
        rep = sim.run(10.0)
        assert rep.admitted == 1
        assert rep.rejected == 1
        assert rep.utilization(0) == pytest.approx(0.058, abs=1e-6)

    def test_report_window_excludes_warmup(self):
        sim = PipelineSimulation(num_stages=1)
        t = make_task(0.0, 20.0, [10.0])
        sim.offer_at(t)
        rep = sim.run(20.0, warmup=10.0)
        # Busy [0, 10]; warmup removes [0, 10] -> nothing measured.
        assert rep.utilization(0) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_warmup(self):
        sim = PipelineSimulation(num_stages=1)
        with pytest.raises(ValueError):
            sim.run(10.0, warmup=11.0)

    def test_controller_stage_mismatch(self):
        controller = PipelineAdmissionController(3)
        with pytest.raises(ValueError):
            PipelineSimulation(num_stages=2, controller=controller)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            PipelineSimulation(num_stages=1, max_admission_wait=-1.0)


class TestNoMissesUnderExactAdmission:
    """The headline guarantee, across the parameter grid."""

    @pytest.mark.parametrize("num_stages", [1, 2, 3, 5])
    @pytest.mark.parametrize("load", [0.8, 1.4, 2.0])
    def test_zero_miss_ratio(self, num_stages, load):
        workload = balanced_workload(num_stages, load, resolution=100.0)
        report = run_pipeline_simulation(workload, horizon=1500.0, seed=42)
        assert report.miss_ratio() == 0.0
        assert report.admitted > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zero_misses_low_resolution(self, seed):
        """Even with large tasks (resolution 5) exact admission control
        never admits an unschedulable set."""
        workload = balanced_workload(2, load=1.5, resolution=5.0)
        report = run_pipeline_simulation(workload, horizon=2000.0, seed=seed)
        assert report.miss_ratio() == 0.0

    def test_zero_misses_without_reset(self):
        workload = balanced_workload(2, load=1.5, resolution=50.0)
        report = run_pipeline_simulation(
            workload, horizon=1500.0, seed=7, reset_on_idle=False
        )
        assert report.miss_ratio() == 0.0

    def test_zero_misses_imbalanced(self):
        workload = imbalanced_two_stage_workload(cost_ratio=4.0, bottleneck_load=1.5)
        report = run_pipeline_simulation(workload, horizon=1500.0, seed=3)
        assert report.miss_ratio() == 0.0

    def test_zero_misses_random_priority_with_proper_alpha(self):
        """Eq. 12: a random fixed-priority policy is safe when admitted
        against its urgency-inversion budget."""
        workload = balanced_workload(2, load=1.5, resolution=50.0, deadline_spread=0.5)
        alpha = 0.5 / 1.5  # (1 - spread) / (1 + spread)
        report = run_pipeline_simulation(
            workload,
            horizon=1500.0,
            seed=5,
            policy=RandomPriority(seed=9),
            alpha=alpha,
        )
        assert report.miss_ratio() == 0.0
        assert report.admitted > 0

    def test_zero_misses_with_wait_queue(self):
        workload = balanced_workload(2, load=1.8, resolution=100.0)
        report = run_pipeline_simulation(
            workload, horizon=1500.0, seed=11, max_admission_wait=20.0
        )
        assert report.miss_ratio() == 0.0


class TestResetRuleEffect:
    def test_reset_improves_acceptance(self):
        workload = balanced_workload(2, load=1.2, resolution=100.0)
        with_reset = run_pipeline_simulation(workload, horizon=1000.0, seed=1)
        without = run_pipeline_simulation(
            workload, horizon=1000.0, seed=1, reset_on_idle=False
        )
        assert with_reset.accept_ratio > without.accept_ratio
        assert with_reset.average_utilization() > without.average_utilization()

    def test_without_reset_utilization_capped_near_static_bound(self):
        workload = balanced_workload(1, load=2.0, resolution=100.0)
        report = run_pipeline_simulation(
            workload, horizon=1000.0, seed=1, reset_on_idle=False
        )
        # Static synthetic bound is ~0.586; real utilization cannot
        # exceed it by much without resets.
        assert report.utilization(0) < 0.65

    def test_paper_reset_example_end_to_end(self):
        """Section 4's contrived single-processor example: tasks with
        C=1, D=2 arriving right after each other's completion are all
        admitted and the processor runs at ~full utilization."""
        sim = PipelineSimulation(num_stages=1)
        now = 0.0
        for i in range(50):
            sim.offer_at(make_task(now, 2.0, [1.0], task_id=100_000 + i))
            now += 1.0 + 1e-9
        rep = sim.run(now)
        assert rep.admitted == 50
        assert rep.miss_ratio() == 0.0
        assert rep.utilization(0) > 0.99


class TestAdmissionWaitQueue:
    def test_waiting_task_admitted_on_idle_reset(self):
        sim = PipelineSimulation(num_stages=1, max_admission_wait=5.0)
        hog = make_task(0.0, 4.0, [2.0], task_id=8101)
        waiter = make_task(0.1, 4.0, [2.0], task_id=8102)
        sim.offer_at(hog)
        sim.offer_at(waiter)
        rep = sim.run(20.0)
        records = {r.task_id: r for r in rep.tasks}
        assert records[8101].admitted
        assert records[8102].admitted
        # Admitted when the hog departed and the stage idled (t=2).
        assert records[8102].admitted_at == pytest.approx(2.0)
        assert rep.miss_ratio() == 0.0

    def test_wait_expires_to_rejection(self):
        sim = PipelineSimulation(num_stages=1, max_admission_wait=0.5)
        hog = make_task(0.0, 10.0, [5.5], task_id=8111)
        waiter = make_task(0.1, 10.0, [5.5], task_id=8112)
        sim.offer_at(hog)
        sim.offer_at(waiter)
        rep = sim.run(30.0)
        records = {r.task_id: r for r in rep.tasks}
        assert records[8111].admitted
        assert not records[8112].admitted

    def test_waiting_task_admitted_on_expiry(self):
        """Admission can also be unblocked by a deadline expiry (the
        hog's contribution lapses at its absolute deadline)."""
        sim = PipelineSimulation(num_stages=1, max_admission_wait=10.0)
        # Hog: admitted, executes [0, 0.55], contribution 0.55 until t=1.
        hog = make_task(0.0, 1.0, [0.55], task_id=8121)
        # Waiter: needs 0.55 of utilization; must wait for the hog's
        # contribution to go away.  Arrives while the stage is still
        # busy (t=0.2) so no idle reset can happen before the hog ends.
        waiter = make_task(0.2, 1.0, [0.55], task_id=8122)
        sim.offer_at(hog)
        sim.offer_at(waiter)
        rep = sim.run(30.0)
        records = {r.task_id: r for r in rep.tasks}
        assert records[8122].admitted
        # Idle reset at 0.55 (hog departed) unblocks it first.
        assert records[8122].admitted_at == pytest.approx(0.55)

    def test_fifo_head_of_line(self):
        """The admission queue is FIFO with head-of-line blocking: a
        later small task does not overtake an earlier big one."""
        sim = PipelineSimulation(num_stages=1, max_admission_wait=100.0)
        hog = make_task(0.0, 100.0, [58.0], task_id=8131)
        big = make_task(0.1, 100.0, [58.0], task_id=8132)
        small = make_task(0.2, 100.0, [0.1], task_id=8133)
        for t in (hog, big, small):
            sim.offer_at(t)
        rep = sim.run(400.0)
        records = {r.task_id: r for r in rep.tasks}
        assert records[8132].admitted
        assert records[8133].admitted
        assert records[8133].admitted_at >= records[8132].admitted_at


class TestSheddingPath:
    def test_important_arrival_sheds_lesser_load(self):
        sim = PipelineSimulation(num_stages=1, admit_with_shedding=True)
        fillers = [
            make_task(0.0, 10.0, [1.4], importance=0, task_id=8200 + i)
            for i in range(4)
        ]
        for t in fillers:
            sim.offer_at(t)
        vip = make_task(0.5, 10.0, [3.0], importance=5, task_id=8299)
        sim.offer_at(vip)
        rep = sim.run(40.0)
        records = {r.task_id: r for r in rep.tasks}
        assert records[8299].admitted
        assert rep.shed_count >= 1
        # Shed tasks never complete.
        for r in rep.tasks:
            if r.shed:
                assert r.completed_at is None

    def test_vip_meets_deadline_after_shedding(self):
        sim = PipelineSimulation(num_stages=1, admit_with_shedding=True)
        for i in range(4):
            sim.offer_at(make_task(0.0, 10.0, [1.4], importance=0, task_id=8300 + i))
        vip = make_task(0.5, 10.0, [3.0], importance=5, task_id=8399)
        sim.offer_at(vip)
        rep = sim.run(40.0)
        vip_record = next(r for r in rep.tasks if r.task_id == 8399)
        assert vip_record.completed_at is not None
        assert not vip_record.missed


class TestReservedStreams:
    def test_reserved_periodic_executes_without_admission(self):
        spec = periodic_spec("critical", period=1.0, computation_times=[0.2])
        sim = PipelineSimulation(num_stages=1, reserved=[0.2])
        count = sim.submit_reserved(spec, until=10.0)
        rep = sim.run(12.0)
        assert count == 10
        assert rep.admitted == 10
        assert rep.miss_ratio() == 0.0

    def test_dynamic_tasks_admitted_on_top_of_reservation(self):
        spec = periodic_spec("critical", period=1.0, computation_times=[0.2])
        sim = PipelineSimulation(num_stages=1, reserved=[0.2])
        sim.submit_reserved(spec, until=20.0)
        for i in range(10):
            sim.offer_at(make_task(i * 2.0, 5.0, [0.5], task_id=8400 + i))
        rep = sim.run(25.0)
        dynamic = [r for r in rep.tasks if r.task_id >= 8400]
        assert all(r.admitted for r in dynamic)
        assert rep.miss_ratio() == 0.0


class TestApproximateAdmission:
    def test_mean_demand_admits_by_average(self):
        workload = balanced_workload(2, load=1.0, resolution=100.0)
        report = run_pipeline_simulation(
            workload,
            horizon=1000.0,
            seed=13,
            demand_model=MeanDemand(workload.mean_stage_costs),
        )
        assert report.admitted > 0
        # High resolution: approximate control misses (almost) nothing.
        assert report.miss_ratio() <= 0.005

    def test_low_resolution_can_miss(self):
        """With big tasks the mean substitutes badly; some misses are
        expected (this is Figure 7's left edge)."""
        workload = balanced_workload(2, load=1.6, resolution=3.0)
        misses = []
        for seed in range(5):
            report = run_pipeline_simulation(
                workload,
                horizon=1500.0,
                seed=seed,
                demand_model=MeanDemand(workload.mean_stage_costs),
            )
            misses.append(report.miss_ratio())
        assert max(misses) > 0.0
