"""Cross-validation of the event-driven stage against a quantized reference.

The reference scheduler advances time in fixed quanta and always runs
the highest-priority unfinished arrived job — the textbook definition
of preemptive fixed-priority scheduling.  With all task parameters
chosen as multiples of the quantum, the reference is exact, so the
event-driven :class:`~repro.sim.stage.Stage` must produce identical
completion times.
"""

import random

import pytest

from repro.core.task import make_task
from repro.sim.engine import Simulator
from repro.sim.stage import Stage

QUANTUM = 0.125


def reference_schedule(jobs):
    """Quantized preemptive fixed-priority scheduler.

    Args:
        jobs: List of ``(arrival, duration, priority_key)`` tuples,
            all multiples of ``QUANTUM``.

    Returns:
        Completion time per job (same order).
    """
    remaining = [duration for _, duration, _ in jobs]
    completion = [None] * len(jobs)
    t = 0.0
    pending = sum(1 for r in remaining if r > 0)
    zero_jobs = [i for i, r in enumerate(remaining) if r == 0]
    # Zero-duration jobs complete at their arrival (they run instantly
    # when reached; with quantized positive-work peers this matches the
    # event simulator whenever they are the highest priority at
    # arrival — keep the generator free of zero durations to stay
    # exact, this branch is a guard).
    for i in zero_jobs:
        completion[i] = jobs[i][0]
    horizon_guard = sum(remaining) + max((a for a, _, _ in jobs), default=0.0) + 1.0
    while pending > 0 and t < horizon_guard:
        ready = [
            i
            for i in range(len(jobs))
            if jobs[i][0] <= t + 1e-12 and remaining[i] > 1e-12
        ]
        if ready:
            chosen = min(ready, key=lambda i: jobs[i][2])
            remaining[chosen] -= QUANTUM
            if remaining[chosen] <= 1e-12:
                completion[chosen] = t + QUANTUM
                pending -= 1
        t += QUANTUM
    return completion


@pytest.mark.parametrize("seed", range(8))
def test_stage_matches_reference(seed):
    rng = random.Random(seed)
    jobs = []
    t = 0.0
    for i in range(25):
        t += QUANTUM * rng.randint(0, 8)
        duration = QUANTUM * rng.randint(1, 12)
        priority = (float(rng.randint(0, 4)), float(i))
        jobs.append((t, duration, priority))

    expected = reference_schedule(jobs)

    sim = Simulator()
    stage = Stage(sim, index=0)
    completions = {}
    stage.on_job_complete = lambda job: completions.__setitem__(
        job.task.task_id, sim.now
    )
    for i, (arrival, duration, priority) in enumerate(jobs):
        task = make_task(arrival, 1e6, [duration], task_id=i)
        sim.at(
            arrival,
            lambda tk=task, key=priority, d=duration: stage.submit(tk, key, duration=d),
        )
    sim.run()

    for i in range(len(jobs)):
        assert completions[i] == pytest.approx(expected[i], abs=1e-9), (
            f"job {i}: event-driven {completions[i]} vs reference {expected[i]}"
        )


def test_reference_sanity():
    """The reference itself on a hand-checked scenario."""
    jobs = [
        (0.0, 1.0, (2.0, 0.0)),  # low priority, 1s
        (0.25, 0.5, (1.0, 1.0)),  # high priority, preempts
    ]
    completion = reference_schedule(jobs)
    assert completion[1] == pytest.approx(0.75)
    assert completion[0] == pytest.approx(1.5)
