"""Crash recovery: bitwise equivalence, tail repair, and the chaos gate."""

import json

import pytest

from repro.serve.gateway import AdmissionGateway
from repro.serve.journal import Journal, encode_record, scan_journal
from repro.serve.recovery import (
    JOURNAL_FILE,
    SNAPSHOT_FILE,
    RecoveryError,
    crash_chaos_gate_failures,
    recover,
    registry_fingerprint,
    run_crash_chaos,
)

POLICY = {"num_stages": 2, "alpha": 0.9}
BATCHED = {"num_stages": 2, "alpha": 0.9, "max_batch": 4}


def _ops(policy=POLICY, count=30):
    """A deterministic mixed op script (returns wire documents)."""
    docs = [
        {"id": 0, "rid": "r0", "op": "register", "pipeline": "web",
         "policy": dict(policy)},
    ]
    now = 0.0
    for n in range(1, count + 1):
        now += 0.1
        kind = n % 6
        if kind in (0, 1, 2):
            docs.append({
                "id": n, "rid": f"r{n}", "op": "admit", "pipeline": "web",
                "task": {"task_id": n, "arrival": now, "deadline": now + 1.2,
                         "costs": [0.03 + 0.001 * n, 0.05]},
            })
        elif kind == 3:
            docs.append({"id": n, "rid": f"r{n}", "op": "depart",
                         "pipeline": "web", "task_id": max(1, n - 3),
                         "stage": 0})
        elif kind == 4:
            docs.append({"id": n, "rid": f"r{n}", "op": "idle",
                         "pipeline": "web", "stage": 0})
        else:
            docs.append({"id": n, "rid": f"r{n}", "op": "expire",
                         "pipeline": "web", "now": now})
    return docs


def _drive(durable_or_gateway, docs):
    for doc in docs:
        durable_or_gateway.handle_line(json.dumps(doc))


class TestRecover:
    def test_empty_directory_recovers_fresh(self, tmp_path):
        durable, report = recover(tmp_path / "state")
        assert report.snapshot_loaded is False
        assert report.replayed == 0
        assert report.pipelines == []
        assert list(durable.registry.names()) == []
        durable.close()

    @pytest.mark.parametrize("crash_after", [1, 7, 13, 20, 31])
    def test_bitwise_equivalence_at_arbitrary_offsets(self, tmp_path, crash_after):
        """Recovering a journal prefix reproduces the gateway bitwise."""
        docs = _ops()[:crash_after]
        durable, _ = recover(tmp_path, snapshot_every=10)
        _drive(durable, docs)
        pre_crash = registry_fingerprint(durable)
        durable.close()  # kill -9: no shutdown snapshot

        recovered, report = recover(tmp_path, snapshot_every=10)
        assert registry_fingerprint(recovered) == pre_crash
        assert report.replayed + report.snapshot_seq >= len(docs) or report.snapshot_loaded
        recovered.close()

        shadow = AdmissionGateway()
        _drive(shadow, docs)
        assert registry_fingerprint(shadow) == pre_crash

    def test_recovery_mid_batch_restores_pending_queue(self, tmp_path):
        """A crash with queued (undecided) admissions replays the queue."""
        # Ends on three consecutive queued admits (no barrier after).
        docs = _ops(policy=BATCHED, count=8)
        durable, _ = recover(tmp_path)
        _drive(durable, docs)
        assert any(p.pending for p in durable.registry)
        pre_crash = registry_fingerprint(durable)
        durable.close()

        recovered, _ = recover(tmp_path)
        assert registry_fingerprint(recovered) == pre_crash
        assert any(p.pending for p in recovered.registry)
        # Draining both yields identical decisions.
        shadow = AdmissionGateway()
        _drive(shadow, docs)
        got = [line for _, line in recovered.drain()]
        want = [line for _, line in shadow.drain()]
        assert got == want
        recovered.close()

    def test_torn_final_record_is_dropped(self, tmp_path):
        docs = _ops(count=10)
        durable, _ = recover(tmp_path)
        _drive(durable, docs)
        pre_crash = registry_fingerprint(durable)
        extra = {"id": 99, "op": "expire", "pipeline": "web", "now": 50.0}
        durable.journal.append_torn(extra, keep=0.6)
        durable.close()

        recovered, report = recover(tmp_path)
        assert report.truncated_bytes > 0
        # The torn op never became durable: state matches the pre-tear
        # fingerprint, not one with the expire applied.
        assert registry_fingerprint(recovered) == pre_crash
        recovered.close()

    def test_crash_between_snapshot_and_journal_reset(self, tmp_path):
        """Journal records the snapshot already covers are skipped."""
        docs = _ops(count=12)
        durable, _ = recover(tmp_path, snapshot_every=0)
        _drive(durable, docs)
        pre_crash = registry_fingerprint(durable)
        # Simulate: snapshot written, then crash before journal.reset().
        from repro.serve.journal import gateway_snapshot, write_gateway_snapshot

        doc = gateway_snapshot(durable.gateway, durable.journal.last_seq)
        write_gateway_snapshot(tmp_path / SNAPSHOT_FILE, doc)
        durable.close()

        recovered, report = recover(tmp_path)
        assert report.snapshot_loaded is True
        assert report.skipped == len(docs)
        assert report.replayed == 0
        assert registry_fingerprint(recovered) == pre_crash
        recovered.close()

    def test_recovery_compacts_when_replay_exceeds_period(self, tmp_path):
        """Replayed ops count toward the compaction period."""
        docs = _ops(count=12)
        durable, _ = recover(tmp_path, snapshot_every=0)
        _drive(durable, docs)
        durable.close()
        assert not (tmp_path / SNAPSHOT_FILE).exists()

        recovered, report = recover(tmp_path, snapshot_every=5)
        assert report.replayed == len(docs)
        assert (tmp_path / SNAPSHOT_FILE).exists()
        assert scan_journal(tmp_path / JOURNAL_FILE).records == []
        recovered.close()

    def test_dedup_window_survives_recovery(self, tmp_path):
        docs = _ops(count=8)
        durable, _ = recover(tmp_path)
        _drive(durable, docs)
        first = [
            json.loads(line)
            for _, line in durable.handle_line(json.dumps(docs[1]))
        ]
        durable.close()

        recovered, _ = recover(tmp_path)
        again = [
            json.loads(line)
            for _, line in recovered.handle_line(json.dumps(docs[1]))
        ]
        assert again == first  # cached decision, not a re-execution
        assert recovered.gateway.dedup_hits > 0
        recovered.close()

    def test_unloadable_snapshot_raises(self, tmp_path):
        (tmp_path / SNAPSHOT_FILE).write_text('{"format": "bogus/9"}')
        with pytest.raises(RecoveryError, match="snapshot"):
            recover(tmp_path)

    def test_corrupt_snapshot_state_fails_the_audit(self, tmp_path):
        docs = _ops(count=9)
        durable, _ = recover(tmp_path, snapshot_every=0)
        _drive(durable, docs)
        durable.compact()
        durable.close()
        snapshot_path = tmp_path / SNAPSHOT_FILE
        doc = json.loads(snapshot_path.read_text())
        # Corrupt a tracker's exact accumulator far past the audit
        # tolerance (+0.5 in units of 2**-1074).
        acc = doc["pipelines"][0]["controller"]["accumulators"][0]
        acc["fixed"] = hex(int(acc["fixed"], 16) + (1 << 1073))
        snapshot_path.write_text(json.dumps(doc))
        with pytest.raises(RecoveryError, match="failed audit"):
            recover(tmp_path)

    def test_journal_continues_sequence_after_recovery(self, tmp_path):
        docs = _ops(count=5)
        durable, _ = recover(tmp_path)
        _drive(durable, docs)
        durable.close()
        recovered, report = recover(tmp_path)
        seq = recovered.journal.append({"op": "probe"})
        assert seq == report.last_seq + 1
        recovered.close()


class TestFingerprint:
    def test_identical_histories_match(self, tmp_path):
        a = AdmissionGateway()
        b = AdmissionGateway()
        _drive(a, _ops(count=10))
        _drive(b, _ops(count=10))
        assert registry_fingerprint(a) == registry_fingerprint(b)

    def test_diverging_histories_differ(self):
        a = AdmissionGateway()
        b = AdmissionGateway()
        _drive(a, _ops(count=10))
        _drive(b, _ops(count=9))
        assert registry_fingerprint(a) != registry_fingerprint(b)

    def test_diagnostics_are_excluded(self):
        a = AdmissionGateway()
        b = AdmissionGateway()
        _drive(a, _ops(count=6))
        _drive(b, _ops(count=6))
        b.errors += 5
        b.op_counts["health"] = 99
        assert registry_fingerprint(a) == registry_fingerprint(b)


class TestCrashChaos:
    def test_small_run_meets_every_gate(self, tmp_path):
        report = run_crash_chaos(
            seed=0, cycles=8, state_dir=tmp_path, snapshot_every=10
        )
        failures = crash_chaos_gate_failures(report, min_recoveries=8)
        assert failures == []
        assert report["admissions"]["lost"] == 0
        assert report["admissions"]["duplicated"] == 0
        assert report["equivalence"]["fingerprint_mismatches"] == 0
        assert report["equivalence"]["final_identical"] is True

    def test_report_is_byte_stable(self):
        first = run_crash_chaos(seed=3, cycles=4)
        second = run_crash_chaos(seed=3, cycles=4)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_gate_flags_lost_admissions(self):
        report = run_crash_chaos(seed=0, cycles=4)
        report["admissions"]["lost"] = 2
        failures = crash_chaos_gate_failures(report, min_recoveries=4)
        assert any("lost" in f for f in failures)

    def test_gate_flags_too_few_recoveries(self):
        report = run_crash_chaos(seed=0, cycles=4)
        failures = crash_chaos_gate_failures(report, min_recoveries=20)
        assert any("crash/recover cycles" in f for f in failures)

    @pytest.mark.slow_serve
    def test_acceptance_run_twenty_cycles(self):
        """ISSUE-4 acceptance: >= 20 crash/recover cycles, zero lost or
        duplicated admissions, bitwise-identical recovered state."""
        report = run_crash_chaos(seed=0, cycles=20)
        assert crash_chaos_gate_failures(report, min_recoveries=20) == []
