"""Tests for measurement collection and reporting."""

import pytest

from repro.sim.metrics import (
    SimulationReport,
    StageUsage,
    TaskRecord,
    mean_confidence_interval,
)


def record(task_id, arrival, deadline, admitted=True, completed=None, shed=False):
    r = TaskRecord(task_id=task_id, arrival_time=arrival, deadline=deadline)
    r.admitted = admitted
    r.completed_at = completed
    r.shed = shed
    return r


class TestTaskRecord:
    def test_missed_when_late(self):
        r = record(1, 0.0, 10.0, completed=10.5)
        assert r.missed

    def test_on_time(self):
        r = record(1, 0.0, 10.0, completed=9.0)
        assert not r.missed

    def test_exactly_at_deadline_not_missed(self):
        r = record(1, 0.0, 10.0, completed=10.0)
        assert not r.missed

    def test_incomplete_not_counted_missed_here(self):
        r = record(1, 0.0, 10.0, completed=None)
        assert not r.missed

    def test_response_time(self):
        r = record(1, 2.0, 10.0, completed=7.0)
        assert r.response_time == pytest.approx(5.0)
        assert record(1, 0.0, 1.0).response_time is None


class TestStageUsage:
    def test_utilization(self):
        assert StageUsage(0, busy_time=30.0, window=100.0).utilization == 0.3

    def test_zero_window(self):
        assert StageUsage(0, busy_time=0.0, window=0.0).utilization == 0.0


class TestSimulationReport:
    def make_report(self):
        tasks = [
            record(1, 0.0, 10.0, admitted=True, completed=5.0),
            record(2, 1.0, 10.0, admitted=True, completed=12.0),  # missed
            record(3, 2.0, 10.0, admitted=False),
            record(4, 3.0, 10.0, admitted=True, completed=None),  # unfinished
            record(5, 90.0, 50.0, admitted=True, completed=None),  # censored
            record(6, 4.0, 10.0, admitted=True, completed=8.0, shed=True),
        ]
        usage = [StageUsage(0, 40.0, 100.0), StageUsage(1, 80.0, 100.0)]
        return SimulationReport(horizon=100.0, warmup=0.0, stage_usage=usage, tasks=tasks)

    def test_counts(self):
        rep = self.make_report()
        assert rep.generated == 6
        assert rep.admitted == 5
        assert rep.rejected == 1
        assert rep.completed == 3
        assert rep.shed_count == 1

    def test_accept_ratio(self):
        assert self.make_report().accept_ratio == pytest.approx(5 / 6)

    def test_miss_ratio_censors_and_excludes_shed(self):
        rep = self.make_report()
        # Judged: tasks 1 (ok), 2 (missed), 4 (never finished, deadline
        # inside horizon -> missed).  5 censored, 6 shed, 3 rejected.
        assert rep.miss_ratio() == pytest.approx(2 / 3)

    def test_miss_ratio_with_cutoff(self):
        rep = self.make_report()
        # Cutoff before task 4's deadline (13.0): judge only 1 and 2.
        assert rep.miss_ratio(settled_before=12.5) == pytest.approx(1 / 2)

    def test_miss_ratio_empty(self):
        rep = SimulationReport(horizon=10.0, warmup=0.0)
        assert rep.miss_ratio() == 0.0
        assert rep.accept_ratio == 0.0

    def test_utilizations(self):
        rep = self.make_report()
        assert rep.utilization(0) == pytest.approx(0.4)
        assert rep.utilizations() == pytest.approx((0.4, 0.8))
        assert rep.average_utilization() == pytest.approx(0.6)
        assert rep.bottleneck_utilization() == pytest.approx(0.8)

    def test_response_times(self):
        rep = self.make_report()
        assert sorted(rep.response_times()) == pytest.approx([4.0, 5.0, 11.0])
        assert rep.mean_response_time() == pytest.approx(20.0 / 3)

    def test_empty_report_utilization(self):
        rep = SimulationReport(horizon=10.0, warmup=0.0)
        assert rep.average_utilization() == 0.0
        assert rep.bottleneck_utilization() == 0.0
        assert rep.mean_response_time() == 0.0


class TestConfidenceInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_single_sample(self):
        mean, half = mean_confidence_interval([3.0])
        assert mean == 3.0
        assert half == 0.0

    def test_identical_samples(self):
        mean, half = mean_confidence_interval([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert half == 0.0

    def test_known_values(self):
        mean, half = mean_confidence_interval([1.0, 3.0], z=1.0)
        assert mean == 2.0
        # s = sqrt(2), half = s / sqrt(2) = 1.0
        assert half == pytest.approx(1.0)

    def test_wider_z_wider_interval(self):
        _, narrow = mean_confidence_interval([1.0, 2.0, 3.0], z=1.0)
        _, wide = mean_confidence_interval([1.0, 2.0, 3.0], z=2.0)
        assert wide == pytest.approx(2 * narrow)


class TestPercentiles:
    def make_report(self):
        tasks = [
            TaskRecord(task_id=i, arrival_time=0.0, deadline=100.0)
            for i in range(10)
        ]
        for i, t in enumerate(tasks):
            t.admitted = True
            t.completed_at = float(i + 1)  # responses 1..10
        return SimulationReport(horizon=200.0, warmup=0.0, tasks=tasks)

    def test_median(self):
        assert self.make_report().response_time_percentile(50.0) == 5.0

    def test_p99_is_max_for_small_sets(self):
        assert self.make_report().response_time_percentile(99.0) == 10.0

    def test_p0_is_min(self):
        assert self.make_report().response_time_percentile(0.0) == 1.0

    def test_empty(self):
        rep = SimulationReport(horizon=1.0, warmup=0.0)
        assert rep.response_time_percentile(50.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_report().response_time_percentile(101.0)


class TestPerStreamSummary:
    def test_grouping_and_counts(self):
        tasks = []
        for i in range(4):
            t = TaskRecord(task_id=i, arrival_time=0.0, deadline=10.0, stream_id=7)
            t.admitted = i < 3
            t.completed_at = 5.0 if i < 2 else (12.0 if i == 2 else None)
            tasks.append(t)
        lone = TaskRecord(task_id=99, arrival_time=0.0, deadline=10.0)
        lone.admitted = True
        lone.completed_at = 1.0
        tasks.append(lone)
        rep = SimulationReport(horizon=100.0, warmup=0.0, tasks=tasks)
        summary = rep.per_stream_summary()
        stream = summary[7]
        assert stream.offered == 4
        assert stream.admitted == 3
        assert stream.missed == 1  # the one completing at 12.0
        assert stream.worst_response == 12.0
        assert stream.accept_ratio == pytest.approx(0.75)
        assert summary[None].offered == 1
        assert summary[None].missed == 0
