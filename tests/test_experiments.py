"""Shape tests for the experiment harness (reduced-size runs).

Each experiment is run with small parameters and its *qualitative*
shape — the thing the paper's figures demonstrate — is asserted.  Full
runs live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    ablations,
    fig4_pipeline_length,
    fig5_task_resolution,
    fig6_load_imbalance,
    fig7_approximate_admission,
    tab1_tsce,
)
from repro.experiments.common import ExperimentResult, Series, SeriesPoint


class TestCommonTypes:
    def test_series_accessors(self):
        s = Series("x", [SeriesPoint(1.0, 2.0), SeriesPoint(3.0, 4.0)])
        assert s.xs() == [1.0, 3.0]
        assert s.ys() == [2.0, 4.0]
        assert s.y_at(3.0) == 4.0
        assert s.y_at(9.0) is None

    def test_table_rendering(self):
        result = ExperimentResult(
            experiment_id="T",
            title="demo",
            x_label="x",
            y_label="y",
            series=[Series("a", [SeriesPoint(1.0, 0.5)])],
        )
        table = result.to_table()
        assert "T: demo" in table
        assert "0.5000" in table

    def test_table_merges_disjoint_xs(self):
        result = ExperimentResult(
            experiment_id="T",
            title="demo",
            x_label="x",
            y_label="y",
            series=[
                Series("a", [SeriesPoint(1.0, 0.5)]),
                Series("b", [SeriesPoint(2.0, 0.7)]),
            ],
        )
        table = result.to_table()
        assert "-" in table  # missing cells rendered as dashes


@pytest.fixture(scope="module")
def fig4_small():
    return fig4_pipeline_length.run(
        loads=(0.6, 1.0, 1.6),
        lengths=(1, 2, 3),
        horizon=800.0,
        seeds=(1, 2),
    )


class TestFig4:
    def test_structure(self, fig4_small):
        assert fig4_small.experiment_id == "FIG4"
        assert len(fig4_small.series) == 3
        assert all(len(s.points) == 3 for s in fig4_small.series)

    def test_high_utilization_at_full_load(self, fig4_small):
        """Paper: > 80% average stage utilization at 100% input load."""
        for series in fig4_small.series:
            assert series.y_at(1.0) > 0.78

    def test_pipeline_length_no_adverse_effect(self, fig4_small):
        """Paper: multi-stage curves nearly identical."""
        two = fig4_small.series[1]
        three = fig4_small.series[2]
        for load in (0.6, 1.0, 1.6):
            assert three.y_at(load) == pytest.approx(two.y_at(load), abs=0.08)

    def test_utilization_tracks_load_below_capacity(self, fig4_small):
        for series in fig4_small.series:
            assert series.y_at(0.6) == pytest.approx(0.6, abs=0.05)

    def test_no_misses_recorded(self, fig4_small):
        for series in fig4_small.series:
            for point in series.points:
                assert point.detail["miss_ratio"] == 0.0


class TestFig5:
    def test_utilization_increases_with_resolution(self):
        result = fig5_task_resolution.run(
            resolutions=(2.0, 20.0, 200.0),
            loads=(1.2,),
            horizon=800.0,
            seeds=(1, 2),
        )
        ys = result.series[0].ys()
        assert ys[0] < ys[-1]
        assert ys[1] <= ys[2] + 0.03  # weakly increasing

    def test_load_ordering(self):
        result = fig5_task_resolution.run(
            resolutions=(50.0,),
            loads=(0.7, 1.5),
            horizon=800.0,
            seeds=(1,),
        )
        low, high = result.series
        assert high.y_at(50.0) >= low.y_at(50.0) - 0.02


class TestFig6:
    def test_midpoint_is_minimum(self):
        result = fig6_load_imbalance.run(
            ratios=(0.25, 1.0, 4.0),
            horizon=1500.0,
            seeds=(1, 2),
        )
        series = result.series[0]
        mid = series.y_at(1.0)
        assert series.y_at(0.25) >= mid - 0.01
        assert series.y_at(4.0) >= mid - 0.01


class TestFig7:
    def test_high_resolution_no_misses(self):
        result = fig7_approximate_admission.run(
            resolutions=(100.0,),
            loads=(1.0,),
            horizon=800.0,
            seeds=(1, 2),
        )
        assert result.series[0].y_at(100.0) <= 0.005

    def test_miss_ratio_small_even_at_low_resolution(self):
        result = fig7_approximate_admission.run(
            resolutions=(3.0,),
            loads=(1.6,),
            horizon=800.0,
            seeds=(1, 2, 3),
        )
        y = result.series[0].y_at(3.0)
        assert y < 0.2  # "a very small fraction"


class TestTab1:
    def test_static_certification(self):
        result, tab1 = tab1_tsce.run(track_counts=(100,), horizon=5.0)
        assert tab1.plan.feasible
        assert tab1.plan.region_value == pytest.approx(0.93, abs=0.005)

    def test_dynamic_capacity_hundreds_of_tracks(self):
        result, tab1 = tab1_tsce.run(track_counts=(300, 500), horizon=8.0)
        assert tab1.sustained_tracks >= 500
        # Stage-1 utilization climbs toward the paper's ~95% as the
        # population grows.
        util = result.series[1]
        assert util.y_at(500) > util.y_at(300)

    def test_no_misses_in_capacity_runs(self):
        result, _ = tab1_tsce.run(track_counts=(400,), horizon=8.0)
        assert result.series[2].y_at(400) == 0.0


class TestAblations:
    def test_reset_ablation_gap(self):
        result = ablations.run_reset_ablation(
            loads=(1.2,), horizon=500.0, seeds=(1,)
        )
        on, off = result.series
        assert on.y_at(1.2) > off.y_at(1.2) + 0.2

    def test_wait_ablation_monotone(self):
        result = ablations.run_wait_ablation(
            waits=(0.0, 50.0), horizon=500.0, seeds=(1,)
        )
        accept = result.series[0]
        miss = result.series[1]
        assert accept.y_at(50.0) >= accept.y_at(0.0)
        assert miss.y_at(0.0) == 0.0
        assert miss.y_at(50.0) == 0.0

    def test_alpha_ablation_soundness(self):
        result = ablations.run_alpha_ablation(
            loads=(1.4,), horizon=800.0, seeds=(1, 2)
        )
        by_label = {s.label: s for s in result.series}
        dm_miss = by_label["DM, budget 1 miss"]
        sound_miss = next(
            s for label, s in by_label.items()
            if label.startswith("random, budget 0") and label.endswith("miss")
        )
        assert dm_miss.y_at(1.4) == 0.0
        assert sound_miss.y_at(1.4) == 0.0

    def test_blocking_ablation_aware_is_safe(self):
        result = ablations.run_blocking_ablation(
            loads=(1.2,), horizon=600.0, seeds=(1,)
        )
        aware_miss = result.series[0]
        assert aware_miss.y_at(1.2) == 0.0


class TestExtDag:
    def test_diamond_dominates_chain(self):
        from repro.experiments import ext_dag_admission

        result = ext_dag_admission.run(rates=(1.0, 3.0), horizon=500.0, seeds=(1,))
        by_label = {s.label: s for s in result.series}
        for rate in (1.0, 3.0):
            assert by_label["diamond util"].y_at(rate) >= (
                by_label["chain util"].y_at(rate) - 0.02
            )
        assert max(by_label["diamond miss"].ys()) == 0.0
        assert max(by_label["chain miss"].ys()) == 0.0


class TestOverrunAblation:
    def test_exact_declarations_never_miss(self):
        from repro.experiments.ablations import run_overrun_ablation

        result = run_overrun_ablation(
            overrun_factors=(1.0, 2.0), horizon=500.0, seeds=(1,)
        )
        miss = result.series[0]
        assert miss.y_at(1.0) == 0.0

    def test_degradation_is_graceful(self):
        from repro.experiments.ablations import run_overrun_ablation

        result = run_overrun_ablation(
            overrun_factors=(1.0, 2.0), horizon=500.0, seeds=(1,)
        )
        miss = result.series[0]
        assert miss.y_at(2.0) < 0.2  # no cliff even at 2x overruns
