"""Tests for synthetic-utilization accounting (Section 2 / Section 4 rules)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.synthetic import StageUtilizationTracker


class TestBasics:
    def test_starts_at_reserved(self):
        assert StageUtilizationTracker().value == 0.0
        assert StageUtilizationTracker(reserved=0.4).value == 0.4

    def test_invalid_reserved(self):
        with pytest.raises(ValueError):
            StageUtilizationTracker(reserved=-0.1)
        with pytest.raises(ValueError):
            StageUtilizationTracker(reserved=1.1)

    def test_add_accumulates(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=10.0)
        tr.add("b", 0.3, expiry=20.0)
        assert tr.value == pytest.approx(0.5)
        assert len(tr) == 2
        assert "a" in tr and "c" not in tr

    def test_add_on_reserved_baseline(self):
        tr = StageUtilizationTracker(reserved=0.4)
        tr.add("a", 0.1, expiry=10.0)
        assert tr.value == pytest.approx(0.5)
        assert tr.dynamic_value == pytest.approx(0.1)

    def test_duplicate_add_rejected(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=10.0)
        with pytest.raises(ValueError):
            tr.add("a", 0.1, expiry=5.0)

    def test_invalid_contribution(self):
        tr = StageUtilizationTracker()
        with pytest.raises(ValueError):
            tr.add("a", -0.1, expiry=1.0)
        with pytest.raises(ValueError):
            tr.add("a", math.inf, expiry=1.0)

    def test_contribution_of(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.25, expiry=10.0)
        assert tr.contribution_of("a") == 0.25
        assert tr.contribution_of("missing") == 0.0


class TestExpiry:
    def test_expire_removes_due_contributions(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=10.0)
        tr.add("b", 0.3, expiry=20.0)
        released = tr.expire_until(10.0)
        assert released == pytest.approx(0.2)
        assert tr.value == pytest.approx(0.3)

    def test_expire_boundary_inclusive(self):
        # A task stops being current at A + D.
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=5.0)
        assert tr.expire_until(5.0) == pytest.approx(0.2)

    def test_expire_nothing_due(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=10.0)
        assert tr.expire_until(9.999) == 0.0
        assert tr.value == pytest.approx(0.2)

    def test_next_expiry(self):
        tr = StageUtilizationTracker()
        assert tr.next_expiry() == math.inf
        tr.add("a", 0.2, expiry=7.0)
        tr.add("b", 0.2, expiry=3.0)
        assert tr.next_expiry() == 3.0

    def test_next_expiry_skips_removed(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=3.0)
        tr.add("b", 0.2, expiry=7.0)
        tr.remove("a")
        assert tr.next_expiry() == 7.0

    def test_readd_after_removal_not_clobbered_by_stale_expiry(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=5.0)
        tr.remove("a")
        tr.add("a", 0.3, expiry=50.0)
        # The stale heap entry for the first incarnation must not
        # expire the new contribution.
        assert tr.expire_until(10.0) == 0.0
        assert tr.value == pytest.approx(0.3)


class TestIdleReset:
    def test_departed_released_on_idle(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=100.0)
        tr.add("b", 0.3, expiry=100.0)
        tr.mark_departed("a")
        released = tr.reset_on_idle()
        assert released == pytest.approx(0.2)
        assert tr.value == pytest.approx(0.3)

    def test_non_departed_survive_reset(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=100.0)
        assert tr.reset_on_idle() == 0.0
        assert tr.value == pytest.approx(0.2)

    def test_reset_keeps_reserved_baseline(self):
        tr = StageUtilizationTracker(reserved=0.4)
        tr.add("a", 0.2, expiry=100.0)
        tr.mark_departed("a")
        tr.reset_on_idle()
        assert tr.value == pytest.approx(0.4)

    def test_mark_departed_unknown_is_noop(self):
        tr = StageUtilizationTracker()
        tr.mark_departed("ghost")
        assert tr.reset_on_idle() == 0.0

    def test_departed_then_expired_not_double_released(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=5.0)
        tr.mark_departed("a")
        assert tr.expire_until(5.0) == pytest.approx(0.2)
        assert tr.reset_on_idle() == 0.0
        assert tr.value == 0.0

    def test_reset_idempotent(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=100.0)
        tr.mark_departed("a")
        tr.reset_on_idle()
        assert tr.reset_on_idle() == 0.0


class TestRemoveAndClear:
    def test_remove_returns_contribution(self):
        tr = StageUtilizationTracker()
        tr.add("a", 0.2, expiry=10.0)
        assert tr.remove("a") == pytest.approx(0.2)
        assert tr.value == 0.0

    def test_remove_unknown(self):
        assert StageUtilizationTracker().remove("nope") == 0.0

    def test_clear(self):
        tr = StageUtilizationTracker(reserved=0.1)
        tr.add("a", 0.2, expiry=10.0)
        tr.clear()
        assert tr.value == pytest.approx(0.1)
        assert len(tr) == 0
        assert tr.next_expiry() == math.inf

    def test_recompute_matches_running_sum(self):
        tr = StageUtilizationTracker()
        for i in range(100):
            tr.add(i, 0.001 * (i % 7), expiry=float(i))
        running = tr.dynamic_value
        assert tr.recompute() == pytest.approx(running, abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "expire", "depart", "reset"]),
            st.integers(min_value=0, max_value=9),
            st.floats(min_value=0.0, max_value=0.1),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        max_size=60,
    )
)
def test_tracker_matches_naive_model(ops):
    """Drive the tracker through arbitrary op sequences against a dict model."""
    tracker = StageUtilizationTracker()
    model = {}  # task_id -> (contribution, expiry)
    departed = set()
    clock = 0.0
    for op, key, contribution, t in ops:
        if op == "add":
            if key in model:
                continue
            expiry = clock + t + 1e-9
            tracker.add(key, contribution, expiry)
            model[key] = (contribution, expiry)
        elif op == "remove":
            got = tracker.remove(key)
            want = model.pop(key, (0.0, 0.0))[0]
            departed.discard(key)
            assert got == pytest.approx(want)
        elif op == "expire":
            clock = max(clock, t)
            tracker.expire_until(clock)
            for k in [k for k, (_, e) in model.items() if e <= clock]:
                del model[k]
                departed.discard(k)
        elif op == "depart":
            tracker.mark_departed(key)
            if key in model:
                departed.add(key)
        elif op == "reset":
            tracker.reset_on_idle()
            for k in list(departed):
                model.pop(k, None)
            departed.clear()
        assert tracker.value == pytest.approx(
            sum(c for c, _ in model.values()), abs=1e-9
        )
        assert len(tracker) == len(model)
