"""Tests for the controller invariant auditor and resync recovery."""

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.audit import (
    AUDIT_KINDS,
    ControllerAuditor,
    InvariantViolation,
    diff_controllers,
)
from repro.core.task import make_task
from repro.locking import ResourceSpec


def controller(num_stages=2, **kwargs):
    return PipelineAdmissionController(num_stages, **kwargs)


def admit(c, costs, deadline=10.0, now=0.0, importance=0, task_id=None,
          resources=()):
    task = make_task(now, deadline, costs, importance=importance,
                     resources=resources, task_id=task_id)
    decision = c.request(task, now=now)
    assert decision.admitted
    return task


def kinds(violations):
    return {v.kind for v in violations}


class TestCleanState:
    def test_fresh_controller_is_clean(self):
        auditor = ControllerAuditor(controller())
        assert auditor.audit(0.0) == []
        assert auditor.audits_run == 1
        assert auditor.violations_found == 0

    def test_normal_lifecycle_is_clean(self):
        c = controller()
        auditor = ControllerAuditor(c)
        t = admit(c, [0.5, 0.5])
        assert auditor.audit(1.0, frontier={t.task_id: 0}, idle_stages=[1]) == []
        c.notify_subtask_departure(t.task_id, 0)
        assert auditor.audit(2.0, frontier={t.task_id: 1}, idle_stages=[]) == []
        c.notify_stage_idle(0)
        assert (
            auditor.audit(3.0, frontier={t.task_id: 1}, idle_stages=[0]) == []
        )

    def test_expiry_is_not_a_violation(self):
        c = controller()
        auditor = ControllerAuditor(c)
        admit(c, [0.5, 0.5], deadline=2.0)
        # Past the deadline: lazily-pending expiry must be applied, not
        # reported.
        assert auditor.audit(5.0, frontier={}, idle_stages=[0, 1]) == []
        assert c.admitted_count == 0


class TestInternalChecks:
    def test_sum_drift_detected(self):
        c = controller()
        admit(c, [0.5, 0.5])
        c.trackers[0]._sum += 0.25  # simulate bit-rot in the running sum
        violations = ControllerAuditor(c).audit(1.0)
        assert kinds(violations) == {"sum-drift"}
        assert violations[0].stage == 0

    def test_negative_utilization_detected(self):
        c = controller()
        c.trackers[1]._sum = -0.5
        violations = ControllerAuditor(c).audit(0.0)
        assert "negative-utilization" in kinds(violations)

    def test_orphan_contribution_detected(self):
        c = controller()
        c.trackers[0].add("ghost", 0.3, expiry=100.0)
        violations = ControllerAuditor(c).audit(0.0)
        assert kinds(violations) == {"orphan-contribution"}
        assert violations[0].task_id == "ghost"

    def test_expired_record_surviving_expire_detected(self):
        c = controller()
        t = admit(c, [0.2, 0.2], deadline=1.0)
        c._expiry_heap = []  # corrupt the heap so expire() can't find it
        violations = ControllerAuditor(c).audit(5.0)
        assert "expired-contribution" in kinds(violations)
        assert any(v.task_id == t.task_id for v in violations)


class TestGroundTruthChecks:
    def test_missed_departure_detected(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        # Ground truth: the task moved on to stage 1, but the departure
        # notification for stage 0 was lost.
        violations = ControllerAuditor(c).audit(
            1.0, frontier={t.task_id: 1}, idle_stages=[]
        )
        assert [(v.kind, v.stage, v.task_id) for v in violations] == [
            ("missed-departure", 0, t.task_id)
        ]

    def test_marked_departure_is_clean(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        c.notify_subtask_departure(t.task_id, 0)
        assert (
            ControllerAuditor(c).audit(1.0, frontier={t.task_id: 1}) == []
        )

    def test_missed_idle_reset_detected(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        c.notify_subtask_departure(t.task_id, 0)
        # Stage 0 went idle but the notification was lost: the departed
        # contribution is still counted.
        violations = ControllerAuditor(c).audit(
            1.0, frontier={t.task_id: 1}, idle_stages=[0]
        )
        assert kinds(violations) == {"missed-idle-reset"}
        assert violations[0].stage == 0

    def test_idle_check_skipped_when_reset_disabled(self):
        c = controller(reset_on_idle=False)
        t = admit(c, [0.5, 0.5])
        c.notify_subtask_departure(t.task_id, 0)
        assert (
            ControllerAuditor(c).audit(
                1.0, frontier={t.task_id: 1}, idle_stages=[0]
            )
            == []
        )

    def test_no_ground_truth_skips_cross_checks(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        # Lost departure, but no frontier provided: internal checks
        # cannot see it.
        assert ControllerAuditor(c).audit(1.0) == []
        assert ControllerAuditor(c).audit(1.0, frontier={t.task_id: 1}) != []


class TestResync:
    def test_resync_recovers_lost_departure(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        frontier = {t.task_id: 1}  # departed stage 0; notification lost
        auditor = ControllerAuditor(c)
        assert auditor.audit(1.0, frontier=frontier) != []
        report = c.resync(1.0, frontier)
        assert report.departures_marked == 1
        assert report.restored == 2
        assert auditor.audit(1.0, frontier=frontier, idle_stages=[]) == []
        # The recovered departed mark makes the next idle release work.
        released = c.notify_stage_idle(0)
        assert released == pytest.approx(0.05)

    def test_resync_drops_orphans(self):
        c = controller()
        c.trackers[0].add("ghost", 0.3, expiry=100.0)
        report = c.resync(0.0, frontier={})
        assert report.dropped_orphans == 1
        assert c.utilizations() == (0.0, 0.0)

    def test_resync_drops_expired_records(self):
        c = controller()
        admit(c, [0.2, 0.2], deadline=1.0)
        c._expiry_heap = []  # lose the expiry bookkeeping entirely
        report = c.resync(5.0, frontier={})
        assert report.dropped_expired == 1
        assert c.admitted_count == 0
        assert c.utilizations() == (0.0, 0.0)

    def test_resync_preserves_live_state(self):
        c = controller()
        t1 = admit(c, [0.4, 0.2])
        t2 = admit(c, [0.1, 0.3])
        before = c.utilizations()
        c.resync(1.0, frontier={t1.task_id: 0, t2.task_id: 0})
        assert c.utilizations() == pytest.approx(before)
        assert c.is_admitted(t1.task_id) and c.is_admitted(t2.task_id)
        # Expiry machinery still works after the heap rebuild.
        c.expire(11.0)
        assert c.admitted_count == 0

    def test_resync_preserves_reserved_baseline(self):
        c = controller(2, reserved=[0.3, 0.1])
        t = admit(c, [0.5, 0.5])
        c.resync(1.0, frontier={t.task_id: 0})
        assert c.utilizations() == pytest.approx((0.35, 0.15))

    def test_tasks_absent_from_frontier_are_fully_departed(self):
        c = controller()
        t = admit(c, [0.5, 0.5])
        report = c.resync(1.0, frontier={})
        assert report.departures_marked == 2
        assert c.notify_stage_idle(0) == pytest.approx(0.05)
        assert c.notify_stage_idle(1) == pytest.approx(0.05)


def _inject_sum_drift(c):
    admit(c, [0.5, 0.5])
    c.trackers[0]._sum += 0.25
    # frontier/idle None: the drifted sum must be caught by the
    # internal check alone, with no ground truth supplied.
    return 1.0, None, None


def _inject_negative_utilization(c):
    # A double removal drives the contribution — and hence the cached
    # sum, the exact accumulator, and the contribution re-summation —
    # negative *consistently*, so only the sign check fires, not
    # sum-drift.
    t = admit(c, [0.5, 0.5])
    tracker = c.trackers[1]
    _, token = tracker._contribs[t.task_id]
    tracker._contribs[t.task_id] = (-0.05, token)
    tracker._acc.subtract(0.05)
    tracker._acc.subtract(0.05)
    tracker._sum = tracker._acc.value()
    return 0.0, None, None


def _inject_orphan_contribution(c):
    c.trackers[0].add("ghost", 0.3, expiry=100.0)
    return 0.0, {}, []


def _inject_expired_contribution(c):
    admit(c, [0.2, 0.2], deadline=1.0)
    c._expiry_heap = []
    return 5.0, {}, []


def _admit_contended(c):
    """Two tasks sharing a resource: nonzero B_ij, beta, shrunken budget."""
    admit(c, [0.1, 0.1], deadline=1.0,
          resources=[ResourceSpec(0, "r", 0.2)], task_id=801)
    admit(c, [0.1, 0.1], deadline=5.0,
          resources=[ResourceSpec(0, "r", 0.4)], task_id=802)


def _inject_blocking_drift(c):
    _admit_contended(c)
    # A lost removal *inside the engine*: the admitted record and the
    # trackers are intact, but the blocking engine dropped the blocker
    # without recomputing — cached betas no longer match ground truth.
    c._blocking._tasks.pop(802)
    return 0.0, None, None


def _inject_budget_drift(c):
    _admit_contended(c)
    # The transactional refresh was "skipped": betas moved, budget not.
    c.budget = c.alpha
    return 0.0, None, None


def _inject_capacity_drift(c):
    admit(c, [0.2, 0.2], deadline=2.0)
    c.rescale_stage_capacity(0, 0.8)
    # A capacity mutated behind the controller's back: the charged
    # contributions no longer match the demand/capacity re-derivation.
    c._capacities[0] = 0.5
    return 0.0, None, None


def _inject_post_repair_feasibility(c):
    admit(c, [0.3, 0.3], deadline=1.0)
    # The rescale re-charges consistently (so capacity-drift stays
    # silent), but the sacrifice pass was "skipped": the admitted set
    # now violates the region.
    c.rescale_stage_capacity(0, 0.4)
    return 0.0, None, None


def _inject_missed_departure(c):
    t = admit(c, [0.5, 0.5])
    return 1.0, {t.task_id: 1}, []  # departed stage 0, mark lost


def _inject_missed_idle_reset(c):
    t = admit(c, [0.5, 0.5])
    c.notify_subtask_departure(t.task_id, 0)
    return 1.0, {t.task_id: 1}, [0]  # stage 0 idle, reset lost


_INJECTORS = {
    "sum-drift": _inject_sum_drift,
    "negative-utilization": _inject_negative_utilization,
    "orphan-contribution": _inject_orphan_contribution,
    "expired-contribution": _inject_expired_contribution,
    "blocking-drift": _inject_blocking_drift,
    "budget-drift": _inject_budget_drift,
    "capacity-drift": _inject_capacity_drift,
    "post-repair-feasibility": _inject_post_repair_feasibility,
    "missed-departure": _inject_missed_departure,
    "missed-idle-reset": _inject_missed_idle_reset,
}

#: Kinds that only exist on a locking controller.
_LOCKING_KINDS = ("blocking-drift", "budget-drift")


def _controller_for(kind):
    return controller(locking=True) if kind in _LOCKING_KINDS else controller()


def _clean_twin(kind, c):
    """Drive the same shape of state as the injector, without the fault."""
    if kind in _LOCKING_KINDS:
        _admit_contended(c)
        return 0.0, None, None
    if kind in ("sum-drift", "negative-utilization", "missed-departure"):
        t = admit(c, [0.5, 0.5])
        if kind == "missed-departure":
            c.notify_subtask_departure(t.task_id, 0)
            return 1.0, {t.task_id: 1}, []
        return 1.0, {t.task_id: 0}, []
    if kind == "orphan-contribution":
        admit(c, [0.3, 0.3])
        return 0.0, None, None
    if kind == "capacity-drift":
        admit(c, [0.2, 0.2], deadline=2.0)
        c.rescale_stage_capacity(0, 0.5)  # authoritative: charges follow
        return 0.0, None, None
    if kind == "post-repair-feasibility":
        admit(c, [0.3, 0.3], deadline=1.0)
        c.rescale_stage_capacity(0, 0.4)
        c.repair_region()  # the sacrifice pass ran
        return 0.0, None, None
    if kind == "expired-contribution":
        admit(c, [0.2, 0.2], deadline=1.0)  # heap intact: expire() works
        return 5.0, {}, []
    assert kind == "missed-idle-reset"
    t = admit(c, [0.5, 0.5])
    c.notify_subtask_departure(t.task_id, 0)
    c.notify_stage_idle(0)  # the notification was NOT lost
    return 1.0, {t.task_id: 1}, [0]


class TestAuditMatrix:
    """Every audit kind, detected in isolation and silent on the clean twin."""

    @pytest.mark.parametrize("kind", AUDIT_KINDS)
    def test_injected_fault_reports_exactly_its_kind(self, kind):
        c = _controller_for(kind)
        now, frontier, idle_stages = _INJECTORS[kind](c)
        violations = ControllerAuditor(c).audit(
            now, frontier=frontier, idle_stages=idle_stages
        )
        assert kinds(violations) == {kind}

    @pytest.mark.parametrize("kind", AUDIT_KINDS)
    def test_clean_twin_is_silent(self, kind):
        c = _controller_for(kind)
        now, frontier, idle_stages = _clean_twin(kind, c)
        assert (
            ControllerAuditor(c).audit(
                now, frontier=frontier, idle_stages=idle_stages
            )
            == []
        )

    def test_matrix_covers_the_catalog(self):
        assert set(_INJECTORS) == set(AUDIT_KINDS)


class TestDiffControllers:
    def test_identical_histories_produce_empty_diff(self):
        a, b = controller(), controller()
        for c in (a, b):
            t = admit(c, [0.4, 0.2], task_id=901)
            c.notify_subtask_departure(t.task_id, 0)
        assert diff_controllers(a, b) == []

    def test_config_difference_reported_first(self):
        a = controller(2)
        b = controller(3)
        diffs = diff_controllers(a, b)
        assert len(diffs) == 1 and "num_stages" in diffs[0]

    def test_missing_admitted_record_reported(self):
        a, b = controller(), controller()
        admit(a, [0.4, 0.2])
        diffs = diff_controllers(a, b)
        assert any("only in first" in d for d in diffs)

    def test_one_ulp_sum_difference_is_reported(self):
        import math

        a, b = controller(), controller()
        for c in (a, b):
            admit(c, [0.4, 0.2], task_id=902)
        b.trackers[0]._sum = math.nextafter(b.trackers[0]._sum, 1.0)
        diffs = diff_controllers(a, b)
        assert any("running sum" in d for d in diffs)

    def test_departed_mark_difference_is_reported(self):
        a, b = controller(), controller()
        ta = admit(a, [0.4, 0.2], task_id=903)
        admit(b, [0.4, 0.2], task_id=903)
        a.notify_subtask_departure(ta.task_id, 0)
        diffs = diff_controllers(a, b)
        assert any("departed" in d for d in diffs)

    def test_capacity_difference_is_reported(self):
        a, b = controller(), controller()
        a.set_stage_capacity(0, 0.5)
        diffs = diff_controllers(a, b)
        assert any("capacities" in d for d in diffs)


class TestViolationRendering:
    def test_render_mentions_kind_stage_and_task(self):
        v = InvariantViolation("missed-departure", 2, 17, "lost notification")
        text = v.render()
        assert "missed-departure" in text
        assert "stage 2" in text
        assert "17" in text

    def test_kinds_catalog_is_complete(self):
        assert set(AUDIT_KINDS) == {
            "sum-drift",
            "negative-utilization",
            "orphan-contribution",
            "expired-contribution",
            "blocking-drift",
            "budget-drift",
            "capacity-drift",
            "post-repair-feasibility",
            "missed-departure",
            "missed-idle-reset",
        }
