"""Protocol fuzz hardening: hostile frames must never wedge a gateway.

ISSUE-7 satellite: truncated frames, oversized lines, invalid UTF-8,
overflowing numbers, and pathologically nested JSON must all come back
as *structured* error responses — ``handle_line`` never raises for
request content, the asyncio server never drops a connection without
answering, and the gateway keeps serving afterwards.
"""

import json
import random
import socket

import pytest

from repro.serve.gateway import AdmissionGateway, GatewayServer
from repro.serve.journal import DurableGateway, Journal
from repro.serve.loadgen import _TcpGatewayThread
from repro.serve.protocol import (
    MAX_REQUEST_CHARS,
    MAX_REQUEST_DEPTH,
    ProtocolError,
    parse_request,
)

POLICY = {"num_stages": 2, "alpha": 0.9}

VALID_LINES = [
    '{"id":1,"op":"register","pipeline":"web","policy":{"num_stages":2,"alpha":0.9}}',
    '{"id":2,"rid":"r2","op":"admit","pipeline":"web","task":'
    '{"task_id":1,"arrival":0.1,"deadline":1.0,"costs":[0.05,0.03]}}',
    '{"id":3,"op":"expire","pipeline":"web","now":0.5}',
    '{"id":4,"op":"stats"}',
    '{"id":5,"op":"health"}',
]


def _error_of(gateway, line):
    """Dispatch one hostile line; assert a single structured error."""
    routed = gateway.handle_line(line)
    assert len(routed) == 1
    response = json.loads(routed[0][1])
    assert response["ok"] is False
    assert isinstance(response["error"], str)
    assert isinstance(response["detail"], str)
    return response["error"]


def _still_serves(gateway):
    """The gateway must keep answering after any hostile input."""
    routed = gateway.handle_line('{"id":99,"op":"health"}')
    assert json.loads(routed[0][1])["ok"] is True


class TestTruncatedFrames:
    def test_every_truncation_of_every_op_is_a_structured_error(self):
        gateway = AdmissionGateway()
        for line in VALID_LINES:
            for cut in range(1, len(line)):
                code = _error_of(gateway, line[:cut])
                assert code in ("bad-json", "bad-request", "unknown-op")
        _still_serves(gateway)

    def test_truncated_frame_never_reaches_the_journal(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(
            AdmissionGateway(), journal, tmp_path / "s.json"
        )
        try:
            _error_of(durable, VALID_LINES[1][:40])
            assert journal.last_seq == 0
        finally:
            durable.close()


class TestOversizedRequests:
    def test_line_over_limit_is_rejected_with_too_large(self):
        gateway = AdmissionGateway()
        assert _error_of(gateway, "x" * (MAX_REQUEST_CHARS + 1)) == "too-large"
        _still_serves(gateway)

    def test_limit_is_checked_before_parsing(self):
        # An oversized line of valid JSON must still bounce: the limit
        # protects the parser, not just the journal.
        huge = '{"op":"health","pad":"' + "p" * MAX_REQUEST_CHARS + '"}'
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(huge)
        assert excinfo.value.code == "too-large"


class TestNumericOverflow:
    def test_overflowing_literal_is_rejected(self):
        # json.loads('1e999') quietly returns inf without consulting
        # parse_constant; unchecked it would detonate the journal's
        # allow_nan=False encoder *after* acceptance.
        gateway = AdmissionGateway()
        line = '{"op":"expire","pipeline":"web","now":1e999}'
        assert _error_of(gateway, line) == "bad-json"
        _still_serves(gateway)

    def test_named_constants_are_rejected(self):
        gateway = AdmissionGateway()
        for literal in ("NaN", "Infinity", "-Infinity"):
            line = f'{{"op":"expire","pipeline":"web","now":{literal}}}'
            assert _error_of(gateway, line) == "bad-json"

    def test_nested_overflow_is_rejected(self):
        gateway = AdmissionGateway()
        line = (
            '{"op":"admit","pipeline":"web","task":'
            '{"task_id":1,"arrival":0.0,"deadline":1.0,"costs":[0.05,-1e999]}}'
        )
        assert _error_of(gateway, line) == "bad-json"

    def test_overflow_never_reaches_a_durable_journal(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(AdmissionGateway(), journal, tmp_path / "s.json")
        try:
            _error_of(
                durable, '{"op":"expire","pipeline":"web","now":1e999,"rid":"rX"}'
            )
            assert journal.last_seq == 0
        finally:
            durable.close()


class TestDeepNesting:
    def test_depth_just_over_the_limit_is_rejected(self):
        gateway = AdmissionGateway()
        depth = MAX_REQUEST_DEPTH + 1
        line = '{"op":"health","x":' + "[" * depth + "]" * depth + "}"
        assert _error_of(gateway, line) == "too-deep"
        _still_serves(gateway)

    def test_depth_at_the_limit_is_accepted(self):
        nested = "[" * (MAX_REQUEST_DEPTH - 1) + "]" * (MAX_REQUEST_DEPTH - 1)
        line = '{"op":"health","x":' + nested + "}"
        request = parse_request(line)
        assert request["op"] == "health"

    def test_parser_stack_overrun_is_a_structured_error(self):
        # Deep enough to blow CPython's recursive JSON parser before
        # the iterative depth check could ever run.
        gateway = AdmissionGateway()
        assert _error_of(gateway, "[" * 100_000) in ("bad-json", "too-deep")
        _still_serves(gateway)

    def test_deep_object_nesting_is_rejected(self):
        depth = MAX_REQUEST_DEPTH + 5
        line = '{"a":' * depth + "1" + "}" * depth
        gateway = AdmissionGateway()
        assert _error_of(gateway, line) == "too-deep"


class TestMojibake:
    def test_replacement_characters_are_a_structured_error(self):
        # The server decodes with errors="replace", so invalid UTF-8
        # reaches the core as U+FFFD runs — hostile but harmless.
        gateway = AdmissionGateway()
        mangled = b'\xff\xfe{"op":"health"}\xff'.decode("utf-8", errors="replace")
        assert _error_of(gateway, mangled) == "bad-json"
        _still_serves(gateway)

    def test_mid_string_mojibake_keeps_the_envelope_checks(self):
        gateway = AdmissionGateway()
        mangled = '{"op":"��"}'
        assert _error_of(gateway, mangled) == "unknown-op"


class TestSeededGarbage:
    def test_random_garbage_never_raises_and_never_wedges(self):
        gateway = AdmissionGateway()
        rng = random.Random(7)
        alphabet = '{}[]",:0123456789.eE+-abcdefghijklmnop \t�'
        for _ in range(500):
            line = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 120))
            )
            routed = gateway.handle_line(line)
            assert len(routed) == 1
            response = json.loads(routed[0][1])
            assert isinstance(response.get("ok"), bool)
            if not response["ok"]:
                assert isinstance(response["error"], str)
        _still_serves(gateway)

    def test_mutated_valid_lines_never_raise(self):
        gateway = AdmissionGateway()
        gateway.handle_line(VALID_LINES[0])
        rng = random.Random(11)
        for _ in range(300):
            line = list(rng.choice(VALID_LINES))
            for _ in range(rng.randrange(1, 4)):
                pos = rng.randrange(len(line))
                line[pos] = rng.choice('{}[]",:x9')
            routed = gateway.handle_line("".join(line))
            for _origin, response in routed:
                json.loads(response)
        _still_serves(gateway)


class TestOversizedLineOverTcp:
    def test_oversized_line_gets_structured_error_not_a_wedge(self):
        # The asyncio reader's default 64 KiB limit used to surface as
        # an unhandled LimitOverrunError that killed the connection
        # task silently.  Now the server answers with a structured
        # ``too-large`` error, closes *that* connection, and keeps
        # serving others.
        with _TcpGatewayThread() as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30)
            try:
                sock.sendall(b"x" * (GatewayServer.READER_LIMIT + 1024) + b"\n")
                reply = b""
                while b"\n" not in reply:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    reply += chunk
                response = json.loads(reply.split(b"\n")[0])
                assert response["ok"] is False
                assert response["error"] == "too-large"
            finally:
                sock.close()
            # The server survived: a fresh connection still works.
            probe = socket.create_connection((host, port), timeout=30)
            try:
                probe.sendall(b'{"id":1,"op":"health"}\n')
                buf = b""
                while b"\n" not in buf:
                    buf += probe.recv(65536)
                assert json.loads(buf.split(b"\n")[0])["ok"] is True
            finally:
                probe.close()

    def test_large_but_legal_request_passes_the_reader(self):
        # READER_LIMIT is 4x the protocol cap so legal near-cap lines
        # (snapshot restores) flow through the stream reader untouched.
        with _TcpGatewayThread() as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30)
            try:
                pad = "p" * (128 * 1024)  # far past the old 64 KiB limit
                line = f'{{"id":1,"op":"health","pad":"{pad}"}}\n'
                sock.sendall(line.encode("utf-8"))
                buf = b""
                while b"\n" not in buf:
                    buf += sock.recv(65536)
                assert json.loads(buf.split(b"\n")[0])["ok"] is True
            finally:
                sock.close()
