"""Protocol fuzz hardening: hostile frames must never wedge a gateway.

ISSUE-7 satellite: truncated frames, oversized lines, invalid UTF-8,
overflowing numbers, and pathologically nested JSON must all come back
as *structured* error responses — ``handle_line`` never raises for
request content, the asyncio server never drops a connection without
answering, and the gateway keeps serving afterwards.
"""

import json
import random
import socket

import pytest

from repro.serve.gateway import AdmissionGateway, GatewayServer
from repro.serve.journal import DurableGateway, Journal
from repro.serve.loadgen import _TcpGatewayThread
from repro.serve.protocol import (
    MAX_REQUEST_CHARS,
    MAX_REQUEST_DEPTH,
    NdjsonFramer,
    ProtocolError,
    parse_request,
)

POLICY = {"num_stages": 2, "alpha": 0.9}

VALID_LINES = [
    '{"id":1,"op":"register","pipeline":"web","policy":{"num_stages":2,"alpha":0.9}}',
    '{"id":2,"rid":"r2","op":"admit","pipeline":"web","task":'
    '{"task_id":1,"arrival":0.1,"deadline":1.0,"costs":[0.05,0.03]}}',
    '{"id":3,"op":"expire","pipeline":"web","now":0.5}',
    '{"id":4,"op":"stats"}',
    '{"id":5,"op":"health"}',
]


def _error_of(gateway, line):
    """Dispatch one hostile line; assert a single structured error."""
    routed = gateway.handle_line(line)
    assert len(routed) == 1
    response = json.loads(routed[0][1])
    assert response["ok"] is False
    assert isinstance(response["error"], str)
    assert isinstance(response["detail"], str)
    return response["error"]


def _still_serves(gateway):
    """The gateway must keep answering after any hostile input."""
    routed = gateway.handle_line('{"id":99,"op":"health"}')
    assert json.loads(routed[0][1])["ok"] is True


class TestTruncatedFrames:
    def test_every_truncation_of_every_op_is_a_structured_error(self):
        gateway = AdmissionGateway()
        for line in VALID_LINES:
            for cut in range(1, len(line)):
                code = _error_of(gateway, line[:cut])
                assert code in ("bad-json", "bad-request", "unknown-op")
        _still_serves(gateway)

    def test_truncated_frame_never_reaches_the_journal(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(
            AdmissionGateway(), journal, tmp_path / "s.json"
        )
        try:
            _error_of(durable, VALID_LINES[1][:40])
            assert journal.last_seq == 0
        finally:
            durable.close()


class TestOversizedRequests:
    def test_line_over_limit_is_rejected_with_too_large(self):
        gateway = AdmissionGateway()
        assert _error_of(gateway, "x" * (MAX_REQUEST_CHARS + 1)) == "too-large"
        _still_serves(gateway)

    def test_limit_is_checked_before_parsing(self):
        # An oversized line of valid JSON must still bounce: the limit
        # protects the parser, not just the journal.
        huge = '{"op":"health","pad":"' + "p" * MAX_REQUEST_CHARS + '"}'
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(huge)
        assert excinfo.value.code == "too-large"


class TestNumericOverflow:
    def test_overflowing_literal_is_rejected(self):
        # json.loads('1e999') quietly returns inf without consulting
        # parse_constant; unchecked it would detonate the journal's
        # allow_nan=False encoder *after* acceptance.
        gateway = AdmissionGateway()
        line = '{"op":"expire","pipeline":"web","now":1e999}'
        assert _error_of(gateway, line) == "bad-json"
        _still_serves(gateway)

    def test_named_constants_are_rejected(self):
        gateway = AdmissionGateway()
        for literal in ("NaN", "Infinity", "-Infinity"):
            line = f'{{"op":"expire","pipeline":"web","now":{literal}}}'
            assert _error_of(gateway, line) == "bad-json"

    def test_nested_overflow_is_rejected(self):
        gateway = AdmissionGateway()
        line = (
            '{"op":"admit","pipeline":"web","task":'
            '{"task_id":1,"arrival":0.0,"deadline":1.0,"costs":[0.05,-1e999]}}'
        )
        assert _error_of(gateway, line) == "bad-json"

    def test_overflow_never_reaches_a_durable_journal(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(AdmissionGateway(), journal, tmp_path / "s.json")
        try:
            _error_of(
                durable, '{"op":"expire","pipeline":"web","now":1e999,"rid":"rX"}'
            )
            assert journal.last_seq == 0
        finally:
            durable.close()


class TestDeepNesting:
    def test_depth_just_over_the_limit_is_rejected(self):
        gateway = AdmissionGateway()
        depth = MAX_REQUEST_DEPTH + 1
        line = '{"op":"health","x":' + "[" * depth + "]" * depth + "}"
        assert _error_of(gateway, line) == "too-deep"
        _still_serves(gateway)

    def test_depth_at_the_limit_is_accepted(self):
        nested = "[" * (MAX_REQUEST_DEPTH - 1) + "]" * (MAX_REQUEST_DEPTH - 1)
        line = '{"op":"health","x":' + nested + "}"
        request = parse_request(line)
        assert request["op"] == "health"

    def test_parser_stack_overrun_is_a_structured_error(self):
        # Deep enough to blow CPython's recursive JSON parser before
        # the iterative depth check could ever run.
        gateway = AdmissionGateway()
        assert _error_of(gateway, "[" * 100_000) in ("bad-json", "too-deep")
        _still_serves(gateway)

    def test_deep_object_nesting_is_rejected(self):
        depth = MAX_REQUEST_DEPTH + 5
        line = '{"a":' * depth + "1" + "}" * depth
        gateway = AdmissionGateway()
        assert _error_of(gateway, line) == "too-deep"


class TestMojibake:
    def test_replacement_characters_are_a_structured_error(self):
        # The server decodes with errors="replace", so invalid UTF-8
        # reaches the core as U+FFFD runs — hostile but harmless.
        gateway = AdmissionGateway()
        mangled = b'\xff\xfe{"op":"health"}\xff'.decode("utf-8", errors="replace")
        assert _error_of(gateway, mangled) == "bad-json"
        _still_serves(gateway)

    def test_mid_string_mojibake_keeps_the_envelope_checks(self):
        gateway = AdmissionGateway()
        mangled = '{"op":"��"}'
        assert _error_of(gateway, mangled) == "unknown-op"


class TestSeededGarbage:
    def test_random_garbage_never_raises_and_never_wedges(self):
        gateway = AdmissionGateway()
        rng = random.Random(7)
        alphabet = '{}[]",:0123456789.eE+-abcdefghijklmnop \t�'
        for _ in range(500):
            line = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 120))
            )
            routed = gateway.handle_line(line)
            assert len(routed) == 1
            response = json.loads(routed[0][1])
            assert isinstance(response.get("ok"), bool)
            if not response["ok"]:
                assert isinstance(response["error"], str)
        _still_serves(gateway)

    def test_mutated_valid_lines_never_raise(self):
        gateway = AdmissionGateway()
        gateway.handle_line(VALID_LINES[0])
        rng = random.Random(11)
        for _ in range(300):
            line = list(rng.choice(VALID_LINES))
            for _ in range(rng.randrange(1, 4)):
                pos = rng.randrange(len(line))
                line[pos] = rng.choice('{}[]",:x9')
            routed = gateway.handle_line("".join(line))
            for _origin, response in routed:
                json.loads(response)
        _still_serves(gateway)


class TestOversizedLineOverTcp:
    def test_oversized_line_gets_structured_error_not_a_wedge(self):
        # The asyncio reader's default 64 KiB limit used to surface as
        # an unhandled LimitOverrunError that killed the connection
        # task silently.  Now the server answers with a structured
        # ``too-large`` error, closes *that* connection, and keeps
        # serving others.
        with _TcpGatewayThread() as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30)
            try:
                sock.sendall(b"x" * (GatewayServer.READER_LIMIT + 1024) + b"\n")
                reply = b""
                while b"\n" not in reply:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    reply += chunk
                response = json.loads(reply.split(b"\n")[0])
                assert response["ok"] is False
                assert response["error"] == "too-large"
            finally:
                sock.close()
            # The server survived: a fresh connection still works.
            probe = socket.create_connection((host, port), timeout=30)
            try:
                probe.sendall(b'{"id":1,"op":"health"}\n')
                buf = b""
                while b"\n" not in buf:
                    buf += probe.recv(65536)
                assert json.loads(buf.split(b"\n")[0])["ok"] is True
            finally:
                probe.close()

    def test_torn_frames_over_tcp_reassemble(self):
        # One request dribbled in 1-byte sends must still produce one
        # well-formed response: the framer reassembles across reads.
        with _TcpGatewayThread() as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30)
            try:
                for byte in b'{"id":1,"op":"health"}\n':
                    sock.sendall(bytes([byte]))
                buf = b""
                while b"\n" not in buf:
                    buf += sock.recv(65536)
                assert json.loads(buf.split(b"\n")[0])["ok"] is True
            finally:
                sock.close()

    def test_large_but_legal_request_passes_the_reader(self):
        # READER_LIMIT is 4x the protocol cap so legal near-cap lines
        # (snapshot restores) flow through the stream reader untouched.
        with _TcpGatewayThread() as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30)
            try:
                pad = "p" * (128 * 1024)  # far past the old 64 KiB limit
                line = f'{{"id":1,"op":"health","pad":"{pad}"}}\n'
                sock.sendall(line.encode("utf-8"))
                buf = b""
                while b"\n" not in buf:
                    buf += sock.recv(65536)
                assert json.loads(buf.split(b"\n")[0])["ok"] is True
            finally:
                sock.close()


class TestNdjsonFramer:
    """ISSUE-10 satellite: the batched decoder's incremental framing."""

    PAYLOAD = b'{"op":"health"}\n\n{"op":"stats"}\ngarbage\n{"op":"health","id":2}\n'
    FRAMES = [b'{"op":"health"}', b"", b'{"op":"stats"}', b"garbage", b'{"op":"health","id":2}']

    def test_single_feed_matches_line_split(self):
        framer = NdjsonFramer(1024)
        assert framer.feed(self.PAYLOAD) == self.FRAMES
        assert not framer.overflowed
        assert framer.finish() is None

    def test_every_two_way_split_reassembles(self):
        for cut in range(len(self.PAYLOAD) + 1):
            framer = NdjsonFramer(1024)
            frames = framer.feed(self.PAYLOAD[:cut])
            frames += framer.feed(self.PAYLOAD[cut:])
            assert frames == self.FRAMES, f"diverged at split {cut}"
            assert framer.finish() is None

    def test_seeded_random_chunkings_reassemble(self):
        rng = random.Random(3)
        for _ in range(200):
            framer = NdjsonFramer(1024)
            frames = []
            pos = 0
            while pos < len(self.PAYLOAD):
                step = rng.randrange(1, 9)
                frames += framer.feed(self.PAYLOAD[pos : pos + step])
                pos += step
            assert frames == self.FRAMES
            assert framer.finish() is None

    def test_unterminated_tail_is_returned_by_finish(self):
        framer = NdjsonFramer(1024)
        assert framer.feed(b'{"op":"health"}\n{"op":"st') == [b'{"op":"health"}']
        assert framer.pending == len(b'{"op":"st')
        assert framer.finish() == b'{"op":"st'

    def test_oversized_line_overflows_but_earlier_frames_survive(self):
        framer = NdjsonFramer(16)
        frames = framer.feed(b"ok\n" + b"x" * 64 + b"\nnever\n")
        assert frames == [b"ok"]
        assert framer.overflowed
        assert framer.pending == 0
        assert framer.finish() is None
        # An overflowed framer stays dead: further feeds yield nothing.
        assert framer.feed(b"more\n") == []

    def test_oversized_tail_without_newline_overflows(self):
        framer = NdjsonFramer(16)
        assert framer.feed(b"y" * 17) == []
        assert framer.overflowed

    def test_tail_at_exactly_the_limit_is_not_an_overflow(self):
        framer = NdjsonFramer(16)
        assert framer.feed(b"z" * 16) == []
        assert not framer.overflowed
        assert framer.feed(b"\n") == [b"z" * 16]

    def test_interleaved_garbage_is_structured_errors_only(self, tmp_path):
        # Garbage frames between valid ones: every frame gets exactly
        # one structured response and none of the garbage is journaled.
        journal = Journal(tmp_path / "j.ndjson")
        durable = DurableGateway(AdmissionGateway(), journal, tmp_path / "s.json")
        try:
            stream = (
                VALID_LINES[0].encode("utf-8")
                + b"\n\x00\xff{{{\n"
                + VALID_LINES[4].encode("utf-8")
                + b"\n]]]]\n"
            )
            rng = random.Random(5)
            framer = NdjsonFramer(GatewayServer.READER_LIMIT)
            frames = []
            pos = 0
            while pos < len(stream):
                step = rng.randrange(1, 7)
                frames += framer.feed(stream[pos : pos + step])
                pos += step
            journaled_before = journal.last_seq
            statuses = []
            for frame in frames:
                line = frame.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                routed = durable.handle_line(line)
                assert len(routed) == 1
                statuses.append(json.loads(routed[0][1])["ok"])
            assert statuses == [True, False, True, False]
            # Only the register was journaled; garbage never was.
            assert journal.last_seq == journaled_before + 1
        finally:
            durable.close()


class TestFastParserByteEquivalence:
    """The orjson fast path must be byte-identical to the strict parser."""

    @staticmethod
    def _corpus():
        lines = list(VALID_LINES)
        # Truncations of every valid line: torn mid-token, mid-string.
        for line in VALID_LINES:
            lines.extend(line[:cut] for cut in range(1, len(line), 7))
        # Numeric edges: overflow literals, huge ints (64-bit cliff),
        # negative zero, subnormals, long mantissas.
        lines += [
            '{"op":"expire","pipeline":"web","now":1e999}',
            '{"op":"expire","pipeline":"web","now":-1e999}',
            '{"op":"expire","pipeline":"web","now":NaN}',
            '{"op":"expire","pipeline":"web","now":9223372036854775807}',
            '{"op":"expire","pipeline":"web","now":9223372036854775808}',
            '{"op":"expire","pipeline":"web","now":-0.0}',
            '{"op":"expire","pipeline":"web","now":5e-324}',
            '{"op":"expire","pipeline":"web","now":0.1000000000000000055511151231257827}',
            '{"op":"admit","pipeline":"web","task":{"task_id":1,"arrival":0.30000000000000004,"deadline":2.220446049250313e-16,"costs":[1e-308,0.1]}}',
            '{"op":"health","unicode":"\\u00e9\\ud83d\\ude00"}',
            '{"op":"health","x":' + "[" * MAX_REQUEST_DEPTH + "]" * MAX_REQUEST_DEPTH + "}",
            '{"op": "health"}',
            ' {"op":"health"} ',
            "[]",
            "{}",
            "null",
            '"health"',
        ]
        # Seeded garbage and float-heavy admits.
        rng = random.Random(13)
        alphabet = '{}[]",:0123456789.eE+-abcdefgh \t'
        for _ in range(300):
            lines.append(
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 90)))
            )
        for k in range(200):
            doc = {
                "id": k,
                "op": "admit",
                "pipeline": "web",
                "task": {
                    "task_id": k,
                    "arrival": rng.random() * 10 ** rng.randrange(-9, 9),
                    "deadline": rng.random() * 10 ** rng.randrange(-3, 3),
                    "costs": [
                        rng.random() * 10 ** rng.randrange(-6, 0)
                        for _ in range(2)
                    ],
                },
            }
            lines.append(json.dumps(doc, separators=(",", ":")))
        return lines

    def test_responses_bitwise_equal_with_orjson_disabled(self, monkeypatch):
        corpus = self._corpus()
        fast = AdmissionGateway()
        fast_responses = [
            resp for line in corpus for _o, resp in fast.handle_line(line)
        ]
        monkeypatch.setattr("repro.serve.protocol.orjson", None)
        strict = AdmissionGateway()
        strict_responses = [
            resp for line in corpus for _o, resp in strict.handle_line(line)
        ]
        assert fast_responses == strict_responses
