"""Differential suite for the vectorized ``admit_many`` fast path.

The vectorized batch loop (:meth:`PipelineAdmissionController.
_admit_many_fast`) hoists every batch-invariant read — the region
budget, tracker values, the per-stage ``f(min(U_j, 1))`` cache — out of
the per-task iteration, and inlines ``approx_ge`` /
``stage_delay_factor`` / ``approx_le`` into one pass per candidate.
The guarantee it must uphold (DESIGN.md §16): decisions, reported
region values, and the final controller state are *bitwise identical*
to deciding the same sequence one :meth:`request` call at a time.

This suite replays seeded op streams — bursts sharing a timestamp,
interleaved expiry, zero-cost stages, capacity rescales, locking
controllers — through both paths and asserts equality decision for
decision, plus ``registry_fingerprint`` equality for whole gateways
whose only difference is the fast path being forcibly disabled.
"""

import math
import random

import pytest

from repro.core.admission import (
    MeanDemand,
    PipelineAdmissionController,
    ScaledDemand,
)
from repro.core.task import make_task
from repro.locking import ResourceSpec
from repro.serve.gateway import AdmissionGateway
from repro.serve.protocol import encode, task_to_wire
from repro.serve.recovery import registry_fingerprint

NUM_STAGES = 3
BATCH_SIZES = [1, 2, 32, 257]


def _mixed_trace(seed, count, num_stages=NUM_STAGES, locking=False):
    """Seeded arrivals with bursts, tight deadlines, and zero-cost stages.

    Roughly a third of arrivals share the previous timestamp (a burst),
    deadlines span lapsing-within-the-trace to outliving it, and some
    stage costs are exactly 0.0 — the branchy cases the fast path must
    not cut corners on.  With ``locking`` every third task declares a
    critical section so ``beta_j`` moves with the admitted set.
    """
    rng = random.Random(seed)
    t = 0.0
    tasks = []
    for k in range(count):
        if rng.random() > 0.3:
            t = round(t + rng.expovariate(6.0), 9)
        deadline = rng.choice([0.05, 0.2, 1.0, 3.0]) * rng.uniform(0.5, 1.5)
        costs = [
            rng.expovariate(1.0 / 0.05) if rng.random() > 0.25 else 0.0
            for _ in range(num_stages)
        ]
        resources = ()
        if locking and k % 3 == 0:
            resources = (
                ResourceSpec(
                    stage=rng.randrange(num_stages),
                    resource=rng.choice(["db", "cache"]),
                    max_length=rng.uniform(0.0005, 0.01),
                ),
            )
        tasks.append(
            make_task(
                arrival_time=t,
                deadline=deadline,
                computation_times=costs,
                importance=rng.randrange(3),
                resources=resources,
                task_id=k,
            )
        )
    return tasks


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _assert_state_equal(a, b):
    assert a.utilizations() == b.utilizations()
    assert a.region_value() == b.region_value()
    assert a.admitted_snapshot() == b.admitted_snapshot()
    assert a.budget == b.budget
    assert a.betas == b.betas


def _assert_decisions_equal(batched, sequential):
    assert len(batched) == len(sequential)
    for got, want in zip(batched, sequential):
        assert got.admitted == want.admitted
        # Bitwise, not approximate: the fast path replays the exact
        # float expression order of the scalar path.
        assert got.region_value == want.region_value
        assert got.shed == want.shed


def _run_differential(tasks, batch_size, make_controller, rescales=()):
    """Oracle request() loop vs chunked admit_many on twin controllers.

    ``rescales`` is a list of ``(after_index, stage, capacity)``
    triples applied to both controllers at the same trace position
    (aligned to a batch boundary for the batched twin).
    """
    reference = make_controller()
    batched = make_controller()
    rescale_at = {after: (stage, cap) for after, stage, cap in rescales}

    sequential = []
    for k, task in enumerate(tasks):
        sequential.append(reference.request(task, task.arrival_time))
        if k + 1 in rescale_at:
            stage, cap = rescale_at[k + 1]
            reference.rescale_stage_capacity(stage, cap)

    decisions = []
    done = 0
    for chunk in _chunks(tasks, batch_size):
        decisions.extend(batched.admit_many(chunk))
        done += len(chunk)
        if done in rescale_at:
            stage, cap = rescale_at[done]
            batched.rescale_stage_capacity(stage, cap)

    _assert_decisions_equal(decisions, sequential)
    _assert_state_equal(reference, batched)
    return reference, batched


class TestScalarOracle:
    """admit_many == one request() per task, bitwise, for every shape."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("seed", [0, 7, 991])
    def test_plain_controller(self, seed, batch_size):
        tasks = _mixed_trace(seed, 400)
        _run_differential(tasks, batch_size, lambda: PipelineAdmissionController(NUM_STAGES))

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_alpha_and_static_betas(self, batch_size):
        tasks = _mixed_trace(13, 300)
        _run_differential(
            tasks,
            batch_size,
            lambda: PipelineAdmissionController(
                NUM_STAGES, alpha=0.8, betas=[0.05, 0.0, 0.1]
            ),
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize(
        "model",
        [
            lambda: ScaledDemand(1.3),
            lambda: MeanDemand([0.04] * NUM_STAGES),
        ],
    )
    def test_non_exact_demand_models(self, model, batch_size):
        tasks = _mixed_trace(29, 300)
        _run_differential(
            tasks,
            batch_size,
            lambda: PipelineAdmissionController(NUM_STAGES, demand_model=model()),
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_reserved_utilization(self, batch_size):
        tasks = _mixed_trace(43, 300)
        _run_differential(
            tasks,
            batch_size,
            lambda: PipelineAdmissionController(
                NUM_STAGES, reserved=[0.2, 0.0, 0.1]
            ),
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_degradation_rescaled_mid_stream(self, batch_size):
        """Capacity rescales between flushes re-derive the hoisted row."""
        tasks = _mixed_trace(57, 514)
        # The rescale must land on a chunk boundary so both twins apply
        # it at the same trace position.
        boundary = -(-128 // batch_size) * batch_size
        _run_differential(
            tasks,
            batch_size,
            lambda: PipelineAdmissionController(NUM_STAGES),
            rescales=[(boundary, 1, 0.5), (2 * boundary, 1, 0.9)],
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_locking_controller_takes_scalar_path(self, batch_size):
        """Locking falls back to the previewed-budget loop — still equal."""
        tasks = _mixed_trace(71, 300, locking=True)
        reference, batched = _run_differential(
            tasks,
            batch_size,
            lambda: PipelineAdmissionController(NUM_STAGES, locking=True),
        )
        assert reference.betas is not None

    def test_saturating_burst_shares_reject_region_value(self):
        """Consecutive rejections at an unchanged region report the same
        region value the scalar loop would recompute."""
        heavy = [
            make_task(
                arrival_time=1.0,
                deadline=0.4,
                computation_times=[0.3] * NUM_STAGES,
                task_id=k,
            )
            for k in range(64)
        ]
        _run_differential(heavy, 32, lambda: PipelineAdmissionController(NUM_STAGES))

    def test_underflowed_capacity_product_raises_like_scalar(self):
        """``capacity * deadline`` underflowing to 0.0 raises the same
        ZeroDivisionError from the same expression on both paths."""
        tiny = 5e-324
        controller = PipelineAdmissionController(NUM_STAGES)
        controller.set_stage_capacity(1, tiny)
        task = make_task(
            arrival_time=0.0,
            deadline=tiny,
            computation_times=[0.0] * NUM_STAGES,
            task_id=0,
        )
        with pytest.raises(ZeroDivisionError):
            controller.request(task, 0.0)
        batched = PipelineAdmissionController(NUM_STAGES)
        batched.set_stage_capacity(1, tiny)
        with pytest.raises(ZeroDivisionError):
            batched.admit_many([task])


class TestProbeCache:
    """Satellite 1: would_admit shares the derivation with request()."""

    def test_probe_then_request_derives_once(self, monkeypatch):
        calls = []
        original = PipelineAdmissionController._candidate_budget

        def counting(self, task):
            calls.append(task.task_id)
            return original(self, task)

        monkeypatch.setattr(
            PipelineAdmissionController, "_candidate_budget", counting
        )
        controller = PipelineAdmissionController(NUM_STAGES, locking=True)
        tasks = _mixed_trace(5, 40, locking=True)
        for task in tasks:
            before = len(calls)
            probe = controller.would_admit(task, task.arrival_time)
            decision = controller.request(task, task.arrival_time)
            assert probe == decision.admitted
            # The probe's derivation is reused by request(): exactly one
            # blocking preview per (probe, request) pair.
            assert len(calls) == before + 1

    def test_probe_does_not_perturb_decisions(self):
        """Bitwise pin: interleaving probes changes nothing."""
        tasks = _mixed_trace(11, 200, locking=True)
        plain = PipelineAdmissionController(NUM_STAGES, locking=True)
        probed = PipelineAdmissionController(NUM_STAGES, locking=True)
        for task in tasks:
            want = plain.request(task, task.arrival_time)
            probed.would_admit(task, task.arrival_time)
            got = probed.request(task, task.arrival_time)
            assert got.admitted == want.admitted
            assert got.region_value == want.region_value
        _assert_state_equal(plain, probed)

    def test_probe_cache_invalidated_by_capacity_change(self):
        """A rescale between probe and request must re-derive."""
        controller = PipelineAdmissionController(NUM_STAGES)
        task = make_task(
            arrival_time=0.0,
            deadline=1.0,
            computation_times=[0.2] * NUM_STAGES,
            task_id=0,
        )
        assert controller.would_admit(task, 0.0)
        controller.set_stage_capacity(0, 0.25)
        # 0.2 / (0.25 * 1.0) = 0.8 -> f(0.8) = 2.4 > 1: must be refused.
        assert not controller.request(task, 0.0).admitted

    def test_probe_cache_invalidated_by_admissions(self):
        """The epoch only covers blocking/capacity state; installs are
        covered by identity — a *different* task re-derives."""
        controller = PipelineAdmissionController(NUM_STAGES, locking=True)
        tasks = _mixed_trace(17, 20, locking=True)
        reference = PipelineAdmissionController(NUM_STAGES, locking=True)
        for task in tasks:
            controller.would_admit(task, task.arrival_time)
        for task in tasks:
            got = controller.request(task, task.arrival_time)
            want = reference.request(task, task.arrival_time)
            assert (got.admitted, got.region_value) == (
                want.admitted,
                want.region_value,
            )


class TestGatewayFingerprint:
    """Whole-gateway differential: fast path vs forcibly-scalar path."""

    @staticmethod
    def _drive(gateway, tasks, batch):
        lines = []
        lines.append(
            encode(
                {
                    "op": "register",
                    "pipeline": "web",
                    "policy": {"num_stages": NUM_STAGES, "max_batch": batch},
                    "id": 0,
                }
            )
        )
        for k, task in enumerate(tasks):
            lines.append(
                encode(
                    {
                        "op": "admit",
                        "pipeline": "web",
                        "task": task_to_wire(task),
                        "id": k + 1,
                    }
                )
            )
        responses = []
        for line in lines:
            responses.extend(resp for _origin, resp in gateway.handle_line(line))
        responses.extend(resp for _origin, resp in gateway.drain())
        return responses

    @pytest.mark.parametrize("batch", [1, 2, 32])
    def test_fingerprint_and_bytes_equal_forced_scalar(self, monkeypatch, batch):
        tasks = _mixed_trace(3, 300)
        fast = AdmissionGateway()
        fast_responses = self._drive(fast, tasks, batch)

        monkeypatch.setattr(
            PipelineAdmissionController,
            "_admit_many_fast",
            PipelineAdmissionController._admit_many_scalar,
        )
        scalar = AdmissionGateway()
        scalar_responses = self._drive(scalar, tasks, batch)

        assert fast_responses == scalar_responses
        assert registry_fingerprint(fast) == registry_fingerprint(scalar)

    def test_fingerprint_equal_with_rescale_mid_stream(self, monkeypatch):
        """A set_capacity barrier between flushes keeps the twins equal."""
        tasks = _mixed_trace(23, 200)
        rescale = encode(
            {
                "op": "set_capacity",
                "pipeline": "web",
                "stage": 1,
                "capacity": 0.6,
                "id": 9999,
            }
        )

        def drive(gateway):
            responses = self._drive(gateway, tasks[:100], 32)
            responses.extend(resp for _o, resp in gateway.handle_line(rescale))
            for k, task in enumerate(tasks[100:]):
                line = encode(
                    {
                        "op": "admit",
                        "pipeline": "web",
                        "task": task_to_wire(task),
                        "id": 10000 + k,
                    }
                )
                responses.extend(resp for _o, resp in gateway.handle_line(line))
            responses.extend(resp for _o, resp in gateway.drain())
            return responses

        fast = AdmissionGateway()
        fast_responses = drive(fast)
        monkeypatch.setattr(
            PipelineAdmissionController,
            "_admit_many_fast",
            PipelineAdmissionController._admit_many_scalar,
        )
        scalar = AdmissionGateway()
        scalar_responses = drive(scalar)
        assert fast_responses == scalar_responses
        assert registry_fingerprint(fast) == registry_fingerprint(scalar)

    def test_locking_pipeline_fingerprint_stable(self):
        """A locking pipeline takes the scalar loop by construction; the
        batched gateway still fingerprints equal to an unbatched one
        fed the same arrivals (batching changes when, never what)."""
        tasks = _mixed_trace(31, 150, locking=True)

        def drive(gateway, batch):
            lines = [
                encode(
                    {
                        "op": "register",
                        "pipeline": "web",
                        "policy": {
                            "num_stages": NUM_STAGES,
                            "locking": True,
                            "max_batch": batch,
                        },
                        "id": 0,
                    }
                )
            ]
            lines.extend(
                encode(
                    {
                        "op": "admit",
                        "pipeline": "web",
                        "task": task_to_wire(task),
                        "id": k + 1,
                    }
                )
                for k, task in enumerate(tasks)
            )
            responses = []
            for line in lines:
                responses.extend(resp for _o, resp in gateway.handle_line(line))
            responses.extend(resp for _o, resp in gateway.drain())
            return responses

        a = AdmissionGateway()
        b = AdmissionGateway()
        responses_a = drive(a, 32)
        responses_b = drive(b, 32)
        assert responses_a == responses_b
        assert registry_fingerprint(a) == registry_fingerprint(b)
