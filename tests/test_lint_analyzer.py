"""Whole-program analyzer: call graph, taint, ASY/DET1xx/EXS rules,
baseline ratchet, SARIF output, and the unused-suppression audit."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import analyze_paths
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.graph import FILE_TYPE, SET_TYPE, ProjectContext, module_name_for
from repro.lint.sarif import render_sarif, to_sarif


def write_pkg(root: Path, files: dict) -> Path:
    """Materialize ``{relpath: source}`` under ``root/proj``."""
    base = root / "proj"
    for rel, source in files.items():
        path = base / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return base


def build_project(base: Path) -> ProjectContext:
    files = []
    for path in sorted(base.rglob("*.py")):
        files.append((path, FileContext(str(path), path.read_text())))
    return ProjectContext(files)


# ----------------------------------------------------------------------
# Symbol table / call graph
# ----------------------------------------------------------------------


class TestCallGraph:
    def test_module_names_follow_packages(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "def f():\n    pass\n",
                "loose.py": "def g():\n    pass\n",
            },
        )
        assert module_name_for(base / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
        assert module_name_for(base / "loose.py") == "loose"

    def test_direct_call_edge(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def helper():\n    pass\n\ndef caller():\n    helper()\n",
            },
        )
        project = build_project(base)
        caller = project.functions["pkg.a.caller"]
        targets = [t for site in caller.calls for t in site.targets]
        assert targets == ["pkg.a.helper"]

    def test_cross_module_import_edge(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def enc(x):\n    return x\n",
                "pkg/b.py": "from .util import enc\n\ndef go():\n    return enc(1)\n",
            },
        )
        project = build_project(base)
        go = project.functions["pkg.b.go"]
        targets = [t for site in go.calls for t in site.targets]
        assert targets == ["pkg.util.enc"]

    def test_method_resolved_via_annotated_attribute(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/core.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        pass\n"
                ),
                "pkg/wrap.py": (
                    "from .core import Engine\n\n"
                    "class Wrapper:\n"
                    "    def __init__(self, engine: Engine):\n"
                    "        self.engine = engine\n"
                    "    def go(self):\n"
                    "        self.engine.run()\n"
                ),
            },
        )
        project = build_project(base)
        wrapper = project.classes["pkg.wrap.Wrapper"]
        assert wrapper.attr_types["engine"] == "pkg.core.Engine"
        go = project.functions["pkg.wrap.Wrapper.go"]
        targets = [t for site in go.calls for t in site.targets]
        assert targets == ["pkg.core.Engine.run"]

    def test_open_result_gets_file_pseudo_type(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/j.py": (
                    "class J:\n"
                    "    def __init__(self, p):\n"
                    "        self._fh = open(p)\n"
                    "    def put(self, x):\n"
                    "        self._fh.write(x)\n"
                ),
            },
        )
        project = build_project(base)
        assert project.classes["pkg.j.J"].attr_types["_fh"] == FILE_TYPE
        put = project.functions["pkg.j.J.put"]
        assert [site.external for site in put.calls] == [f"{FILE_TYPE}.write"]

    def test_set_annotation_gets_set_pseudo_type(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/s.py": "def f(items: set):\n    return items\n",
            },
        )
        project = build_project(base)
        func = project.functions["pkg.s.f"]
        import ast

        name = ast.parse("items", mode="eval").body
        assert project.expr_type(func, name) == SET_TYPE

    def test_protocol_receiver_fans_out_to_implementers(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/proto.py": (
                    "from typing import Protocol\n\n"
                    "class CoreLike(Protocol):\n"
                    "    def handle(self, line: str) -> str: ...\n\n"
                    "class Fast:\n"
                    "    def handle(self, line: str) -> str:\n"
                    "        return line\n\n"
                    "class Slow:\n"
                    "    def handle(self, line: str) -> str:\n"
                    "        return line.strip()\n"
                ),
                "pkg/srv.py": (
                    "from .proto import CoreLike\n\n"
                    "class Server:\n"
                    "    def __init__(self, core: CoreLike):\n"
                    "        self.core = core\n"
                    "    def dispatch(self, line):\n"
                    "        return self.core.handle(line)\n"
                ),
            },
        )
        project = build_project(base)
        dispatch = project.functions["pkg.srv.Server.dispatch"]
        targets = sorted(t for site in dispatch.calls for t in site.targets)
        assert targets == ["pkg.proto.Fast.handle", "pkg.proto.Slow.handle"]


# ----------------------------------------------------------------------
# ASY001 — blocking reachability
# ----------------------------------------------------------------------

#: A miniature of the pre-fix serve layer: async handler -> sync
#: wrapper -> journal append that writes and fsyncs an open file.
PREFIX_JOURNAL_PKG = {
    "pkg/__init__.py": "",
    "pkg/journal.py": (
        """
        import os


        class Journal:
            def __init__(self, path):
                self._file = open(path, "a")

            def append(self, record):
                self._file.write(record)
                self._file.flush()
                os.fsync(self._file.fileno())


        class Durable:
            def __init__(self, journal: Journal):
                self.journal = journal

            def handle(self, line):
                self.journal.append(line)
                return line
        """
    ),
    "pkg/server.py": (
        """
        from .journal import Durable


        class Server:
            def __init__(self, core: Durable):
                self.core = core

            async def serve(self, line):
                return self.core.handle(line)
        """
    ),
}


class TestASY001:
    def test_flags_pre_fix_journal_chain(self, tmp_path):
        """The known true positive this PR fixed, pinned as a fixture:
        an async handler reaching file write/fsync through two sync
        frames must be reported with the full chain."""
        base = write_pkg(tmp_path, PREFIX_JOURNAL_PKG)
        findings = [
            f for f in analyze_paths([str(base)], select=["ASY001"])
        ]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "ASY001"
        assert finding.path.endswith("server.py")
        assert "Server.serve -> Durable.handle -> Journal.append" in finding.message
        assert "run_in_executor" in finding.message

    def test_executor_hop_breaks_the_chain(self, tmp_path):
        files = dict(PREFIX_JOURNAL_PKG)
        files["pkg/server.py"] = textwrap.dedent(
            """
            import asyncio

            from .journal import Durable


            class Server:
                def __init__(self, core: Durable):
                    self.core = core

                async def serve(self, line):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(None, self.core.handle, line)
            """
        )
        base = write_pkg(tmp_path, files)
        assert analyze_paths([str(base)], select=["ASY001"]) == []

    def test_direct_blocking_call_in_async(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "import time\n\n"
                    "async def pause():\n"
                    "    time.sleep(1)\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["ASY001"])
        assert [f.rule for f in findings] == ["ASY001"]
        assert "time.sleep" in findings[0].message

    def test_async_callee_is_not_a_blocking_edge(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "import time\n\n"
                    "async def inner():\n"
                    "    time.sleep(1)\n\n"
                    "async def outer():\n"
                    "    await inner()\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["ASY001"])
        # inner is flagged at its own call site; outer's await of a
        # coroutine suspends rather than blocks and is not re-flagged.
        assert [f.line for f in findings] == [4]

    def test_sync_only_project_is_clean(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "import time\n\n"
                    "def pause():\n"
                    "    time.sleep(1)\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["ASY001"]) == []


# ----------------------------------------------------------------------
# ASY002 — mutation straddling an await
# ----------------------------------------------------------------------


class TestASY002:
    def test_flags_mutation_on_both_sides_of_await(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "class C:\n"
                    "    async def go(self):\n"
                    "        self.items.append(1)\n"
                    "        await self.wait()\n"
                    "        self.items.pop()\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["ASY002"])
        assert len(findings) == 1
        assert "self.items" in findings[0].message
        assert findings[0].line == 5  # anchored at the second mutation

    def test_mutations_on_one_side_are_fine(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "class C:\n"
                    "    async def go(self):\n"
                    "        self.items.append(1)\n"
                    "        self.items.pop()\n"
                    "        await self.wait()\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["ASY002"]) == []

    def test_distinct_attributes_do_not_pair(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "class C:\n"
                    "    async def go(self):\n"
                    "        self.a = 1\n"
                    "        await self.wait()\n"
                    "        self.b = 2\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["ASY002"]) == []


# ----------------------------------------------------------------------
# DET101 / DET102 — determinism taint
# ----------------------------------------------------------------------

ENCODE_MODULE = {
    "pkg/__init__.py": "",
    "pkg/proto.py": (
        "import json\n\n"
        "def encode(doc):\n"
        "    return json.dumps(doc, sort_keys=True)\n"
    ),
}


class TestDET101:
    def test_wall_clock_into_project_encode(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "import time\n\n"
            "from .proto import encode\n\n"
            "def stamp():\n"
            "    now = time.time()\n"
            "    doc = {'t': now}\n"
            "    return encode(doc)\n"
        )
        base = write_pkg(tmp_path, files)
        findings = analyze_paths([str(base)], select=["DET101"])
        assert len(findings) == 1
        assert "time.time()" in findings[0].message
        assert "`encode`" in findings[0].message

    def test_str_encode_method_is_not_a_sink(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "import time\n\n"
            "def raw():\n"
            "    now = time.time()\n"
            "    return str(now).encode('utf-8')\n"
        )
        base = write_pkg(tmp_path, files)
        assert analyze_paths([str(base)], select=["DET101"]) == []

    def test_untainted_argument_is_clean(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "from .proto import encode\n\n"
            "def fixed():\n"
            "    return encode({'t': 1})\n"
        )
        base = write_pkg(tmp_path, files)
        assert analyze_paths([str(base)], select=["DET101"]) == []

    def test_journal_append_attribute_is_a_sink(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/j.py": (
                    "import os\n\n"
                    "class Journal:\n"
                    "    def append(self, rec):\n"
                    "        return rec\n\n"
                    "class Wrap:\n"
                    "    def __init__(self, journal: Journal):\n"
                    "        self.journal = journal\n"
                    "    def log(self):\n"
                    "        nonce = os.urandom(8)\n"
                    "        self.journal.append({'n': nonce})\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["DET101"])
        assert len(findings) == 1
        assert "os.urandom" in findings[0].message


class TestDET102:
    def test_set_iteration_into_encode(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "from .proto import encode\n\n"
            "def dump(items: set):\n"
            "    doc = [i for i in items]\n"
            "    return encode(doc)\n"
        )
        base = write_pkg(tmp_path, files)
        findings = analyze_paths([str(base)], select=["DET102"])
        assert len(findings) == 1
        assert "set iteration order" in findings[0].message

    def test_sorted_launders_order(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "from .proto import encode\n\n"
            "def dump(items: set):\n"
            "    doc = sorted(items)\n"
            "    return encode(doc)\n"
        )
        base = write_pkg(tmp_path, files)
        assert analyze_paths([str(base)], select=["DET102"]) == []

    def test_set_literal_source(self, tmp_path):
        files = dict(ENCODE_MODULE)
        files["pkg/uses.py"] = (
            "from .proto import encode\n\n"
            "def dump():\n"
            "    items = {1, 2, 3}\n"
            "    return encode(list(items))\n"
        )
        base = write_pkg(tmp_path, files)
        findings = analyze_paths([str(base)], select=["DET102"])
        assert len(findings) == 1


# ----------------------------------------------------------------------
# EXS001 — float accumulation bypassing ExactSum
# ----------------------------------------------------------------------


class TestEXS001:
    def test_flags_raw_float_accumulation(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/t.py": (
                    "class Tracker:\n"
                    "    def __init__(self):\n"
                    "        self.util_sum = 0.0\n"
                    "    def add(self, u):\n"
                    "        self.util_sum += u\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["EXS001"])
        assert len(findings) == 1
        assert "ExactSum" in findings[0].message
        assert findings[0].line == 5

    def test_integer_counters_are_fine(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/t.py": (
                    "class Tracker:\n"
                    "    def __init__(self):\n"
                    "        self.usage_events = 0\n"
                    "        self.errors = 0\n"
                    "    def bump(self):\n"
                    "        self.usage_events += 1\n"
                    "        self.errors += 1\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["EXS001"]) == []

    def test_non_accumulator_attributes_are_fine(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/t.py": (
                    "class Clock:\n"
                    "    def advance(self, dt):\n"
                    "        self.now += dt\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["EXS001"]) == []

    def test_flags_loop_local_beta_accumulation(self, tmp_path):
        """The original ``region_budget`` shape, pinned as a fixture: a
        module-level function looping ``total_beta += float(b)`` must be
        reported — the sum depends on iteration order."""
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/bounds.py": (
                    "def region_budget(alpha, betas):\n"
                    "    total_beta = 0.0\n"
                    "    for b in betas:\n"
                    "        total_beta += float(b)\n"
                    "    return alpha * (1.0 - total_beta)\n"
                ),
            },
        )
        findings = analyze_paths([str(base)], select=["EXS001"])
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "iteration order" in findings[0].message
        assert "total_beta" in findings[0].message

    def test_fsum_rewrite_is_clean(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/bounds.py": (
                    "import math\n\n"
                    "def region_budget(alpha, betas):\n"
                    "    total_beta = math.fsum(float(b) for b in betas)\n"
                    "    return alpha * (1.0 - total_beta)\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["EXS001"]) == []

    def test_one_shot_local_adjustment_outside_loop_is_fine(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/t.py": (
                    "def shave(beta_total, margin):\n"
                    "    beta_total -= margin\n"
                    "    return beta_total\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["EXS001"]) == []

    def test_loop_local_integer_counter_is_fine(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/t.py": (
                    "def count(items):\n"
                    "    usage_total = 0\n"
                    "    for _ in items:\n"
                    "        usage_total += 1\n"
                    "    return usage_total\n"
                ),
            },
        )
        assert analyze_paths([str(base)], select=["EXS001"]) == []

    def test_real_core_bounds_stays_clean(self):
        findings = analyze_paths(
            [str(REPO_SRC / "repro" / "core" / "bounds.py")], select=["EXS001"]
        )
        assert findings == [], "\n".join(f.render() for f in findings)


# ----------------------------------------------------------------------
# SUP001 — unused suppressions
# ----------------------------------------------------------------------


class TestUnusedSuppressions:
    def test_stale_noqa_is_flagged(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": "x = 1  # repro: noqa[RNG001] — nothing here needs this\n",
            },
        )
        findings = analyze_paths([str(base)])
        assert [f.rule for f in findings] == ["SUP001"]
        assert "RNG001" in findings[0].message

    def test_used_noqa_is_not_flagged(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": "def f(x=[]):  # repro: noqa[MUT001] — intentional shared default\n    return x\n",
            },
        )
        assert analyze_paths([str(base)]) == []

    def test_noqa_mention_in_docstring_is_ignored(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": '"""Docs about the # repro: noqa[RNG001] syntax."""\n',
            },
        )
        assert analyze_paths([str(base)]) == []

    def test_narrowed_runs_skip_the_audit(self, tmp_path):
        base = write_pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": "x = 1  # repro: noqa[RNG001] — stale\n",
            },
        )
        # A --select run cannot distinguish stale from not-executed.
        assert analyze_paths([str(base)], select=["RNG001"]) == []


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------


def _finding(path="pkg/m.py", line=3, rule="ASY001", message="blocking call"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestBaseline:
    def test_round_trip_absorbs_exactly_the_recorded_findings(self, tmp_path):
        a = _finding(line=3)
        b = _finding(line=9, rule="DET101", message="tainted encode")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [a, b])
        baseline = load_baseline(baseline_file)
        result = apply_baseline([a, b], baseline)
        assert result.new == []
        assert sorted(result.suppressed) == sorted([a, b])
        assert result.expired == {}

    def test_fingerprint_ignores_line_numbers(self):
        moved = _finding(line=40)
        assert fingerprint(_finding(line=3)) == fingerprint(moved)

    def test_fixed_finding_expires_its_entry(self, tmp_path):
        a, b = _finding(), _finding(rule="DET101", message="tainted encode")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [a, b])
        result = apply_baseline([a], load_baseline(baseline_file))
        assert result.new == []
        assert list(result.expired) == [fingerprint(b)]

    def test_regression_beyond_baselined_count_is_new(self, tmp_path):
        a = _finding()
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [a])
        twin = _finding(line=77)  # same fingerprint, second instance
        result = apply_baseline([a, twin], load_baseline(baseline_file))
        assert len(result.suppressed) == 1 and len(result.new) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------


class TestSarif:
    def test_matches_golden_file(self, tmp_path):
        findings = [
            _finding(path="pkg/server.py", line=12, rule="ASY001",
                     message="blocking call os.fsync() reachable from async serve"),
            _finding(path="pkg/proto.py", line=7, rule="DET101",
                     message="time.time() flows into encode"),
        ]
        golden = Path(__file__).parent / "data" / "lint_golden.sarif"
        assert render_sarif(findings) == golden.read_text(encoding="utf-8")

    def test_structure_and_determinism(self):
        findings = [_finding()]
        doc = to_sarif(findings)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        for expected in ("ASY001", "ASY002", "DET101", "DET102", "EXS001",
                         "SUP001", "SYN000"):
            assert expected in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "ASY001"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "pkg/m.py"
        assert loc["region"] == {"startLine": 3, "startColumn": 1}
        assert render_sarif(findings) == render_sarif(list(findings))

    def test_result_links_rule_index(self):
        doc = to_sarif([_finding()])
        run = doc["runs"][0]
        idx = run["results"][0]["ruleIndex"]
        assert run["tool"]["driver"]["rules"][idx]["id"] == "ASY001"


# ----------------------------------------------------------------------
# The whole engine over the real serve layer (regression pin)
# ----------------------------------------------------------------------

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


class TestServeLayerPin:
    def test_post_fix_serve_layer_has_no_async_findings(self):
        findings = analyze_paths(
            [str(REPO_SRC / "repro" / "serve")], select=["ASY001", "ASY002"]
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_sync_journal_path_still_resolves_in_graph(self):
        """The graph must keep seeing the blocking chain in the *sync*
        entry points — the fix moved the async path onto an executor,
        it did not lose the engine's visibility into Journal.append."""
        files = []
        for path in sorted((REPO_SRC / "repro" / "serve").rglob("*.py")):
            files.append((path, FileContext(str(path), path.read_text())))
        project = ProjectContext(files)
        append = project.functions["repro.serve.journal.Journal.append"]
        externals = {site.external for site in append.calls}
        assert f"{FILE_TYPE}.write" in externals
