"""Tests for the urgency-inversion parameter ``alpha`` (Section 2)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.alpha import (
    alpha_deadline_monotonic,
    alpha_for_policy,
    alpha_from_pairs,
    alpha_random_priority,
    urgency_inversion_alpha,
)


def brute_force_alpha(deadlines, priorities):
    """Reference O(n^2) implementation straight from the definition."""
    alpha = 1.0
    n = len(deadlines)
    for hi, lo in itertools.permutations(range(n), 2):
        if priorities[hi] >= priorities[lo]:
            alpha = min(alpha, deadlines[lo] / deadlines[hi])
    return alpha


class TestAlphaFromPairs:
    def test_empty(self):
        assert alpha_from_pairs([]) == 1.0

    def test_no_inversion(self):
        assert alpha_from_pairs([(1.0, 2.0), (2.0, 3.0)]) == 1.0

    def test_inversion(self):
        # A task with deadline 4 prioritized over one with deadline 1.
        assert alpha_from_pairs([(4.0, 1.0)]) == pytest.approx(0.25)

    def test_min_across_pairs(self):
        assert alpha_from_pairs([(2.0, 1.0), (10.0, 1.0)]) == pytest.approx(0.1)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            alpha_from_pairs([(0.0, 1.0)])


class TestDeadlineMonotonic:
    def test_always_one(self):
        assert alpha_deadline_monotonic([3.0, 1.0, 2.0]) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            alpha_deadline_monotonic([1.0, -1.0])

    def test_generic_computation_agrees(self):
        deadlines = [5.0, 1.0, 3.0, 2.0]
        # DM: higher priority = shorter deadline = larger priority number.
        priorities = [-d for d in deadlines]
        assert urgency_inversion_alpha(deadlines, priorities) == 1.0


class TestRandomPriority:
    def test_least_over_most(self):
        assert alpha_random_priority([1.0, 2.0, 4.0]) == pytest.approx(0.25)

    def test_single_task(self):
        assert alpha_random_priority([7.0]) == 1.0

    def test_empty(self):
        assert alpha_random_priority([]) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            alpha_random_priority([1.0, 0.0])


class TestGenericAlpha:
    def test_single_task(self):
        assert urgency_inversion_alpha([5.0], [1.0]) == 1.0

    def test_two_tasks_inverted(self):
        # Task 0 (D=10) has higher priority than task 1 (D=2).
        assert urgency_inversion_alpha([10.0, 2.0], [2.0, 1.0]) == pytest.approx(0.2)

    def test_two_tasks_consistent(self):
        assert urgency_inversion_alpha([2.0, 10.0], [2.0, 1.0]) == 1.0

    def test_equal_priorities_count_both_ways(self):
        # Same priority, deadlines 1 and 4: the pair inverts in one
        # direction regardless of labeling.
        assert urgency_inversion_alpha([1.0, 4.0], [1.0, 1.0]) == pytest.approx(0.25)

    def test_equal_priorities_equal_deadlines(self):
        assert urgency_inversion_alpha([3.0, 3.0], [1.0, 1.0]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            urgency_inversion_alpha([1.0], [1.0, 2.0])

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            urgency_inversion_alpha([0.0], [1.0])

    def test_worst_case_random_assignment(self):
        deadlines = [1.0, 2.0, 8.0]
        # Priorities exactly inverted: longest deadline highest priority.
        priorities = [1.0, 2.0, 3.0]
        assert urgency_inversion_alpha(deadlines, priorities) == pytest.approx(
            1.0 / 8.0
        )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=8),
        st.randoms(use_true_random=False),
    )
    def test_matches_brute_force(self, deadlines, rng):
        priorities = [rng.randint(0, 3) for _ in deadlines]
        expected = brute_force_alpha(deadlines, priorities)
        assert urgency_inversion_alpha(deadlines, priorities) == pytest.approx(
            expected
        )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=8)
    )
    def test_random_priority_is_worst_case(self, deadlines):
        # Any concrete priority assignment is at least as good as the
        # D_least / D_most worst case.
        worst = alpha_random_priority(deadlines)
        priorities = [(i * 7919) % 13 for i in range(len(deadlines))]
        assert urgency_inversion_alpha(deadlines, priorities) >= worst - 1e-12


class TestAlphaForPolicy:
    def test_callback(self):
        deadlines = [4.0, 1.0]
        alpha = alpha_for_policy(deadlines, priority_of=lambda i: i)
        # Task 1 (D=1) has the higher priority: no inversion.
        assert alpha == 1.0

    def test_callback_inverted(self):
        deadlines = [1.0, 4.0]
        alpha = alpha_for_policy(deadlines, priority_of=lambda i: i)
        assert alpha == pytest.approx(0.25)
