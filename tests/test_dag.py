"""Tests for task-graph delay algebra and Theorem 2 (Section 3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import stage_delay_factor
from repro.core.dag import (
    DelayExpression,
    TaskGraph,
    dag_region_value,
    is_dag_feasible,
    leaf,
    par,
    seq,
)


def fig3_expression():
    """The Figure-3 example: R1 -> (R2 | R3) -> R4."""
    return seq(leaf("R1"), par(leaf("R2"), leaf("R3")), leaf("R4"))


def fig3_graph():
    return TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )


class TestDelayExpression:
    def test_leaf_evaluates_to_delay(self):
        assert leaf("R").evaluate({"R": 3.0}) == 3.0

    def test_seq_sums(self):
        e = seq(leaf("A"), leaf("B"))
        assert e.evaluate({"A": 1.0, "B": 2.0}) == 3.0

    def test_par_maxes(self):
        e = par(leaf("A"), leaf("B"))
        assert e.evaluate({"A": 1.0, "B": 2.0}) == 2.0

    def test_fig3_end_to_end_delay(self):
        # L1 + max(L2, L3) + L4 (Section 3.3's example).
        e = fig3_expression()
        delays = {"R1": 1.0, "R2": 5.0, "R3": 2.0, "R4": 3.0}
        assert e.evaluate(delays) == 9.0

    def test_missing_resource_raises(self):
        with pytest.raises(KeyError):
            leaf("R").evaluate({})

    def test_resources_in_order(self):
        assert fig3_expression().resources() == ("R1", "R2", "R3", "R4")

    def test_duplicate_resource_listed_once(self):
        e = seq(leaf("A"), leaf("B"), leaf("A"))
        assert e.resources() == ("A", "B")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            DelayExpression(kind="loop")

    def test_leaf_requires_resource(self):
        with pytest.raises(ValueError):
            DelayExpression(kind="leaf")

    def test_seq_requires_children(self):
        with pytest.raises(ValueError):
            seq()

    def test_region_value_eq16(self):
        # Eq. 16: f(U1) + max(f(U2), f(U3)) + f(U4).
        e = fig3_expression()
        utils = {"R1": 0.2, "R2": 0.3, "R3": 0.1, "R4": 0.2}
        expected = (
            stage_delay_factor(0.2)
            + max(stage_delay_factor(0.3), stage_delay_factor(0.1))
            + stage_delay_factor(0.2)
        )
        assert e.region_value(utils) == pytest.approx(expected)

    def test_feasible_within_alpha(self):
        e = fig3_expression()
        utils = {"R1": 0.2, "R2": 0.3, "R3": 0.1, "R4": 0.2}
        assert e.is_feasible(utils)
        assert not e.is_feasible(utils, alpha=0.5)

    def test_betas_added_per_resource(self):
        e = seq(leaf("A"), leaf("B"))
        utils = {"A": 0.1, "B": 0.1}
        base = e.region_value(utils)
        with_beta = e.region_value(utils, betas={"A": 0.05})
        assert with_beta == pytest.approx(base + 0.05)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            fig3_expression().is_feasible({"R1": 0.1, "R2": 0.1, "R3": 0.1, "R4": 0.1}, alpha=0.0)


class TestTaskGraph:
    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(resource_of={1: "A", 2: "B"}, edges=[(1, 2), (2, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(resource_of={1: "A"}, edges=[(1, 1)])

    def test_unknown_subtask_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(resource_of={1: "A"}, edges=[(1, 2)])

    def test_critical_path_chain(self):
        g = TaskGraph(resource_of={1: "A", 2: "B"}, edges=[(1, 2)])
        assert g.critical_path_delay({1: 1.0, 2: 2.0}) == 3.0

    def test_critical_path_fig3(self):
        g = fig3_graph()
        assert g.critical_path_delay({1: 1.0, 2: 5.0, 3: 2.0, 4: 3.0}) == 9.0
        assert g.critical_path({1: 1.0, 2: 5.0, 3: 2.0, 4: 3.0}) == [1, 2, 4]

    def test_critical_path_disconnected(self):
        g = TaskGraph(resource_of={1: "A", 2: "B"}, edges=[])
        assert g.critical_path_delay({1: 4.0, 2: 7.0}) == 7.0

    def test_empty_graph(self):
        g = TaskGraph(resource_of={}, edges=[])
        assert g.critical_path_delay({}) == 0.0
        assert g.critical_path({}) == []

    def test_graph_matches_expression_on_fig3(self):
        g = fig3_graph()
        e = fig3_expression()
        utils = {"R1": 0.25, "R2": 0.15, "R3": 0.3, "R4": 0.05}
        assert g.region_value(utils) == pytest.approx(e.region_value(utils))

    def test_shared_resource_uses_one_dimension(self):
        # Subtasks 1 and 4 on the same processor (the paper's remark):
        # the region expression stays the same with U4 = U1.
        g = TaskGraph(
            resource_of={1: "P1", 2: "R2", 3: "R3", 4: "P1"},
            edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
        )
        utils = {"P1": 0.2, "R2": 0.3, "R3": 0.1}
        expected = (
            stage_delay_factor(0.2)
            + max(stage_delay_factor(0.3), stage_delay_factor(0.1))
            + stage_delay_factor(0.2)
        )
        assert g.region_value(utils) == pytest.approx(expected)

    def test_resources_deduplicated(self):
        g = TaskGraph(resource_of={1: "A", 2: "A", 3: "B"}, edges=[(1, 2)])
        assert g.resources() == ("A", "B")

    def test_functional_aliases(self):
        g = fig3_graph()
        utils = {"R1": 0.1, "R2": 0.1, "R3": 0.1, "R4": 0.1}
        assert dag_region_value(g, utils) == pytest.approx(g.region_value(utils))
        assert is_dag_feasible(g, utils)

    def test_chain_conversion(self):
        g = TaskGraph(resource_of={1: "A", 2: "B", 3: "C"}, edges=[(1, 2), (2, 3)])
        e = g.to_delay_expression()
        utils = {"A": 0.2, "B": 0.3, "C": 0.1}
        assert e.region_value(utils) == pytest.approx(g.region_value(utils))

    def test_non_chain_conversion_rejected(self):
        with pytest.raises(ValueError):
            fig3_graph().to_delay_expression()

    def test_empty_chain_conversion_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph(resource_of={}, edges=[]).to_delay_expression()

    def test_pipeline_special_case_matches_sum(self):
        # A chain graph's region value must equal the pipeline formula.
        g = TaskGraph(
            resource_of={i: f"S{i}" for i in range(4)},
            edges=[(i, i + 1) for i in range(3)],
        )
        utils = {f"S{i}": 0.1 * (i + 1) for i in range(4)}
        assert g.region_value(utils) == pytest.approx(
            sum(stage_delay_factor(u) for u in utils.values())
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.9), min_size=4, max_size=4
        )
    )
    def test_parallel_branches_never_exceed_series(self, us):
        """max over branches <= sum over branches: the DAG region is
        never tighter than flattening it into a chain."""
        utils = {"R1": us[0], "R2": us[1], "R3": us[2], "R4": us[3]}
        dag_value = fig3_expression().region_value(utils)
        chain_value = seq(
            leaf("R1"), leaf("R2"), leaf("R3"), leaf("R4")
        ).region_value(utils)
        assert dag_value <= chain_value + 1e-12
