"""The deterministic load generator: byte stability and scenario gates."""

import json

import pytest

from repro.serve.loadgen import (
    EQUIVALENCE_BATCH_SIZES,
    REPORT_FORMAT,
    SCENARIOS,
    batching_equivalence,
    build_trace,
    main,
    render_report,
    run_scenario,
)

SMALL = 120  # requests per scenario for fast in-suite runs


def _run_twice(name, seed=0, requests=SMALL, transport="inproc"):
    first = render_report(run_scenario(name, seed, requests, transport))
    second = render_report(run_scenario(name, seed, requests, transport))
    return first, second


class TestDeterminism:
    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_reports_are_byte_stable(self, name):
        first, second = _run_twice(name)
        assert first == second

    def test_different_seeds_differ(self):
        a = render_report(run_scenario("webserver", 0, SMALL))
        b = render_report(run_scenario("webserver", 1, SMALL))
        assert a != b

    def test_trace_is_a_pure_function_of_seed(self):
        scenario = SCENARIOS[0]
        first = build_trace(scenario, seed=3, requests=50)
        second = build_trace(scenario, seed=3, requests=50)
        assert first == second


class TestScenarioGates:
    def test_webserver_in_region_zero_misses(self):
        report = run_scenario("webserver", 0, SMALL)
        assert report["format"] == REPORT_FORMAT
        traffic = report["traffic"]
        assert traffic["offered"] == SMALL
        assert traffic["admitted"] == SMALL  # rate 100 sits inside the region
        assert traffic["missed"] == 0
        assert traffic["unfinished"] == 0
        assert report["batching"]["equivalent"] is True
        assert report["snapshot"]["violations"] == 0
        assert report["snapshot"]["stable"] is True

    def test_overload_sheds_without_missing(self):
        # 4x the in-region rate needs a longer trace before the region
        # saturates and shedding starts.
        report = run_scenario("overload", 0, 200)
        traffic = report["traffic"]
        assert traffic["admitted"] < traffic["offered"]
        assert traffic["shed"] + traffic["rejected"] > 0
        assert traffic["missed"] == 0  # admission control keeps every promise

    def test_burst_offers_extra_arrivals(self):
        report = run_scenario("burst", 0, SMALL)
        assert report["traffic"]["offered"] > SMALL
        assert report["traffic"]["missed"] == 0

    def test_chaos_recovers_through_resync(self):
        report = run_scenario("chaos", 0, SMALL)
        assert report["traffic"]["missed"] == 0
        chaos = report["chaos"]
        assert len(chaos["resyncs"]) == 6
        # Resync observations are in simulated-time order.
        times = [entry["now"] for entry in chaos["resyncs"]]
        assert times == sorted(times)

    def test_snapshot_is_taken_mid_run(self):
        report = run_scenario("webserver", 0, SMALL)
        assert report["snapshot"]["admitted_records"] > 0


class TestBatchingEquivalenceHarness:
    def test_matrix_covers_required_sizes(self):
        assert EQUIVALENCE_BATCH_SIZES == (1, 4, 32)
        scenario = SCENARIOS[0]
        tasks, _, _ = build_trace(scenario, seed=0, requests=60)
        result = batching_equivalence(tasks)
        assert result["equivalent"] is True
        assert set(result["batch_sizes"]) == {1, 4, 32}


class TestCli:
    def test_list_prints_scenarios(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for scenario in SCENARIOS:
            assert scenario.name in out

    def test_report_written_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(
            [
                "--scenario",
                "webserver",
                "--seed",
                "0",
                "--requests",
                str(SMALL),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == REPORT_FORMAT
        assert payload["seed"] == 0

    def test_selftest_passes(self, capsys):
        code = main(
            [
                "--scenario",
                "webserver",
                "--seed",
                "0",
                "--requests",
                str(SMALL),
                "--selftest",
            ]
        )
        assert code == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_unknown_scenario_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scenario", "nonesuch"])


@pytest.mark.slow_serve
class TestFullScale:
    """The ISSUE acceptance runs: 1000 requests, every scenario, TCP."""

    @pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
    def test_thousand_request_selftests(self, name):
        first, second = _run_twice(name, requests=1000)
        assert first == second
        report = run_scenario(name, 0, 1000)
        assert report["traffic"]["missed"] == 0

    def test_tcp_transport_matches_gates(self):
        report = run_scenario("webserver", 0, 300, transport="tcp")
        assert report["transport"] == "tcp"
        assert report["traffic"]["missed"] == 0
        assert report["batching"]["equivalent"] is True
