"""Tests for the discrete-event engine and event queue."""

import math

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue
from repro.sim.trace import TraceRecorder


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(2.0, order.append, ("b",))
        q.push(1.0, order.append, ("a",))
        q.push(3.0, order.append, ("c",))
        while True:
            h = q.pop()
            if h is None:
                break
            h.callback(*h.args)
        assert order == ["a", "b", "c"]

    def test_fifo_among_ties(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None, ())
        second = q.push(1.0, lambda: None, ())
        assert q.pop() is first
        assert q.pop() is second

    def test_cancelled_skipped(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None, ())
        h.cancel()
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        early = q.push(1.0, lambda: None, ())
        q.push(2.0, lambda: None, ())
        early.cancel()
        assert q.peek_time() == 2.0

    def test_bool_reflects_pending(self):
        q = EventQueue()
        assert not q
        h = q.push(1.0, lambda: None, ())
        assert q
        h.cancel()
        assert not q

    def test_handle_repr(self):
        q = EventQueue()
        h = q.push(1.5, lambda: None, ())
        assert "1.5" in repr(h)
        h.cancel()
        assert "cancelled" in repr(h)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append(("x", sim.now)))
        sim.at(1.0, lambda: log.append(("y", sim.now)))
        sim.run()
        assert log == [("y", 1.0), ("x", 2.0)]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_nan_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().at(math.nan, lambda: None)

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        h = sim.at(1.0, lambda: fired.append(1))
        h.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert fired == [1, 2]

    def test_event_at_until_boundary_runs(self):
        sim = Simulator()
        fired = []
        sim.at(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        count = []

        def reschedule():
            count.append(sim.now)
            sim.after(1.0, reschedule)

        sim.after(0.0, reschedule)
        sim.run(max_events=10)
        assert len(count) == 10

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_callbacks_can_schedule_simultaneous(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: (log.append("a"), sim.at(1.0, lambda: log.append("b"))))
        sim.at(1.0, lambda: log.append("c"))
        sim.run()
        # FIFO among equal timestamps: a, c (already queued), then b.
        assert log == ["a", "c", "b"]

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.at(4.0, lambda: None)
        assert sim.peek_next_time() == 4.0


class TestTraceRecorder:
    def test_records_events(self):
        sim = Simulator()
        recorder = TraceRecorder(sim)

        def tick():
            pass

        sim.at(1.0, tick)
        sim.at(2.0, tick)
        sim.run()
        assert recorder.times() == [1.0, 2.0]
        assert recorder.names() == ["tick", "tick"]

    def test_capacity_bounds_memory(self):
        sim = Simulator()
        recorder = TraceRecorder(sim, capacity=3)
        for t in range(10):
            sim.at(float(t), lambda: None)
        sim.run()
        assert len(recorder) == 3
        assert recorder.times() == [7.0, 8.0, 9.0]

    def test_predicate_filters(self):
        sim = Simulator()
        recorder = TraceRecorder(sim, predicate=lambda t, h: t >= 2.0)
        sim.at(1.0, lambda: None)
        sim.at(3.0, lambda: None)
        sim.run()
        assert recorder.times() == [3.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(Simulator(), capacity=0)
