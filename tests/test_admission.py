"""Tests for the O(N) pipeline admission controller (Sections 4 and 5)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import (
    ExactDemand,
    MeanDemand,
    PipelineAdmissionController,
)
from repro.core.bounds import (
    UNIPROCESSOR_APERIODIC_BOUND,
    pipeline_region_value,
)
from repro.core.task import make_task


def controller(num_stages=2, **kwargs):
    return PipelineAdmissionController(num_stages, **kwargs)


class TestConstruction:
    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            controller(0)

    def test_beta_length_mismatch(self):
        with pytest.raises(ValueError):
            controller(2, betas=[0.1])

    def test_reserved_length_mismatch(self):
        with pytest.raises(ValueError):
            controller(2, reserved=[0.1])

    def test_infeasible_reservation_rejected(self):
        with pytest.raises(ValueError):
            controller(2, reserved=[0.5, 0.5])

    def test_feasible_reservation_accepted(self):
        c = controller(3, reserved=[0.4, 0.25, 0.1])
        assert c.region_value() == pytest.approx(0.9306, abs=1e-3)


class TestBasicAdmission:
    def test_small_task_admitted(self):
        c = controller()
        t = make_task(0.0, 10.0, [0.5, 0.5])
        decision = c.request(t, now=0.0)
        assert decision.admitted
        assert c.is_admitted(t.task_id)
        assert c.utilizations() == pytest.approx((0.05, 0.05))

    def test_oversized_task_rejected(self):
        c = controller()
        t = make_task(0.0, 1.0, [0.9, 0.9])
        decision = c.request(t, now=0.0)
        assert not decision.admitted
        assert not c.is_admitted(t.task_id)
        assert c.utilizations() == (0.0, 0.0)

    def test_contribution_at_unity_rejected(self):
        c = controller(1)
        t = make_task(0.0, 1.0, [1.0])
        assert not c.request(t, now=0.0).admitted

    def test_single_stage_scalar_bound(self):
        c = controller(1)
        eps = 1e-6
        ok = make_task(0.0, 1.0, [UNIPROCESSOR_APERIODIC_BOUND - eps])
        too_big = make_task(0.0, 1.0, [UNIPROCESSOR_APERIODIC_BOUND + eps])
        assert c.request(ok, now=0.0).admitted
        c2 = controller(1)
        assert not c2.request(too_big, now=0.0).admitted

    def test_would_admit_does_not_commit(self):
        c = controller()
        t = make_task(0.0, 10.0, [0.5, 0.5])
        assert c.would_admit(t, now=0.0)
        assert not c.is_admitted(t.task_id)
        assert c.utilizations() == (0.0, 0.0)

    def test_rejection_leaves_state_untouched(self):
        c = controller()
        first = make_task(0.0, 1.0, [0.3, 0.3])
        assert c.request(first, now=0.0).admitted
        before = c.utilizations()
        second = make_task(0.0, 1.0, [0.5, 0.5])
        assert not c.request(second, now=0.0).admitted
        assert c.utilizations() == before

    def test_admissions_accumulate_to_boundary(self):
        c = controller(1)
        admitted = 0
        for i in range(100):
            t = make_task(0.0, 100.0, [1.0])  # contribution 0.01 each
            if c.request(t, now=0.0).admitted:
                admitted += 1
        # floor(0.5857 / 0.01) admissions fit.
        assert admitted == 58
        assert c.region_value() <= 1.0

    def test_stage_count_mismatch_raises(self):
        c = controller(2)
        t = make_task(0.0, 1.0, [0.1])
        with pytest.raises(ValueError):
            c.request(t, now=0.0)


class TestExpiry:
    def test_contribution_expires_at_deadline(self):
        c = controller()
        t = make_task(0.0, 10.0, [1.0, 1.0])
        c.request(t, now=0.0)
        c.expire(9.999)
        assert c.is_admitted(t.task_id)
        c.expire(10.0)
        assert not c.is_admitted(t.task_id)
        assert c.utilizations() == (0.0, 0.0)

    def test_expiry_frees_capacity(self):
        c = controller(1)
        big = make_task(0.0, 1.0, [0.55])
        assert c.request(big, now=0.0).admitted
        blocked = make_task(0.5, 1.5, [0.55 * 1.5])
        assert not c.request(blocked, now=0.5).admitted
        retry = make_task(1.0, 1.5, [0.55 * 1.5])
        assert c.request(retry, now=1.0).admitted  # big expired at 1.0

    def test_next_expiry(self):
        c = controller()
        assert c.next_expiry() == math.inf
        c.request(make_task(0.0, 7.0, [0.1, 0.1]), now=0.0)
        c.request(make_task(0.0, 3.0, [0.1, 0.1]), now=0.0)
        assert c.next_expiry() == 3.0


class TestIdleReset:
    def test_departure_then_idle_releases(self):
        c = controller()
        t = make_task(0.0, 100.0, [1.0, 1.0])
        c.request(t, now=0.0)
        c.notify_subtask_departure(t.task_id, stage=0)
        released = c.notify_stage_idle(0)
        assert released == pytest.approx(0.01)
        # Stage 1 still carries the contribution.
        assert c.utilizations() == pytest.approx((0.0, 0.01))

    def test_idle_without_departures_is_noop(self):
        c = controller()
        t = make_task(0.0, 100.0, [1.0, 1.0])
        c.request(t, now=0.0)
        assert c.notify_stage_idle(0) == 0.0
        assert c.utilizations() == pytest.approx((0.01, 0.01))

    def test_reset_disabled_for_ablation(self):
        c = controller(reset_on_idle=False)
        t = make_task(0.0, 100.0, [1.0, 1.0])
        c.request(t, now=0.0)
        c.notify_subtask_departure(t.task_id, stage=0)
        assert c.notify_stage_idle(0) == 0.0
        assert c.utilizations() == pytest.approx((0.01, 0.01))

    def test_reset_preserves_reserved(self):
        c = controller(2, reserved=[0.2, 0.1])
        t = make_task(0.0, 100.0, [1.0, 1.0])
        c.request(t, now=0.0)
        c.notify_subtask_departure(t.task_id, stage=0)
        c.notify_stage_idle(0)
        assert c.utilizations() == pytest.approx((0.2, 0.11))

    def test_paper_reset_scenario(self):
        """The Section-4 single-processor example: tasks with C=1, D=2
        arriving just after each other's completion are all admitted
        despite each nearly filling the bound."""
        c = controller(1)
        now = 0.0
        for _ in range(10):
            t = make_task(now, 2.0, [1.0])  # contribution 0.5
            assert c.request(t, now=now).admitted
            # Task completes after 1 time unit; the processor idles.
            c.notify_subtask_departure(t.task_id, stage=0)
            c.notify_stage_idle(0)
            now += 1.0 + 1e-6


class TestWithdrawAndShedding:
    def test_withdraw_removes_everywhere(self):
        c = controller()
        t = make_task(0.0, 10.0, [1.0, 2.0])
        c.request(t, now=0.0)
        c.withdraw(t.task_id)
        assert not c.is_admitted(t.task_id)
        assert c.utilizations() == (0.0, 0.0)

    def test_shedding_evicts_lower_importance(self):
        c = controller(1)
        filler = [make_task(0.0, 1.0, [0.14], importance=0) for _ in range(4)]
        for t in filler:
            assert c.request(t, now=0.0).admitted
        vip = make_task(0.0, 1.0, [0.3], importance=5)
        decision = c.request_with_shedding(vip, now=0.0)
        assert decision.admitted
        assert len(decision.shed) >= 1
        for victim in decision.shed:
            assert not c.is_admitted(victim)
        assert c.is_admitted(vip.task_id)
        assert c.region_value() <= 1.0

    def test_shedding_stops_at_equal_importance(self):
        c = controller(1)
        peers = [make_task(0.0, 1.0, [0.14], importance=5) for _ in range(4)]
        for t in peers:
            assert c.request(t, now=0.0).admitted
        vip = make_task(0.0, 1.0, [0.3], importance=5)
        decision = c.request_with_shedding(vip, now=0.0)
        assert not decision.admitted
        assert decision.shed == ()
        for t in peers:
            assert c.is_admitted(t.task_id)

    def test_shedding_rolls_back_when_insufficient(self):
        c = controller(1)
        small = make_task(0.0, 1.0, [0.1], importance=0)
        assert c.request(small, now=0.0).admitted
        monster = make_task(0.0, 1.0, [0.99], importance=9)
        decision = c.request_with_shedding(monster, now=0.0)
        assert not decision.admitted
        # The shed victim must be restored.
        assert c.is_admitted(small.task_id)
        assert c.utilizations() == pytest.approx((0.1,))

    def test_shedding_without_pressure_sheds_nothing(self):
        c = controller(1)
        t = make_task(0.0, 1.0, [0.1], importance=9)
        decision = c.request_with_shedding(t, now=0.0)
        assert decision.admitted
        assert decision.shed == ()

    def test_shedding_minimal_victims(self):
        c = controller(1)
        for _ in range(5):
            c.request(make_task(0.0, 1.0, [0.1], importance=0), now=0.0)
        vip = make_task(0.0, 1.0, [0.15], importance=1)
        decision = c.request_with_shedding(vip, now=0.0)
        assert decision.admitted
        # One 0.1 victim suffices to fit 0.15 under the 0.5857 bound.
        assert len(decision.shed) == 1


class TestDemandModels:
    def test_exact_is_default(self):
        c = controller()
        assert isinstance(c.demand_model, ExactDemand)

    def test_mean_demand_overrides_actuals(self):
        c = controller(demand_model=MeanDemand([1.0, 1.0]))
        # Actual cost is huge but the controller charges the mean.
        t = make_task(0.0, 10.0, [50.0, 50.0])
        decision = c.request(t, now=0.0)
        assert decision.admitted
        assert c.utilizations() == pytest.approx((0.1, 0.1))

    def test_mean_demand_dimension_check(self):
        c = controller(demand_model=MeanDemand([1.0]))
        t = make_task(0.0, 10.0, [1.0, 1.0])
        with pytest.raises(ValueError):
            c.request(t, now=0.0)

    def test_mean_demand_validation(self):
        with pytest.raises(ValueError):
            MeanDemand([-1.0])

    def test_exact_demand_returns_task_costs(self):
        t = make_task(0.0, 1.0, [0.2, 0.3])
        assert ExactDemand().demand(t) == (0.2, 0.3)


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=20.0),  # deadline
                st.floats(min_value=0.0, max_value=5.0),  # cost stage 0
                st.floats(min_value=0.0, max_value=5.0),  # cost stage 1
                st.floats(min_value=0.0, max_value=2.0),  # inter-arrival
            ),
            max_size=40,
        )
    )
    def test_region_never_violated(self, arrivals):
        """Whatever the arrival pattern, the admitted state stays inside
        the feasible region at every admission instant."""
        c = controller(2)
        now = 0.0
        for deadline, c0, c1, gap in arrivals:
            now += gap
            t = make_task(now, deadline, [c0, c1])
            c.request(t, now=now)
            assert c.region_value() <= c.budget + 1e-9
            assert pipeline_region_value(
                [min(u, 1 - 1e-12) for u in c.utilizations()]
            ) == pytest.approx(c.region_value(), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_admitted_count_tracks_requests(self, n):
        c = controller(n)
        tasks = [make_task(0.0, 100.0, [0.1] * n) for _ in range(5)]
        admitted = sum(1 for t in tasks if c.request(t, now=0.0).admitted)
        assert c.admitted_count == admitted


class TestScaledDemand:
    def test_under_declaration(self):
        from repro.core.admission import ScaledDemand

        t = make_task(0.0, 10.0, [2.0, 4.0])
        assert ScaledDemand(0.5).demand(t) == (1.0, 2.0)

    def test_over_declaration(self):
        from repro.core.admission import ScaledDemand

        t = make_task(0.0, 10.0, [2.0])
        assert ScaledDemand(2.0).demand(t) == (4.0,)

    def test_validation(self):
        from repro.core.admission import ScaledDemand

        with pytest.raises(ValueError):
            ScaledDemand(0.0)
        with pytest.raises(ValueError):
            ScaledDemand(float("inf"))

    def test_under_charging_admits_more(self):
        from repro.core.admission import ScaledDemand

        exact = controller(1)
        optimistic = controller(1, demand_model=ScaledDemand(0.5))
        admitted_exact = sum(
            1
            for i in range(40)
            if exact.request(make_task(0.0, 10.0, [0.2], task_id=80_000 + i), 0.0).admitted
        )
        admitted_optimistic = sum(
            1
            for i in range(40)
            if optimistic.request(make_task(0.0, 10.0, [0.2], task_id=81_000 + i), 0.0).admitted
        )
        assert admitted_optimistic > admitted_exact


class TestBoundaryAdmission:
    """Regression tests for the approximate region-surface comparison.

    The admission test accepts ``sum_j f(U_j) <= budget`` with the
    shared relative tolerance: a task landing *exactly on* the region
    surface is feasible by Theorem 2 and must not be bounced by
    floating-point rounding in ``f``.  The slope ``f'(U)`` is ~3.4 near
    the uniprocessor bound, so genuine violations are still rejected.
    """

    def test_task_on_the_surface_is_admitted(self):
        c = controller(1)
        # Contribution C/D == 2 - sqrt(2): f(U*) == budget == 1 exactly
        # (up to rounding in f, which the tolerance absorbs).
        t = make_task(0.0, 1.0, [UNIPROCESSOR_APERIODIC_BOUND])
        assert c.request(t, now=0.0).admitted

    def test_ulp_scale_overshoot_is_admitted(self):
        c = controller(1)
        t = make_task(0.0, 1.0, [UNIPROCESSOR_APERIODIC_BOUND * (1.0 + 1e-12)])
        assert c.request(t, now=0.0).admitted

    def test_material_overshoot_is_rejected(self):
        c = controller(1)
        t = make_task(0.0, 1.0, [UNIPROCESSOR_APERIODIC_BOUND + 1e-5])
        assert not c.request(t, now=0.0).admitted

    def test_two_stage_surface_task_is_admitted(self):
        from repro.core.bounds import inverse_stage_delay_factor

        c = controller(2)
        u_half = inverse_stage_delay_factor(0.5)
        t = make_task(0.0, 1.0, [u_half, u_half])
        assert pipeline_region_value([u_half, u_half]) == pytest.approx(1.0)
        assert c.request(t, now=0.0).admitted

    def test_second_task_on_shared_surface_is_admitted(self):
        c = controller(1)
        half = UNIPROCESSOR_APERIODIC_BOUND / 2.0
        assert c.request(make_task(0.0, 1.0, [half]), now=0.0).admitted
        assert c.request(make_task(0.0, 1.0, [half]), now=0.0).admitted
        # The region is now exactly full; any material demand bounces.
        assert not c.request(make_task(0.0, 1.0, [0.01]), now=0.0).admitted


class TestSheddingPartialLapse:
    def test_rollback_after_partial_idle_release(self):
        """Rolled-back eviction must restore exactly the pre-eviction
        state — and must not resurrect utilization that the idle-reset
        rule had already released before the shedding attempt."""
        c = controller(2)
        victim = make_task(0.0, 2.0, [0.6, 0.6], importance=0)
        assert c.request(victim, now=0.0).admitted
        # Partial lapse: the victim departs stage 0 and the stage goes
        # idle, releasing 0.3 there; stage 1 still holds 0.3.
        c.notify_subtask_departure(victim.task_id, 0)
        assert c.notify_stage_idle(0) == pytest.approx(0.3)
        assert c.utilizations() == (0.0, 0.3)
        # An unfittable high-importance arrival: contribution 1.0 at
        # stage 0 can never pass the test, so shedding the victim is
        # attempted and then rolled back.
        monster = make_task(0.0, 2.0, [2.0, 0.0], importance=9)
        decision = c.request_with_shedding(monster, now=0.0)
        assert not decision.admitted
        assert decision.shed == ()
        # Exact pre-eviction state: the surviving stage-1 contribution
        # is back bit-for-bit, stage 0 stays released.
        assert c.is_admitted(victim.task_id)
        assert c.trackers[1].contribution_of(victim.task_id) == 0.6 / 2.0
        assert c.trackers[0].contribution_of(victim.task_id) == 0.0
        assert c.utilizations() == (0.0, 0.3)
        # No resurrected utilization: another idle instant at stage 0
        # has nothing to release.
        assert c.notify_stage_idle(0) == 0.0


class TestStageCapacity:
    def test_validation(self):
        c = controller(1)
        for bad in (-0.1, 1.1, math.nan, math.inf):
            with pytest.raises(ValueError):
                c.set_stage_capacity(0, bad)

    def test_reduced_capacity_inflates_charge(self):
        c = controller(1)
        c.set_stage_capacity(0, 0.5)
        t = make_task(0.0, 10.0, [2.0])
        assert c.request(t, now=0.0).admitted
        # C / (capacity * D) = 2 / (0.5 * 10)
        assert c.utilizations() == pytest.approx((0.4,))

    def test_outage_rejects_everything(self):
        c = controller(1)
        c.set_stage_capacity(0, 0.0)
        assert not c.request(make_task(0.0, 100.0, [0.001]), now=0.0).admitted
        c.set_stage_capacity(0, 1.0)
        assert c.request(make_task(0.0, 100.0, [0.001]), now=0.0).admitted

    def test_nominal_capacity_keeps_exact_charge(self):
        c = controller(1)
        t = make_task(0.0, 7.0, [0.3])
        assert c.request(t, now=0.0).admitted
        # capacity == 1.0 must take the exact C/D path (byte-identity
        # of fault-free runs depends on it), not C/(1.0*D).
        assert c.trackers[0].contribution_of(t.task_id) == 0.3 / 7.0

    def test_capacities_snapshot(self):
        c = controller(3)
        c.set_stage_capacity(1, 0.25)
        assert c.stage_capacities() == (1.0, 0.25, 1.0)
