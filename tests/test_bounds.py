"""Tests for the feasible-region mathematics (Theorem 1 and Eqs. 12/13/15)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import (
    UNIPROCESSOR_APERIODIC_BOUND,
    inverse_stage_delay_factor,
    is_pipeline_feasible,
    pipeline_margin,
    pipeline_region_value,
    region_budget,
    single_resource_bound,
    stage_delay,
    stage_delay_factor,
    uniform_per_stage_bound,
)


class TestStageDelayFactor:
    def test_zero(self):
        assert stage_delay_factor(0.0) == 0.0

    def test_half(self):
        # f(0.5) = 0.5 * 0.75 / 0.5 = 0.75
        assert stage_delay_factor(0.5) == pytest.approx(0.75)

    def test_at_one_diverges(self):
        assert stage_delay_factor(1.0) == math.inf

    def test_uniprocessor_bound_value(self):
        # f(2 - sqrt(2)) = 1, the single-resource boundary.
        assert stage_delay_factor(UNIPROCESSOR_APERIODIC_BOUND) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            stage_delay_factor(-0.01)

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            stage_delay_factor(1.01)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            stage_delay_factor(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            stage_delay_factor(float("inf"))

    @given(st.floats(min_value=0.0, max_value=0.999))
    def test_nonnegative(self, u):
        assert stage_delay_factor(u) >= 0.0

    @given(
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.0, max_value=0.999),
    )
    def test_strictly_increasing(self, a, b):
        if a == b:
            assert stage_delay_factor(a) == stage_delay_factor(b)
        else:
            lo, hi = min(a, b), max(a, b)
            assert stage_delay_factor(lo) < stage_delay_factor(hi)

    @given(st.floats(min_value=0.001, max_value=0.99))
    def test_below_mm1_delay(self, u):
        # f(U) = U(1 - U/2)/(1 - U) < U/(1 - U): the aperiodic worst
        # case is milder than the M/M/1 mean-delay growth factor.
        assert stage_delay_factor(u) < u / (1.0 - u)


class TestInverse:
    def test_zero(self):
        assert inverse_stage_delay_factor(0.0) == 0.0

    def test_one_is_uniprocessor_bound(self):
        assert inverse_stage_delay_factor(1.0) == pytest.approx(
            UNIPROCESSOR_APERIODIC_BOUND
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inverse_stage_delay_factor(-0.1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            inverse_stage_delay_factor(float("nan"))

    @given(st.floats(min_value=0.0, max_value=0.995))
    def test_roundtrip_from_utilization(self, u):
        assert inverse_stage_delay_factor(stage_delay_factor(u)) == pytest.approx(
            u, abs=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_roundtrip_from_factor(self, y):
        assert stage_delay_factor(inverse_stage_delay_factor(y)) == pytest.approx(
            y, rel=1e-9, abs=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_result_in_unit_interval(self, y):
        u = inverse_stage_delay_factor(y)
        assert 0.0 <= u < 1.0


class TestStageDelay:
    def test_theorem_one_form(self):
        # L = f(U) * Dmax
        assert stage_delay(0.5, 10.0) == pytest.approx(7.5)

    def test_zero_dmax(self):
        assert stage_delay(0.5, 0.0) == 0.0

    def test_negative_dmax_rejected(self):
        with pytest.raises(ValueError):
            stage_delay(0.5, -1.0)


class TestRegionBudget:
    def test_default(self):
        assert region_budget() == 1.0

    def test_alpha_scales(self):
        assert region_budget(alpha=0.5) == 0.5

    def test_blocking_shrinks(self):
        assert region_budget(1.0, [0.1, 0.2]) == pytest.approx(0.7)

    def test_alpha_and_blocking(self):
        # Eq. 15: alpha (1 - sum beta)
        assert region_budget(0.5, [0.1, 0.1]) == pytest.approx(0.4)

    def test_alpha_zero_rejected(self):
        with pytest.raises(ValueError):
            region_budget(0.0)

    def test_alpha_above_one_rejected(self):
        with pytest.raises(ValueError):
            region_budget(1.5)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            region_budget(1.0, [-0.1])

    def test_total_blocking_one_rejected(self):
        with pytest.raises(ValueError):
            region_budget(1.0, [0.5, 0.5])


class TestPipelineFeasibility:
    def test_tsce_reserved_vector(self):
        # The paper's Section-5 computation: 0.93 < 1.
        value = pipeline_region_value([0.4, 0.25, 0.1])
        assert value == pytest.approx(0.9306, abs=1e-3)
        assert is_pipeline_feasible([0.4, 0.25, 0.1])

    def test_empty_pipeline_trivially_feasible(self):
        assert pipeline_region_value([]) == 0.0
        assert is_pipeline_feasible([])

    def test_single_stage_reduces_to_uniprocessor(self):
        eps = 1e-9
        assert is_pipeline_feasible([UNIPROCESSOR_APERIODIC_BOUND - eps])
        assert not is_pipeline_feasible([UNIPROCESSOR_APERIODIC_BOUND + 1e-6])

    def test_infeasible_vector(self):
        assert not is_pipeline_feasible([0.5, 0.5])

    def test_margin_signs(self):
        assert pipeline_margin([0.1, 0.1]) > 0
        assert pipeline_margin([0.58, 0.58]) < 0

    def test_margin_zero_on_boundary(self):
        u = uniform_per_stage_bound(3)
        assert pipeline_margin([u, u, u]) == pytest.approx(0.0, abs=1e-9)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=6)
    )
    def test_value_is_sum_of_factors(self, utils):
        assert pipeline_region_value(utils) == pytest.approx(
            sum(stage_delay_factor(u) for u in utils)
        )

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=2, max_size=5),
        st.integers(min_value=0, max_value=4),
    )
    def test_monotone_in_each_coordinate(self, utils, idx):
        idx = idx % len(utils)
        bumped = list(utils)
        bumped[idx] = min(bumped[idx] + 0.1, 0.99)
        assert pipeline_region_value(bumped) >= pipeline_region_value(utils)


class TestScalarBounds:
    def test_single_resource_default(self):
        assert single_resource_bound() == pytest.approx(UNIPROCESSOR_APERIODIC_BOUND)

    def test_single_resource_with_alpha(self):
        # f(U) = 0.5 -> U = 1.5 - sqrt(1.25)
        expected = 1.5 - math.sqrt(1.25)
        assert single_resource_bound(alpha=0.5) == pytest.approx(expected)

    def test_single_resource_with_blocking(self):
        u = single_resource_bound(beta=0.2)
        assert stage_delay_factor(u) == pytest.approx(0.8)

    def test_uniform_bound_one_stage(self):
        assert uniform_per_stage_bound(1) == pytest.approx(
            UNIPROCESSOR_APERIODIC_BOUND
        )

    def test_uniform_bound_decreases_with_stages(self):
        bounds = [uniform_per_stage_bound(n) for n in range(1, 8)]
        assert all(a > b for a, b in zip(bounds, bounds[1:]))

    def test_uniform_bound_on_boundary(self):
        for n in (1, 2, 3, 5, 10):
            u = uniform_per_stage_bound(n)
            assert pipeline_region_value([u] * n) == pytest.approx(1.0, abs=1e-9)

    def test_uniform_bound_scales_like_inverse_n(self):
        # Section 3.1: U_j = O(1/N); check N * bound stays bounded and
        # approaches the budget (f(u) ~ u for small u).
        for n in (10, 100, 1000):
            u = uniform_per_stage_bound(n)
            assert n * u == pytest.approx(1.0, rel=0.2)

    def test_uniform_bound_invalid_stages(self):
        with pytest.raises(ValueError):
            uniform_per_stage_bound(0)
