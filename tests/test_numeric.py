"""Tests for repro.core.numeric and regression tests for its adopters.

Each migration away from an ad-hoc tolerance or raw float equality has
a regression test here proving the behavior the shared helpers must
preserve (or deliberately improve).
"""

import math

import pytest

from repro.analysis.comparison import PeriodicTaskParams, compare_periodic_admission
from repro.analysis.periodic import harmonic_chain_count
from repro.analysis.responsetime import holistic_pipeline_analysis
from repro.core.admission import PipelineAdmissionController
from repro.core.bounds import region_budget, stage_delay_factor
from repro.core.numeric import EPS, approx_eq, approx_ge, approx_le
from repro.sim.metrics import TaskRecord


class TestApproxEq:
    def test_exact_equality(self):
        assert approx_eq(1.0, 1.0)
        assert approx_eq(0.0, 0.0)

    def test_within_tolerance(self):
        assert approx_eq(1.0, 1.0 + 1e-12)
        assert approx_eq(0.3, 0.1 + 0.2)

    def test_outside_tolerance(self):
        assert not approx_eq(1.0, 1.0 + 1e-6)
        assert not approx_eq(0.0, 1e-6)

    def test_relative_scaling_for_large_values(self):
        # At magnitude 1e6 the tolerance scales: 1e6 * EPS = 1e-3.
        assert approx_eq(1e6, 1e6 + 1e-4)
        assert not approx_eq(1e6, 1e6 + 1.0)

    def test_absolute_floor_for_small_values(self):
        # Near zero the floor max(1, ...) keeps the tolerance at EPS.
        assert approx_eq(1e-15, 2e-15)
        assert not approx_eq(0.0, 2 * EPS)

    def test_infinities(self):
        assert approx_eq(math.inf, math.inf)
        assert approx_eq(-math.inf, -math.inf)
        assert not approx_eq(math.inf, -math.inf)
        assert not approx_eq(math.inf, 1e300)

    def test_nan_never_equal(self):
        assert not approx_eq(math.nan, math.nan)
        assert not approx_eq(math.nan, 0.0)

    def test_custom_tolerance(self):
        assert approx_eq(1.0, 1.1, tol=0.2)
        assert not approx_eq(1.0, 1.1, tol=0.01)


class TestApproxLeGe:
    def test_strictly_less(self):
        assert approx_le(1.0, 2.0)
        assert not approx_ge(1.0, 2.0)

    def test_strictly_greater(self):
        assert not approx_le(2.0, 1.0)
        assert approx_ge(2.0, 1.0)

    def test_within_tolerance_counts_as_equal(self):
        assert approx_le(1.0 + 1e-12, 1.0)
        assert approx_ge(1.0 - 1e-12, 1.0)

    def test_infinite_bounds(self):
        assert approx_le(5.0, math.inf)
        assert approx_ge(math.inf, 5.0)
        assert approx_le(math.inf, math.inf)


class TestHarmonicToleranceRegression:
    """periodic.py:_is_harmonic migrated from ad-hoc 1e-9 to EPS."""

    def test_harmonic_with_float_noise(self):
        # 0.30000000000000004 vs 0.1: ratio is 3 within EPS.
        periods = [0.1, 0.1 + 0.2]
        assert harmonic_chain_count(periods) == 1

    def test_non_harmonic_detected(self):
        assert harmonic_chain_count([2.0, 3.0]) == 2


class TestImplicitDeadlineRegression:
    """comparison.py migrated ``deadline == period`` to approx_eq."""

    def test_float_noise_still_counts_as_implicit(self):
        # deadline differs from period by one ulp-scale error; the L&L
        # and hyperbolic tests must still be evaluated (not skipped).
        tasks = [PeriodicTaskParams(period=0.3, wcet=0.05, deadline=0.1 + 0.2)]
        result = compare_periodic_admission(tasks)
        assert result.liu_layland  # would be False if treated as constrained

    def test_constrained_deadline_skips_periodic_bounds(self):
        tasks = [PeriodicTaskParams(period=10.0, wcet=1.0, deadline=5.0)]
        result = compare_periodic_admission(tasks)
        assert not result.liu_layland
        assert not result.hyperbolic


class TestDeadlineMissToleranceRegression:
    """metrics.py migrated ``> deadline + 1e-12`` to approx_le."""

    def _record(self, completed_at):
        return TaskRecord(
            task_id=0,
            arrival_time=0.0,
            deadline=10.0,
            admitted=True,
            admitted_at=0.0,
            completed_at=completed_at,
        )

    def test_on_time_not_missed(self):
        assert not self._record(10.0).missed

    def test_sub_eps_overrun_not_missed(self):
        assert not self._record(10.0 + 1e-12).missed

    def test_real_overrun_missed(self):
        assert self._record(10.0 + 1e-6).missed
        assert self._record(11.0).missed

    def test_incomplete_not_missed(self):
        assert not self._record(None).missed


class TestReservationBudgetToleranceRegression:
    """admission.py migrated ``> budget + 1e-12`` to approx_le."""

    def test_reservation_exactly_at_budget_accepted(self):
        # Reserve a utilization whose f-value equals the full budget up
        # to float noise: f(2 - sqrt(2)) == 1 analytically.
        u = 2.0 - math.sqrt(2.0)
        controller = PipelineAdmissionController(num_stages=1, reserved=[u])
        assert controller.utilizations()[0] == pytest.approx(u)

    def test_reservation_over_budget_rejected(self):
        with pytest.raises(ValueError):
            PipelineAdmissionController(num_stages=1, reserved=[0.9])


class TestStageDelaySingularityRegression:
    """bounds.py replaced ``u == 1.0`` with a >= singularity guard."""

    def test_exactly_one_is_infinite(self):
        assert stage_delay_factor(1.0) == math.inf

    def test_just_below_one_is_finite(self):
        value = stage_delay_factor(math.nextafter(1.0, 0.0))
        assert math.isfinite(value)
        assert value > 1e10

    def test_above_one_raises(self):
        with pytest.raises(ValueError):
            stage_delay_factor(1.0 + 1e-9)


class TestHolisticFixedPointRegression:
    """responsetime.py fixed-point checks migrated to approx_eq."""

    def test_converges_on_awkward_floats(self):
        result = holistic_pipeline_analysis(
            periods=[0.1 + 0.2, 1.0 / 3.0, 0.7],
            stage_wcets=[[0.01, 0.02], [0.03, 0.01], [0.05, 0.04]],
            end_to_end_deadlines=[0.3, 1.0 / 3.0, 0.7],
        )
        assert result.iterations < 200  # reached a fixed point, not the cap
        assert all(result.schedulable)

    def test_overload_reported_unschedulable(self):
        result = holistic_pipeline_analysis(
            periods=[1.0, 1.0],
            stage_wcets=[[0.9], [0.9]],
            end_to_end_deadlines=[1.0, 1.0],
        )
        assert not all(result.schedulable)


def test_region_budget_blocking_guard_unchanged():
    # Companion invariant to lint rule MDL004: runtime validation still
    # rejects blocking sums >= 1.
    with pytest.raises(ValueError):
        region_budget(alpha=1.0, betas=[0.5, 0.5])
