"""Batched admission must be decision-for-decision equal to sequential.

The serving layer's amortized fast path
(:meth:`PipelineAdmissionController.admit_many`, and the batch queue in
:class:`repro.serve.registry.ServedPipeline`) carries a hard
correctness guarantee: at the same virtual timestamps, batching changes
*when* decisions are emitted, never *what* they say — down to the last
ulp of the reported region value and the final tracker state.
"""

import random

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.bounds import inverse_stage_delay_factor
from repro.core.task import make_task
from repro.serve.batching import AdmissionBatcher
from repro.serve.registry import PipelinePolicy, ServedPipeline

NUM_STAGES = 3


def _random_tasks(seed, count, num_stages=NUM_STAGES, rate=4.0, start_id=0):
    """A seeded aperiodic arrival sequence with varied load and slack."""
    rng = random.Random(seed)
    t = 0.0
    tasks = []
    for k in range(count):
        t += rng.expovariate(rate)
        deadline = rng.uniform(0.5, 3.0)
        costs = [
            rng.expovariate(1.0 / 0.08) if rng.random() > 0.2 else 0.0
            for _ in range(num_stages)
        ]
        tasks.append(
            make_task(
                arrival_time=t,
                deadline=deadline,
                computation_times=costs,
                importance=rng.randrange(3),
                task_id=start_id + k,
            )
        )
    return tasks


def _sequential_reference(tasks, **controller_kwargs):
    """Decide the sequence one call at a time on a fresh controller."""
    controller = PipelineAdmissionController(NUM_STAGES, **controller_kwargs)
    decisions = [controller.request(task, task.arrival_time) for task in tasks]
    return controller, decisions


def _assert_same_state(a, b):
    """Exact (bitwise) equality of two controllers' visible state."""
    assert a.utilizations() == b.utilizations()
    assert a.region_value() == b.region_value()
    assert a.admitted_snapshot() == b.admitted_snapshot()


class TestAdmitMany:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_sequential_on_random_sequences(self, seed):
        tasks = _random_tasks(seed, count=120)
        reference, expected = _sequential_reference(tasks)

        batched = PipelineAdmissionController(NUM_STAGES)
        decisions = batched.admit_many(tasks)

        assert [d.admitted for d in decisions] == [d.admitted for d in expected]
        # The reported region value must agree bitwise, not just within
        # tolerance — admit_many recomputes cache entries with the same
        # float expressions request() uses.
        assert [d.region_value for d in decisions] == [
            d.region_value for d in expected
        ]
        _assert_same_state(batched, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sequential_under_simultaneous_bursts(self, seed):
        rng = random.Random(seed + 500)
        tasks = []
        t = 0.0
        for k in range(90):
            if k % 3:  # two of three arrivals share the previous timestamp
                t += rng.expovariate(2.0)
            tasks.append(
                make_task(
                    arrival_time=t,
                    deadline=rng.uniform(0.4, 2.0),
                    computation_times=[
                        rng.expovariate(1.0 / 0.1) for _ in range(NUM_STAGES)
                    ],
                    task_id=k,
                )
            )
        reference, expected = _sequential_reference(tasks)
        batched = PipelineAdmissionController(NUM_STAGES)
        decisions = batched.admit_many(tasks)
        assert [(d.admitted, d.region_value) for d in decisions] == [
            (d.admitted, d.region_value) for d in expected
        ]
        _assert_same_state(batched, reference)

    def test_boundary_arrivals_decide_identically(self):
        """Tasks engineered to land exactly on the region surface.

        A single-stage pipeline with budget 1.0 admits synthetic
        utilization up to ``f^-1(1)``.  Arrivals sized to fractions of
        that bound — including one that lands the region value on the
        budget to within float resolution — must flip (or not) the
        same way on both paths.
        """
        boundary_u = inverse_stage_delay_factor(1.0)
        for fraction in (0.25, 0.5, 0.25, 1e-9, 0.1):
            tasks = []
            t = 0.0
            deadline = 1.0
            for k, frac in enumerate((0.25, 0.5, fraction, 0.3, 0.2)):
                tasks.append(
                    make_task(
                        arrival_time=t,
                        deadline=deadline,
                        computation_times=[boundary_u * frac * deadline],
                        task_id=k,
                    )
                )
                t += 1e-6
            reference = PipelineAdmissionController(1)
            expected = [
                reference.request(task, task.arrival_time) for task in tasks
            ]
            batched = PipelineAdmissionController(1)
            decisions = batched.admit_many(tasks)
            assert [(d.admitted, d.region_value) for d in decisions] == [
                (d.admitted, d.region_value) for d in expected
            ]
            assert batched.utilizations() == reference.utilizations()

    def test_rejects_decreasing_timestamps(self):
        tasks = _random_tasks(11, count=3)
        controller = PipelineAdmissionController(NUM_STAGES)
        with pytest.raises(ValueError, match="non-decreasing"):
            controller.admit_many(tasks, times=[1.0, 0.5, 2.0])

    def test_rejects_decision_at_or_after_task_expiry(self):
        """Explicit times must precede each task's absolute deadline.

        The equal-timestamp expiry skip would keep a dead-on-arrival
        admission charged where sequential request() calls would have
        expired it before the next same-timestamp decision — so the
        batch path refuses the input instead of silently diverging.
        """
        tasks = [
            make_task(0.0, 1.0, [0.1] * NUM_STAGES, task_id=0),
            make_task(0.0, 1.0, [0.1] * NUM_STAGES, task_id=1),
        ]
        controller = PipelineAdmissionController(NUM_STAGES)
        with pytest.raises(ValueError, match="absolute deadline"):
            controller.admit_many(tasks, times=[1.0, 1.0])

    def test_explicit_times_override_arrivals(self):
        tasks = _random_tasks(12, count=20)
        times = [task.arrival_time + 0.25 for task in tasks]
        reference = PipelineAdmissionController(NUM_STAGES)
        expected = [
            reference.request(task, now) for task, now in zip(tasks, times)
        ]
        batched = PipelineAdmissionController(NUM_STAGES)
        decisions = batched.admit_many(tasks, times=times)
        assert [(d.admitted, d.region_value) for d in decisions] == [
            (d.admitted, d.region_value) for d in expected
        ]


class TestServedPipelineBatching:
    @pytest.mark.parametrize("max_batch", [1, 4, 32])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_batch_sizes_equal_sequential(self, max_batch, seed):
        """The ISSUE acceptance matrix: batch windows {1, 4, 32}."""
        tasks = _random_tasks(seed, count=100)
        _, expected = _sequential_reference(tasks)

        policy = PipelinePolicy(num_stages=NUM_STAGES, max_batch=max_batch)
        pipeline = ServedPipeline(name="p", policy=policy)
        decided = []
        for task in tasks:
            decided.extend(pipeline.admit(task.task_id, task))
        decided.extend(pipeline.flush())

        # Deferred decisions are released in queue order, so after the
        # final flush the token order matches the offer order.
        assert [token for token, _, _ in decided] == [t.task_id for t in tasks]
        assert [(d.admitted, d.region_value) for _, _, d in decided] == [
            (d.admitted, d.region_value) for d in expected
        ]

    def test_time_window_batching_equal_sequential(self):
        tasks = _random_tasks(3, count=80)
        _, expected = _sequential_reference(tasks)
        policy = PipelinePolicy(num_stages=NUM_STAGES, batch_window=0.5)
        pipeline = ServedPipeline(name="p", policy=policy)
        decided = []
        for task in tasks:
            decided.extend(pipeline.admit(task.task_id, task))
        decided.extend(pipeline.flush())
        assert pipeline.counters.batches > 1
        assert pipeline.counters.largest_batch > 1
        assert [(d.admitted, d.region_value) for _, _, d in decided] == [
            (d.admitted, d.region_value) for d in expected
        ]

    def test_shedding_pipeline_defers_but_matches_sequential(self):
        tasks = _random_tasks(9, count=60, rate=30.0)  # overload the region
        reference = PipelineAdmissionController(NUM_STAGES)
        expected = [
            reference.request_with_shedding(task, task.arrival_time)
            for task in tasks
        ]
        policy = PipelinePolicy(num_stages=NUM_STAGES, shedding=True, max_batch=4)
        pipeline = ServedPipeline(name="p", policy=policy)
        decided = []
        for task in tasks:
            decided.extend(pipeline.admit(task.task_id, task))
        decided.extend(pipeline.flush())
        assert any(d.shed for _, _, d in decided)  # the scenario sheds
        assert [(d.admitted, d.shed) for _, _, d in decided] == [
            (d.admitted, d.shed) for d in expected
        ]

    def test_clock_rejects_time_regression(self):
        policy = PipelinePolicy(num_stages=NUM_STAGES)
        pipeline = ServedPipeline(name="p", policy=policy)
        first = make_task(1.0, 1.0, [0.1] * NUM_STAGES, task_id=0)
        stale = make_task(0.5, 1.0, [0.1] * NUM_STAGES, task_id=1)
        pipeline.admit(0, first)
        from repro.serve.protocol import ProtocolError

        with pytest.raises(ProtocolError) as err:
            pipeline.admit(1, stale)
        assert err.value.code == "time-regression"


class TestBatcherMechanics:
    def test_window_flushes_before_newcomer_joins(self):
        batcher = AdmissionBatcher(window=1.0)
        assert batcher.push("a", 0.0) == []
        assert batcher.push("b", 0.5) == []
        ready = batcher.push("c", 1.0)  # window boundary is inclusive
        assert ready == [["a", "b"]]
        assert batcher.pending == 1
        assert batcher.flush() == ["c"]

    def test_size_cap_flushes_immediately(self):
        batcher = AdmissionBatcher(max_batch=2)
        assert batcher.push("a", 0.0) == []
        assert batcher.push("b", 0.0) == [["a", "b"]]
        assert batcher.pending == 0

    def test_window_and_cap_can_both_fire_on_one_push(self):
        batcher = AdmissionBatcher(window=1.0, max_batch=1)
        assert batcher.push("a", 0.0) == [["a"]]
        assert batcher.push("b", 5.0) == [["b"]]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdmissionBatcher(window=0.0)
        with pytest.raises(ValueError):
            AdmissionBatcher(max_batch=0)
        assert not AdmissionBatcher().enabled
