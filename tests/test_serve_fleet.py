"""Fleet supervision: heartbeats, failover, migration, chaos gate."""

import copy
import json
import socket

import pytest

from repro.serve.fleet import (
    DEFAULT_MISS_THRESHOLD,
    WORKER_DEGRADED,
    WORKER_HEALTHY,
    WORKER_RECOVERING,
    WORKER_UNAVAILABLE,
    FleetError,
    FleetSupervisor,
    HeartbeatMonitor,
    ProcessFleet,
    WorkerUnavailable,
)
from repro.serve.fleetchaos import (
    FLEET_CHAOS_REPORT_FORMAT,
    fleet_chaos_gate_failures,
    run_fleet_chaos,
)
from repro.serve.router import ShardMap

POLICY = {"num_stages": 2, "alpha": 0.9}


def _health(journal_seq, snapshot_seq=0):
    return {"ok": True, "journal_seq": journal_seq, "snapshot_seq": snapshot_seq}


class TestHeartbeatMonitor:
    def test_miss_escalates_degraded_then_unavailable(self):
        monitor = HeartbeatMonitor(workers=1, miss_threshold=2)
        assert monitor.observe(0, 1, None) == WORKER_DEGRADED
        assert monitor.observe(0, 2, None) == WORKER_UNAVAILABLE
        assert [t["to"] for t in monitor.transitions] == [
            WORKER_DEGRADED,
            WORKER_UNAVAILABLE,
        ]

    def test_good_probe_resets_the_miss_counter(self):
        monitor = HeartbeatMonitor(workers=1, miss_threshold=2)
        monitor.observe(0, 1, None)
        assert monitor.observe(0, 2, _health(5)) == WORKER_HEALTHY
        assert monitor.misses[0] == 0
        # A single later miss degrades again instead of going straight
        # to unavailable: the counter really was reset.
        assert monitor.observe(0, 3, None) == WORKER_DEGRADED

    def test_stale_probe_carries_no_liveness_information(self):
        monitor = HeartbeatMonitor(workers=1, miss_threshold=1)
        monitor.observe(0, 5, _health(3))
        # A delayed miss for an older probe must not kill the worker.
        assert monitor.observe(0, 4, None) == WORKER_HEALTHY
        assert monitor.stale_probes == 1
        assert monitor.misses[0] == 0

    def test_journal_seq_regression_is_counted(self):
        monitor = HeartbeatMonitor(workers=1)
        monitor.observe(0, 1, _health(10))
        monitor.observe(0, 2, _health(4))
        assert monitor.seq_regressions == 1
        # Advancing again is not a second regression.
        monitor.observe(0, 3, _health(12))
        assert monitor.seq_regressions == 1

    def test_recovering_flips_healthy_on_first_good_probe(self):
        monitor = HeartbeatMonitor(workers=1, miss_threshold=1)
        monitor.observe(0, 1, None)
        monitor.mark_recovering(0, 2)
        assert monitor.states[0] == WORKER_RECOVERING
        assert monitor.observe(0, 3, _health(1)) == WORKER_HEALTHY

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(workers=0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(workers=1, miss_threshold=0)
        assert DEFAULT_MISS_THRESHOLD >= 1


@pytest.fixture
def fleet(tmp_path):
    shard_map = ShardMap.balanced(["api", "img", "web"], 3)
    supervisor = FleetSupervisor(3, tmp_path, shard_map=shard_map)
    supervisor.start()
    for name in ("api", "img", "web"):
        supervisor.dispatch(
            {
                "id": f"reg-{name}",
                "rid": f"reg-{name}",
                "op": "register",
                "pipeline": name,
                "policy": dict(POLICY),
            }
        )
    yield supervisor
    supervisor.close()


def _admit(name, task_id, rid=None):
    return {
        "id": f"a{task_id}",
        "rid": rid or f"r{task_id}",
        "op": "admit",
        "pipeline": name,
        "task": {
            "task_id": task_id,
            "arrival": 0.0,
            "deadline": 5.0,
            "costs": [0.05, 0.03],
        },
    }


class TestFleetSupervisor:
    def test_dispatch_routes_to_the_owning_shard(self, fleet):
        owner = fleet.shard_map.shard_of("api")
        before = fleet.workers[owner].durable.journal.last_seq
        response = json.loads(fleet.dispatch(_admit("api", 1))[0])
        assert response["ok"] is True
        assert fleet.workers[owner].durable.journal.last_seq == before + 1
        for shard, worker in enumerate(fleet.workers):
            if shard != owner:
                assert worker.durable.gateway.dedup_status("r1") == "unknown"

    def test_fleet_wide_ops_broadcast_in_shard_order(self, fleet):
        responses = [
            json.loads(line)
            for line in fleet.dispatch({"id": "s", "op": "stats"})
        ]
        assert len(responses) == 3
        names = [sorted(r["stats"]) for r in responses]
        assert names == [["api"], ["img"], ["web"]]

    def test_dead_worker_raises_worker_unavailable(self, fleet):
        owner = fleet.shard_map.shard_of("api")
        fleet.workers[owner].kill()
        with pytest.raises(WorkerUnavailable):
            fleet.dispatch(_admit("api", 1))

    def test_probe_heal_restarts_through_recovery(self, fleet):
        owner = fleet.shard_map.shard_of("img")
        fleet.dispatch(_admit("img", 1))
        fingerprint = fleet.workers[owner].fingerprint()
        fleet.workers[owner].kill()
        assert fleet.probe()[owner] == WORKER_DEGRADED
        assert fleet.probe()[owner] == WORKER_UNAVAILABLE
        reports = fleet.heal()
        assert len(reports) == 1 and reports[0].replayed >= 1
        assert fleet.workers[owner].restarts == 1
        assert fleet.workers[owner].fingerprint() == fingerprint
        assert fleet.probe()[owner] == WORKER_HEALTHY

    def test_after_journal_kill_is_durable_but_unacked(self, fleet):
        owner = fleet.shard_map.shard_of("web")
        doc = _admit("web", 7)
        fleet.workers[owner].kill(kind="after_journal", doc=doc)
        fleet.restart(owner)
        # Replay applied the journaled op; the retry is a dedup hit.
        worker = fleet.workers[owner]
        assert worker.durable.gateway.dedup_status("r7") == "decided"
        hits_before = worker.durable.gateway.dedup_hits
        retry = json.loads(fleet.dispatch(doc)[0])
        assert retry["ok"] is True
        assert worker.durable.gateway.dedup_hits == hits_before + 1

    def test_torn_kill_loses_nothing_durable(self, fleet):
        owner = fleet.shard_map.shard_of("web")
        doc = _admit("web", 8)
        fleet.workers[owner].kill(kind="torn", doc=doc, keep=0.5)
        report = fleet.restart(owner)
        assert report.truncated_bytes > 0
        # The op never became durable; the retry decides it afresh.
        assert fleet.workers[owner].durable.gateway.dedup_status("r8") == "unknown"
        assert json.loads(fleet.dispatch(doc)[0])["ok"] is True

    def test_restart_refuses_a_live_worker(self, fleet):
        with pytest.raises(FleetError):
            fleet.restart(0)

    def test_migrate_moves_state_and_bumps_the_map(self, fleet):
        fleet.dispatch(_admit("api", 1))
        old_owner = fleet.shard_map.shard_of("api")
        new_owner = (old_owner + 1) % 3
        old_version = fleet.shard_map.version
        new_map = fleet.migrate("api", new_owner)
        assert new_map.version == old_version + 1
        assert new_map.shard_of("api") == new_owner
        # The moved pipeline serves (with its admitted task) on the new
        # owner, and the old owner bounces it.
        stats = json.loads(
            fleet.workers[new_owner].handle_line(
                '{"id":"s","op":"stats","pipeline":"api"}'
            )[0]
        )
        assert stats["stats"]["api"]["counters"]["admitted"] == 1
        bounce = json.loads(
            fleet.workers[old_owner].handle_line(
                '{"id":"b","op":"stats","pipeline":"api"}'
            )[0]
        )
        assert bounce["error"] == "wrong-shard"

    def test_migrate_to_current_owner_is_refused(self, fleet):
        with pytest.raises(FleetError):
            fleet.migrate("api", fleet.shard_map.shard_of("api"))

    def test_fleet_health_surfaces_down_shards(self, fleet):
        owner = fleet.shard_map.shard_of("etl-like")  # any shard works
        fleet.workers[owner].kill()
        fleet.probe()
        fleet.probe()
        health = fleet.fleet_health()
        assert health["unavailable"] == [owner]
        assert health["seq_regressions"] == 0
        down = health["shards"][owner]
        assert down["state"] == WORKER_UNAVAILABLE
        assert "pipelines" not in down
        up = [s for s in health["shards"] if s["shard"] != owner]
        assert all("pipelines" in s for s in up)

    def test_fleet_stats_reports_down_shards_explicitly(self, fleet):
        fleet.workers[1].kill()
        fleet.probe()
        fleet.probe()
        stats = fleet.fleet_stats()
        assert stats["shards"]["1"] == {
            "state": WORKER_UNAVAILABLE,
            "stats": None,
        }
        # Live shards still merge into the fleet-wide pipeline view.
        live = {
            name
            for shard, entry in stats["shards"].items()
            if entry["stats"]
            for name in entry["stats"]
        }
        assert live == set(stats["pipelines"])

    def test_map_mismatch_is_rejected_at_construction(self, tmp_path):
        with pytest.raises(ValueError):
            FleetSupervisor(2, tmp_path, shard_map=ShardMap(shards=3))


class TestFleetChaosGate:
    def test_gate_passes_and_is_byte_stable(self, tmp_path):
        first = run_fleet_chaos(
            seed=0, cycles=12, workers=3, state_dir=tmp_path / "a"
        )
        assert first["format"] == FLEET_CHAOS_REPORT_FORMAT
        assert fleet_chaos_gate_failures(first) == []
        second = run_fleet_chaos(
            seed=0, cycles=12, workers=3, state_dir=tmp_path / "b"
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_seed_changes_the_trace(self, tmp_path):
        first = run_fleet_chaos(seed=0, cycles=4, workers=2, state_dir=tmp_path / "a")
        second = run_fleet_chaos(seed=1, cycles=4, workers=2, state_dir=tmp_path / "b")
        assert first["admissions"] != second["admissions"]

    @pytest.fixture(scope="class")
    def passing_report(self, tmp_path_factory):
        return run_fleet_chaos(
            seed=0,
            cycles=12,
            workers=3,
            state_dir=tmp_path_factory.mktemp("chaos"),
        )

    @pytest.mark.parametrize(
        ("path", "value", "needle"),
        [
            (("admissions", "lost"), 1, "lost"),
            (("admissions", "duplicated"), 2, "double-counted"),
            (("admissions", "unresolved"), 1, "never acknowledged"),
            (("equivalence", "fingerprint_mismatches"), 1, "fingerprint"),
            (("equivalence", "final_identical"), False, "differ"),
            (("kills", "torn"), 0, "torn"),
            (("kills", "with_pending_batch"), 0, "pending"),
            (("detection", "heartbeat"), 0, "heartbeat"),
            (("detection", "seq_regressions"), 1, "regress"),
            (("faults", "torn_frame_errors"), 0, "structured errors"),
            (("faults", "storm_journal_writes"), 3, "storm wrote"),
            (("routing", "migrations"), [], "migration"),
            (("routing", "stale_routes_resolved"), 0, "stale route"),
            (("recoveries", "snapshot_loads"), 0, "snapshot"),
        ],
    )
    def test_each_gate_trips_on_its_own_violation(
        self, passing_report, path, value, needle
    ):
        report = copy.deepcopy(passing_report)
        target = report
        for key in path[:-1]:
            target = target[key]
        target[path[-1]] = value
        failures = fleet_chaos_gate_failures(report)
        assert any(needle in failure for failure in failures), failures

    def test_min_recoveries_is_enforced(self, passing_report):
        failures = fleet_chaos_gate_failures(passing_report, min_recoveries=999)
        assert any("recoveries" in f for f in failures)


def _tcp_call(host, port, lines):
    """One connection, many request lines, parsed responses."""
    with socket.create_connection((host, port), timeout=30) as sock:
        payload = "".join(line + "\n" for line in lines).encode("utf-8")
        sock.sendall(payload)
        buf = b""
        while buf.count(b"\n") < len(lines):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return [json.loads(line) for line in buf.splitlines()]


@pytest.mark.slow_serve
class TestProcessFleet:
    def test_sigkill_respawn_recovers_durable_state(self, tmp_path):
        with ProcessFleet(2, root_dir=tmp_path) as fleet:
            shard_map = ShardMap(shards=2)
            name = "api"
            owner = shard_map.shard_of(name)
            worker = fleet.workers[owner]
            register = json.dumps(
                {
                    "id": 1,
                    "rid": "reg-1",
                    "op": "register",
                    "pipeline": name,
                    "policy": dict(POLICY),
                }
            )
            admit = json.dumps(_admit(name, 1))
            responses = _tcp_call(worker.host, worker.port, [register, admit])
            assert all(r["ok"] for r in responses)

            worker.kill()
            assert not worker.alive
            worker.spawn()
            assert worker.spawns == 2

            # Same rid across the restart: the WAL replay re-decided it,
            # so the retry is answered from the dedup window (visible in
            # the recovered worker's dedup_hits counter) and the task is
            # counted exactly once.
            retry, stats, health = _tcp_call(
                worker.host,
                worker.port,
                [
                    admit,
                    json.dumps({"id": 3, "op": "stats", "pipeline": name}),
                    json.dumps({"id": 4, "op": "health"}),
                ],
            )
            assert retry["ok"] is True
            assert stats["stats"][name]["counters"]["admitted"] == 1
            assert health["dedup_hits"] == 1

            # The other worker bounces the pipeline with a shard map.
            other = fleet.workers[1 - owner]
            (bounce,) = _tcp_call(
                other.host,
                other.port,
                [json.dumps({"id": 4, "op": "stats", "pipeline": name})],
            )
            assert bounce["error"] == "wrong-shard"
            assert bounce["shard"] == owner
