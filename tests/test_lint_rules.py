"""Per-rule unit tests: each rule fires on a minimal bad fixture and
stays silent on a minimal good one."""

import textwrap

import pytest

from repro.lint import Finding, all_rules, lint_source, rule_ids
from repro.lint.runner import SYNTAX_RULE_ID


def findings_for(source, rule, path="<snippet>"):
    """Lint a dedented snippet with a single rule selected."""
    return lint_source(textwrap.dedent(source), path=path, select=[rule])


def rules_hit(source, path="<snippet>"):
    return {f.rule for f in lint_source(textwrap.dedent(source), path=path)}


# ----------------------------------------------------------------------
# RNG001
# ----------------------------------------------------------------------


class TestRNG001:
    def test_unseeded_random_instance_fires(self):
        hits = findings_for(
            """
            import random
            rng = random.Random()
            """,
            "RNG001",
        )
        assert len(hits) == 1
        assert "seed" in hits[0].message

    def test_module_level_draw_fires(self):
        assert findings_for("import random\nx = random.uniform(0, 1)\n", "RNG001")

    def test_module_level_seed_call_fires(self):
        assert findings_for("import random\nrandom.seed(7)\n", "RNG001")

    def test_system_random_fires(self):
        assert findings_for("import random\nr = random.SystemRandom()\n", "RNG001")

    def test_from_import_draw_fires(self):
        assert findings_for(
            "from random import expovariate\nx = expovariate(2.0)\n", "RNG001"
        )

    def test_aliased_module_fires(self):
        assert findings_for("import random as rnd\nx = rnd.random()\n", "RNG001")

    def test_seeded_instance_is_clean(self):
        assert not findings_for(
            """
            import random
            rng = random.Random(42)
            x = rng.random()
            """,
            "RNG001",
        )

    def test_scoped_to_stochastic_packages(self):
        bad = "import random\nx = random.random()\n"
        assert findings_for(bad, "RNG001", path="src/repro/sim/workload.py")
        assert findings_for(bad, "RNG001", path="src/repro/apps/tsce.py")
        assert findings_for(bad, "RNG001", path="src/repro/experiments/fig4.py")
        # Pure analysis code is out of scope for RNG001.
        assert not findings_for(bad, "RNG001", path="src/repro/analysis/periodic.py")

    def test_unrelated_random_name_is_clean(self):
        # A local function named `random` on another object is not the module.
        assert not findings_for("x = numpy.random()\n", "RNG001")


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------


class TestDET001:
    def test_wall_clock_fires(self):
        assert findings_for("import time\nnow = time.time()\n", "DET001")

    def test_perf_counter_fires(self):
        assert findings_for("import time\nt0 = time.perf_counter()\n", "DET001")

    def test_datetime_now_fires(self):
        assert findings_for(
            "from datetime import datetime\nts = datetime.now()\n", "DET001"
        )

    def test_set_iteration_feeding_heappush_fires(self):
        hits = findings_for(
            """
            import heapq
            heap = []
            for item in {3, 1, 2}:
                heapq.heappush(heap, item)
            """,
            "DET001",
        )
        assert len(hits) == 1
        assert "set" in hits[0].message

    def test_set_call_iteration_feeding_heappush_fires(self):
        assert findings_for(
            """
            import heapq
            def rebuild(heap, items):
                for item in set(items):
                    heapq.heappush(heap, item)
            """,
            "DET001",
        )

    def test_sorted_iteration_is_clean(self):
        assert not findings_for(
            """
            import heapq
            def rebuild(heap, items):
                for item in sorted(set(items)):
                    heapq.heappush(heap, item)
            """,
            "DET001",
        )

    def test_simulation_clock_attribute_is_clean(self):
        # sim.time / self.now attribute reads are simulation time, not host time.
        assert not findings_for("now = sim.now\nt = self.time\n", "DET001")

    def test_scoped_to_sim(self):
        bad = "import time\nnow = time.time()\n"
        assert findings_for(bad, "DET001", path="src/repro/sim/engine.py")
        # Benchmarks legitimately measure wall time.
        assert not findings_for(bad, "DET001", path="benchmarks/bench_fig4.py")


# ----------------------------------------------------------------------
# FLT001
# ----------------------------------------------------------------------


class TestFLT001:
    def test_vocabulary_attributes_fire(self):
        assert findings_for("ok = t.deadline == t.period\n", "FLT001")

    def test_annotated_float_params_fire(self):
        assert findings_for(
            """
            def same(a: float, b: float) -> bool:
                return a == b
            """,
            "FLT001",
        )

    def test_inferred_assignment_chain_fires(self):
        # r is float-typed through the wcet vocabulary; r_next through r.
        assert findings_for(
            """
            def converge(task, limit):
                r = task.wcet + task.blocking
                for _ in range(limit):
                    r_next = task.wcet + interference(r)
                    if r_next == r:
                        return r
                    r = r_next
            """,
            "FLT001",
        )

    def test_not_eq_fires(self):
        assert findings_for("changed = new_jitter != old_jitter\n", "FLT001")

    def test_float_literal_comparison_fires(self):
        assert findings_for(
            """
            def guard(utilization: float) -> bool:
                return utilization == 1.0
            """,
            "FLT001",
        )

    def test_approx_eq_call_is_clean(self):
        assert not findings_for(
            "ok = approx_eq(t.deadline, t.period)\n", "FLT001"
        )

    def test_int_sentinel_comparison_is_clean(self):
        # Comparing a float against the int literal 0 is the idiomatic
        # exact "no computation" sentinel check.
        assert not findings_for("empty = task.total_computation == 0\n", "FLT001")

    def test_non_float_names_are_clean(self):
        assert not findings_for("same = left == right\n", "FLT001")

    def test_ordering_comparisons_are_clean(self):
        assert not findings_for("late = t.deadline < t.period\n", "FLT001")

    def test_noqa_suppresses(self):
        assert not findings_for(
            "ok = t.deadline == t.period  # repro: noqa[FLT001]\n", "FLT001"
        )


# ----------------------------------------------------------------------
# FLT002
# ----------------------------------------------------------------------


class TestFLT002:
    def test_budget_comparison_fires(self):
        hits = findings_for("fits = u <= budget\n", "FLT002")
        assert len(hits) == 1
        assert "approx" in hits[0].message

    def test_deadline_comparison_fires(self):
        assert findings_for("late = t > deadline\n", "FLT002")

    def test_attribute_deadline_fires(self):
        assert findings_for(
            "settled = r.absolute_deadline <= horizon\n", "FLT002"
        )

    def test_strict_orderings_fire(self):
        assert findings_for("over = value > region_budget(a, b)\n", "FLT002")
        assert findings_for("under = remaining_budget < x\n", "FLT002")

    def test_integer_sentinel_is_clean(self):
        # Validations against exact non-float literals are not boundary
        # decisions: `deadline <= 0` is an argument check.
        assert not findings_for("bad = deadline <= 0\n", "FLT002")
        assert not findings_for("bad = 0 < deadline\n", "FLT002")

    def test_float_literal_boundary_fires(self):
        assert findings_for("tight = deadline <= 1.5\n", "FLT002")

    def test_unrelated_names_are_clean(self):
        assert not findings_for("less = left < right\n", "FLT002")
        assert not findings_for("done = count >= limit\n", "FLT002")

    def test_equality_is_flt001_territory(self):
        assert not findings_for("same = deadline == other\n", "FLT002")

    def test_noqa_suppresses(self):
        assert not findings_for(
            "fits = u <= budget  # repro: noqa[FLT002]\n", "FLT002"
        )


# ----------------------------------------------------------------------
# HEAP001
# ----------------------------------------------------------------------


class TestHEAP001:
    def test_tuple_without_tiebreak_fires(self):
        hits = findings_for(
            """
            import heapq
            def push(heap, deadline, task):
                heapq.heappush(heap, (deadline, task))
            """,
            "HEAP001",
        )
        assert len(hits) == 1
        assert "tie-break" in hits[0].message

    def test_sequence_field_is_clean(self):
        assert not findings_for(
            """
            import heapq
            def push(heap, deadline, seq, task):
                heapq.heappush(heap, (deadline, seq, task))
            """,
            "HEAP001",
        )

    def test_id_suffix_field_is_clean(self):
        assert not findings_for(
            """
            import heapq
            def push(heap, expiry, task):
                heapq.heappush(heap, (expiry, task.task_id))
            """,
            "HEAP001",
        )

    def test_next_counter_call_is_clean(self):
        assert not findings_for(
            """
            import heapq
            import itertools
            counter = itertools.count()
            def push(heap, key, task):
                heapq.heappush(heap, (key, next(counter), task))
            """,
            "HEAP001",
        )

    def test_non_tuple_push_is_clean(self):
        assert not findings_for(
            """
            import heapq
            def push(heap, handle):
                heapq.heappush(heap, handle)
            """,
            "HEAP001",
        )

    def test_single_element_tuple_is_clean(self):
        assert not findings_for(
            "import heapq\nheapq.heappush(h, (t,))\n", "HEAP001"
        )


# ----------------------------------------------------------------------
# MUT001
# ----------------------------------------------------------------------


class TestMUT001:
    def test_list_default_fires(self):
        assert findings_for("def f(acc=[]):\n    return acc\n", "MUT001")

    def test_dict_default_fires(self):
        assert findings_for("def f(cache={}):\n    return cache\n", "MUT001")

    def test_set_constructor_default_fires(self):
        assert findings_for("def f(seen=set()):\n    return seen\n", "MUT001")

    def test_kwonly_default_fires(self):
        assert findings_for("def f(*, acc=[]):\n    return acc\n", "MUT001")

    def test_none_default_is_clean(self):
        assert not findings_for(
            """
            def f(acc=None):
                if acc is None:
                    acc = []
                return acc
            """,
            "MUT001",
        )

    def test_immutable_defaults_are_clean(self):
        assert not findings_for("def f(a=0, b=(), c='x', d=None):\n    pass\n", "MUT001")


# ----------------------------------------------------------------------
# MDL001
# ----------------------------------------------------------------------


class TestMDL001:
    def test_stage_cost_exceeding_deadline_fires(self):
        hits = findings_for(
            "t = make_task(0.0, deadline=2.0, computation_times=[1.0, 3.0])\n",
            "MDL001",
        )
        assert len(hits) == 1
        assert "stage-1" in hits[0].message

    def test_positional_arguments_fire(self):
        assert findings_for("t = make_task(0.0, 2.0, [3.0])\n", "MDL001")

    def test_periodic_spec_implicit_deadline_uses_period(self):
        assert findings_for(
            "s = periodic_spec('radar', period=1.0, computation_times=[2.0])\n",
            "MDL001",
        )

    def test_periodic_spec_explicit_deadline_overrides_period(self):
        assert not findings_for(
            "s = periodic_spec('radar', period=1.0, computation_times=[2.0], deadline=5.0)\n",
            "MDL001",
        )

    def test_feasible_literals_are_clean(self):
        assert not findings_for(
            "t = make_task(0.0, deadline=10.0, computation_times=[1.0, 2.0])\n",
            "MDL001",
        )

    def test_non_literal_arguments_are_skipped(self):
        assert not findings_for(
            "t = make_task(0.0, deadline=d, computation_times=costs)\n", "MDL001"
        )


# ----------------------------------------------------------------------
# MDL002
# ----------------------------------------------------------------------


class TestMDL002:
    def test_two_node_cycle_fires(self):
        hits = findings_for(
            """
            g = TaskGraph(
                resource_of={"a": 1, "b": 2},
                edges=[("a", "b"), ("b", "a")],
            )
            """,
            "MDL002",
        )
        assert len(hits) == 1
        assert "cycle" in hits[0].message

    def test_self_loop_fires(self):
        assert findings_for(
            'g = TaskGraph(resource_of={"a": 1}, edges=[("a", "a")])\n', "MDL002"
        )

    def test_longer_cycle_fires(self):
        assert findings_for(
            """
            g = TaskGraph(
                resource_of={"a": 1, "b": 2, "c": 3},
                edges=[("a", "b"), ("b", "c"), ("c", "a")],
            )
            """,
            "MDL002",
        )

    def test_dag_is_clean(self):
        assert not findings_for(
            """
            g = TaskGraph(
                resource_of={"a": 1, "b": 2, "c": 3},
                edges=[("a", "b"), ("a", "c"), ("b", "c")],
            )
            """,
            "MDL002",
        )

    def test_non_literal_edges_are_skipped(self):
        assert not findings_for(
            "g = TaskGraph(resource_of=r, edges=build_edges())\n", "MDL002"
        )


# ----------------------------------------------------------------------
# MDL003
# ----------------------------------------------------------------------


class TestMDL003:
    @pytest.mark.parametrize("alpha", ["0", "0.0", "-0.5", "1.5", "2"])
    def test_out_of_range_alpha_fires(self, alpha):
        assert findings_for(f"ok = is_pipeline_feasible(us, alpha={alpha})\n", "MDL003")

    @pytest.mark.parametrize("alpha", ["1", "1.0", "0.5", "0.001"])
    def test_valid_alpha_is_clean(self, alpha):
        assert not findings_for(
            f"ok = is_pipeline_feasible(us, alpha={alpha})\n", "MDL003"
        )

    def test_non_literal_alpha_is_skipped(self):
        assert not findings_for(
            "ok = is_pipeline_feasible(us, alpha=policy.alpha(ds))\n", "MDL003"
        )


# ----------------------------------------------------------------------
# MDL004
# ----------------------------------------------------------------------


class TestMDL004:
    def test_beta_list_summing_past_one_fires(self):
        hits = findings_for(
            "b = region_budget(alpha=1.0, betas=[0.6, 0.5])\n", "MDL004"
        )
        assert len(hits) == 1
        assert "Eq. 15" in hits[0].message

    def test_beta_dict_summing_past_one_fires(self):
        assert findings_for(
            'ok = graph.is_feasible(us, betas={"cpu": 0.7, "disk": 0.4})\n', "MDL004"
        )

    def test_single_beta_at_one_fires(self):
        assert findings_for("bound = single_resource_bound(beta=1.0)\n", "MDL004")

    def test_small_blocking_is_clean(self):
        assert not findings_for(
            "b = region_budget(alpha=1.0, betas=[0.1, 0.2])\n", "MDL004"
        )

    def test_non_literal_betas_are_skipped(self):
        assert not findings_for(
            "b = region_budget(alpha=1.0, betas=computed)\n", "MDL004"
        )


# ----------------------------------------------------------------------
# Framework behavior
# ----------------------------------------------------------------------


class TestFramework:
    def test_all_rules_registered(self):
        assert rule_ids() == [
            "DET001",
            "FLT001",
            "FLT002",
            "HEAP001",
            "MDL001",
            "MDL002",
            "MDL003",
            "MDL004",
            "MUT001",
            "RNG001",
        ]

    def test_every_rule_has_summary_and_id(self):
        for rule in all_rules():
            assert rule.rule_id
            assert rule.summary

    def test_bare_noqa_suppresses_everything(self):
        assert not rules_hit("rng = random.Random()  # repro: noqa\n")

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = "import random\nrng = random.Random()  # repro: noqa[FLT001]\n"
        assert "RNG001" in rules_hit(src)

    def test_syntax_error_reported_as_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == [SYNTAX_RULE_ID]

    def test_findings_sorted_and_stable(self):
        src = textwrap.dedent(
            """
            import random
            b = random.random()
            a = random.random()
            """
        )
        findings = lint_source(src, path="snippet.py")
        assert findings == sorted(findings)
        assert all(isinstance(f, Finding) for f in findings)

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", select=["NOPE999"])
