"""Differential tests for :class:`repro.core.numeric.ExactSum`.

The accumulator's contract is bitwise ``math.fsum`` parity: after any
sequence of adds and removals, ``value()`` must equal ``fsum`` over the
multiset of addends still included — for every intermediate state, not
just the final one.  These tests drive seeded random operation streams
(including negative zeros, subnormals, and values at the ``2**-1074``
granularity floor) against that fsum oracle, and pin the same contract
through :class:`~repro.core.synthetic.StageUtilizationTracker`'s full
op vocabulary (add / remove / expire / idle-reset / shed).
"""

import json
import math
import random

import pytest

from repro.core.numeric import ExactSum
from repro.core.synthetic import StageUtilizationTracker

#: Smallest positive subnormal double: the accumulator's unit.
TINY = math.ldexp(1.0, -1074)


def _random_float(rng):
    """One float from a mix of regimes that stress rounding paths."""
    kind = rng.randrange(8)
    if kind == 0:
        return 0.0
    if kind == 1:
        return -0.0
    if kind == 2:
        return rng.randrange(1, 50) * TINY * (1 if rng.random() < 0.5 else -1)
    if kind == 3:  # subnormal-range magnitudes
        return math.ldexp(rng.random(), -1050) * (1 if rng.random() < 0.5 else -1)
    if kind == 4:  # large magnitudes: force the >53-bit rounding branch
        return rng.uniform(-1.0, 1.0) * 2.0 ** rng.randrange(0, 400)
    if kind == 5:  # utilization-scale values, the production regime
        return rng.uniform(0.0, 0.2)
    if kind == 6:  # exact dyadics: sums hit ties often
        return math.ldexp(rng.randrange(-8, 9), rng.randrange(-60, 4))
    return rng.uniform(-1e6, 1e6)


def _assert_bitwise(got, want):
    """Bitwise float equality (repr distinguishes -0.0 from +0.0)."""
    # repro: noqa[FLT001] — bitwise parity is the property under test
    assert repr(got) == repr(want), f"{got!r} != fsum {want!r}"


class TestUnit:
    def test_empty_sum_is_positive_zero(self):
        _assert_bitwise(ExactSum().value(), 0.0)

    def test_negative_zero_addends_yield_positive_zero(self):
        # fsum never returns -0.0; neither does the accumulator.
        acc = ExactSum()
        acc.add(-0.0)
        acc.add(-0.0)
        _assert_bitwise(acc.value(), math.fsum([-0.0, -0.0]))
        assert acc.is_zero()

    def test_exact_cancellation_returns_to_zero(self):
        acc = ExactSum()
        values = [0.1, 0.2, 0.3, 1e300, TINY, -0.7]
        acc.add_all(values)
        for v in values:
            acc.subtract(v)
        assert acc.is_zero()
        _assert_bitwise(acc.value(), 0.0)

    def test_subtract_is_exact_inverse_of_add(self):
        rng = random.Random(7)
        acc = ExactSum()
        baseline = [_random_float(rng) for _ in range(50)]
        acc.add_all(baseline)
        before = acc.value()
        for _ in range(200):
            x = _random_float(rng)
            acc.add(x)
            acc.subtract(x)
            _assert_bitwise(acc.value(), before)

    def test_order_independence(self):
        rng = random.Random(11)
        values = [_random_float(rng) for _ in range(80)]
        reference = ExactSum()
        reference.add_all(values)
        for seed in range(5):
            shuffled = list(values)
            random.Random(seed).shuffle(shuffled)
            acc = ExactSum()
            acc.add_all(shuffled)
            assert acc == reference
            _assert_bitwise(acc.value(), reference.value())

    @pytest.mark.parametrize(
        "values",
        [
            # Exact halfway cases: rounding must go to the even significand.
            [1.0, math.ldexp(1.0, -53)],           # tie, round down (even)
            [1.0 + math.ldexp(1.0, -52), math.ldexp(1.0, -53)],  # tie, up
            [math.ldexp(1.0, 60), 0.5, 0.5],       # tie built from halves
            [1e16, 1.0],                            # above/below halfway
            [1e16, 3.0],
            [TINY] * 3,                             # subnormal exactness
            [math.ldexp(1.0, -1074), math.ldexp(1.0, -1073)],
        ],
    )
    def test_rounding_matches_fsum(self, values):
        acc = ExactSum()
        acc.add_all(values)
        _assert_bitwise(acc.value(), math.fsum(values))

    def test_rejects_non_finite(self):
        acc = ExactSum()
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises((OverflowError, ValueError)):
                acc.add(bad)
            with pytest.raises((OverflowError, ValueError)):
                acc.subtract(bad)
            with pytest.raises(ValueError):
                acc.load_float(bad)

    def test_load_float_adopts_value_exactly(self):
        acc = ExactSum()
        acc.load_float(0.30000000000000004)
        _assert_bitwise(acc.value(), 0.30000000000000004)
        acc.subtract(0.30000000000000004)
        assert acc.is_zero()

    def test_copy_is_independent(self):
        acc = ExactSum()
        acc.add(0.25)
        dup = acc.copy()
        dup.add(0.5)
        _assert_bitwise(acc.value(), 0.25)
        _assert_bitwise(dup.value(), 0.75)

    def test_state_round_trip_is_json_safe_and_exact(self):
        rng = random.Random(3)
        acc = ExactSum()
        acc.add_all(_random_float(rng) for _ in range(60))
        wire = json.loads(json.dumps(acc.state()))
        again = ExactSum.from_state(wire)
        assert again == acc
        _assert_bitwise(again.value(), acc.value())

    @pytest.mark.parametrize(
        "state", [{}, {"fixed": "zz"}, {"fixed": None}, {"other": "0x0"}]
    )
    def test_malformed_state_raises(self, state):
        with pytest.raises(ValueError, match="malformed ExactSum state"):
            ExactSum.from_state(state)

    def test_equality_and_hash_follow_exact_state(self):
        a, b = ExactSum(), ExactSum()
        a.add(0.1)
        a.add(0.2)
        b.add(0.2)
        b.add(0.1)
        assert a == b and hash(a) == hash(b)
        b.add(TINY)  # below float resolution of the sum, still unequal
        _assert_bitwise(a.value(), b.value())
        assert a != b


class TestDifferentialVsFsum:
    """Seeded random add/remove streams against an fsum oracle.

    Every intermediate total — not just the final one — must be the
    bitwise fsum of the surviving multiset.
    """

    @pytest.mark.parametrize("seed", range(12))
    def test_stream_matches_fsum_at_every_step(self, seed):
        rng = random.Random(seed)
        acc = ExactSum()
        live = []  # oracle multiset
        for step in range(400):
            if live and rng.random() < 0.45:
                x = live.pop(rng.randrange(len(live)))
                acc.subtract(x)
            else:
                x = _random_float(rng)
                live.append(x)
                acc.add(x)
            _assert_bitwise(acc.value(), math.fsum(live))
        for x in live:  # drain back to exact zero
            acc.subtract(x)
        assert acc.is_zero()

    @pytest.mark.parametrize("seed", range(4))
    def test_granularity_floor_streams(self, seed):
        """Pure 2**-1074-granularity traffic: every bit matters."""
        rng = random.Random(100 + seed)
        acc = ExactSum()
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                x = live.pop(rng.randrange(len(live)))
                acc.subtract(x)
            else:
                x = rng.randrange(-6, 7) * TINY
                live.append(x)
                acc.add(x)
            _assert_bitwise(acc.value(), math.fsum(live))

    def test_catastrophic_cancellation(self):
        acc = ExactSum()
        values = [1e308, 1.0, -1e308, TINY]
        acc.add_all(values)
        _assert_bitwise(acc.value(), math.fsum(values))
        acc.subtract(TINY)
        acc.subtract(1.0)
        _assert_bitwise(acc.value(), 0.0)


class TestTrackerDifferential:
    """The tracker's cached total stays the bitwise fsum of its multiset
    through its full op vocabulary, for arbitrary seeded histories."""

    @staticmethod
    def _contribution(rng):
        kind = rng.randrange(6)
        if kind == 0:
            return 0.0
        if kind == 1:
            return rng.randrange(0, 40) * TINY
        if kind == 2:
            return math.ldexp(rng.random(), -1060)
        return rng.uniform(0.0, 0.15)

    @pytest.mark.parametrize("seed", range(8))
    def test_op_stream_matches_fsum_oracle(self, seed):
        rng = random.Random(seed)
        tracker = StageUtilizationTracker()
        oracle = {}  # task_id -> (contribution, expiry)
        departed = set()
        clock = 0.0
        next_id = 0
        for _ in range(300):
            op = rng.choice(
                ["add", "add", "add", "remove", "expire", "depart", "reset"]
            )
            if op == "add":
                contribution = self._contribution(rng)
                expiry = clock + rng.uniform(0.01, 3.0)
                tracker.add(next_id, contribution, expiry)
                oracle[next_id] = (contribution, expiry)
                next_id += 1
            elif op == "remove" and oracle:  # shedding path
                victim = rng.choice(sorted(oracle))
                got = tracker.remove(victim)
                want, _ = oracle.pop(victim)
                departed.discard(victim)
                _assert_bitwise(got, want)
            elif op == "expire":
                clock += rng.uniform(0.0, 0.5)
                tracker.expire_until(clock)
                for k in [k for k, (_, e) in oracle.items() if e <= clock]:
                    del oracle[k]
                    departed.discard(k)
            elif op == "depart" and oracle:
                chosen = rng.choice(sorted(oracle))
                tracker.mark_departed(chosen)
                departed.add(chosen)
            elif op == "reset":
                tracker.reset_on_idle()
                for k in departed:
                    oracle.pop(k, None)
                departed.clear()
            want_sum = math.fsum(c for c, _ in oracle.values())
            cached, exact = tracker.audit_sums()
            _assert_bitwise(cached, want_sum)
            _assert_bitwise(exact, want_sum)
            _assert_bitwise(tracker.fsum_contributions(), want_sum)
            assert len(tracker) == len(oracle)

    def test_pending_idle_release_matches_reset_release(self):
        """Regression (ISSUE 5 satellite): ``pending_idle_release`` must
        predict exactly what ``reset_on_idle`` then releases, without a
        membership re-check — departed entries are live by construction.
        """
        for seed in range(6):
            rng = random.Random(50 + seed)
            tracker = StageUtilizationTracker()
            for task_id in range(40):
                tracker.add(task_id, self._contribution(rng), 100.0)
                if rng.random() < 0.5:
                    tracker.mark_departed(task_id)
            # Exercise the interleavings that historically forced the
            # re-check: departed tasks that were since shed or expired
            # must already have left the departed set.
            for task_id in range(0, 40, 7):
                tracker.remove(task_id)
            tracker.expire_until(0.0)
            predicted = tracker.pending_idle_release()
            released = tracker.reset_on_idle()
            _assert_bitwise(released, predicted)
            assert tracker.pending_idle_release() == 0.0
            assert tracker.departed_ids() == frozenset()

    def test_value_is_exact_after_heavy_churn(self):
        rng = random.Random(2)
        tracker = StageUtilizationTracker(reserved=0.05)
        oracle = {}
        for round_no in range(30):
            for _ in range(20):
                task_id = (round_no, rng.randrange(10 ** 6))
                contribution = self._contribution(rng)
                tracker.add(task_id, contribution, float(round_no) + 1.5)
                oracle[task_id] = contribution
            tracker.expire_until(float(round_no))
            oracle = {
                k: c for k, c in oracle.items() if k[0] + 1.5 > round_no
            }
        want = math.fsum(oracle.values())
        _assert_bitwise(tracker.dynamic_value, max(want, 0.0))
        _assert_bitwise(tracker.value, 0.05 + max(want, 0.0))
