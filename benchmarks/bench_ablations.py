"""Ablation benchmarks for the design choices DESIGN.md calls out.

- idle-reset rule on/off (Section 4's anti-pessimism tool);
- admission-wait budget (Section 5's 200 ms queue);
- urgency-inversion alpha: sound vs unsound budgets under random
  priorities (Eq. 12);
- PCP blocking: blocking-aware vs blocking-blind budgets (Eq. 15).
"""

from repro.experiments import ablations

from conftest import run_once


def test_ablation_reset(benchmark):
    result = run_once(
        benchmark,
        ablations.run_reset_ablation,
        loads=(0.6, 1.0, 1.4, 2.0),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()
    on, off = result.series
    # The reset rule is worth >20 utilization points at/above capacity.
    for load in (1.0, 1.4, 2.0):
        assert on.y_at(load) > off.y_at(load) + 0.2
    # Without resets, accepted utilization saturates near the static
    # per-stage bound.
    assert max(off.ys()) < 0.62


def test_ablation_wait(benchmark):
    result = run_once(
        benchmark,
        ablations.run_wait_ablation,
        waits=(0.0, 5.0, 20.0, 50.0),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()
    accept, miss = result.series
    assert accept.y_at(50.0) >= accept.y_at(0.0)
    assert max(miss.ys()) == 0.0  # waiting never breaks the guarantee


def test_ablation_alpha(benchmark):
    result = run_once(
        benchmark,
        ablations.run_alpha_ablation,
        loads=(0.8, 1.2, 1.6),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()
    by_label = {s.label: s for s in result.series}
    dm_miss = by_label["DM, budget 1 miss"]
    sound = next(
        s
        for label, s in by_label.items()
        if label.startswith("random, budget 0") and label.endswith("miss")
    )
    assert max(dm_miss.ys()) == 0.0
    assert max(sound.ys()) == 0.0


def test_ablation_blocking(benchmark):
    result = run_once(
        benchmark,
        ablations.run_blocking_ablation,
        loads=(0.8, 1.2),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()
    aware_miss = result.series[0]
    aware_accept = result.series[1]
    blind_accept = result.series[3]
    # The blocking-aware budget never misses.
    assert max(aware_miss.ys()) == 0.0
    # It pays with a (slightly) lower accept ratio than the blind run.
    for load in (0.8, 1.2):
        assert aware_accept.y_at(load) <= blind_accept.y_at(load) + 0.02


def test_ablation_overrun(benchmark):
    result = run_once(
        benchmark,
        ablations.run_overrun_ablation,
        overrun_factors=(1.0, 1.25, 1.5, 2.0),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()
    miss = result.series[0]
    # Exact declarations keep the guarantee.
    assert miss.y_at(1.0) == 0.0
    # Degradation is graceful: even 2x overruns stay below 20% misses.
    assert miss.y_at(2.0) < 0.2
    # Monotone trend in the overrun factor.
    assert miss.y_at(2.0) >= miss.y_at(1.25) - 0.01
