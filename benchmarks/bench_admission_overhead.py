"""Microbenchmarks of the admission test itself.

The paper's complexity claim: the admission test is O(N) in the number
of pipeline stages and *independent of the number of tasks in the
system* — "a great advantage in systems that expect a very high
workload (e.g., thousands of concurrent tasks)".
"""

import pytest

from repro.core.admission import PipelineAdmissionController
from repro.core.task import make_task


def _fill(controller, count, num_stages):
    """Admit ``count`` long-lived small tasks."""
    for i in range(count):
        task = make_task(
            0.0,
            1e9,
            [1.0] * num_stages,
            task_id=10_000_000 + i,
        )
        decision = controller.request(task, now=0.0)
        assert decision.admitted


@pytest.mark.parametrize("resident_tasks", [10, 1000, 10_000])
def test_request_independent_of_task_count(benchmark, resident_tasks):
    """Per-request latency stays flat as resident tasks grow 1000x."""
    controller = PipelineAdmissionController(num_stages=3)
    _fill(controller, resident_tasks, 3)
    probe = make_task(0.0, 1e9, [1.0, 1.0, 1.0], task_id=1)

    def request_and_withdraw():
        decision = controller.request(probe, now=0.0)
        assert decision.admitted
        controller.withdraw(probe.task_id)

    benchmark(request_and_withdraw)


@pytest.mark.parametrize("num_stages", [1, 4, 16, 64])
def test_request_scales_linearly_with_stages(benchmark, num_stages):
    """Per-request cost grows O(N) with the number of stages."""
    controller = PipelineAdmissionController(num_stages=num_stages)
    probe = make_task(0.0, 1e9, [1.0] * num_stages, task_id=2)

    def request_and_withdraw():
        decision = controller.request(probe, now=0.0)
        assert decision.admitted
        controller.withdraw(probe.task_id)

    benchmark(request_and_withdraw)


def test_simulation_throughput(benchmark):
    """End-to-end simulator throughput: tasks simulated per benchmark
    round for a 2-stage pipeline at full load (a harness cost record,
    not a paper artifact)."""
    from repro.sim.pipeline import run_pipeline_simulation
    from repro.sim.workload import balanced_workload

    workload = balanced_workload(2, load=1.0, resolution=100.0)

    def simulate():
        report = run_pipeline_simulation(workload, horizon=500.0, seed=3)
        assert report.miss_ratio() == 0.0
        return report.generated

    generated = benchmark(simulate)
    assert generated > 0
