"""Hot-path microbenchmarks for the exact-accumulator PR.

Four costs this PR attacks, each measured against the code it replaced:

- tracker churn (remove + re-add at N in-flight contributions): the
  exact accumulator's O(1) removal vs the historical full-``fsum``
  recompute, swept across in-flight populations.  The acceptance bar —
  >= 10x at 10k in-flight — is asserted here, not just reported;
- batched admission throughput (``admit_many``) over a shedding-heavy
  trace, the consumer of the tracker hot path;
- gateway ``handle_line`` ops/sec through the full protocol stack, the
  consumer of the response fast path;
- the ``admit_response`` fragment encoder vs the generic sorted-keys
  ``ok_response`` encoder it specializes.

Run via ``make bench`` (folded into ``BENCH_core.json``) or, at
reduced iterations with a regression gate against the committed
baseline, via ``make bench-smoke``.
"""

import json
import math
import os
import random
import time

from repro.core.admission import PipelineAdmissionController
from repro.core.synthetic import StageUtilizationTracker
from repro.core.task import make_task
from repro.serve.gateway import AdmissionGateway, GatewayServer
from repro.serve.protocol import (
    NdjsonFramer,
    admit_response,
    ok_response,
    task_to_wire,
)

from conftest import run_best, run_once

NUM_STAGES = 3

#: ``REPRO_BENCH_SMOKE=1`` shrinks every workload ~5x so the CI
#: regression gate (``make bench-smoke``) finishes in seconds.  The
#: committed baseline ``benchmarks/BASELINE_core.json`` was recorded in
#: smoke mode, so the gate compares like for like.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Churn cycles (remove + re-add) per sweep point.
CHURN_CYCLES = 800 if SMOKE else 4000

#: Churn sweep over in-flight populations.
SWEEP = (100, 1000, 10_000)

#: Trace length for the admission / gateway throughput benchmarks.
TRACE_LEN = 1000 if SMOKE else 4000

#: Iterations for the response-encoder comparison.
ENCODE_ITERS = 4000 if SMOKE else 20_000

#: ISSUE 5 acceptance floor for the 10k-in-flight churn speedup.  The
#: structural win survives reduced iterations, but smoke runs share CI
#: machines, so the smoke floor leaves headroom for noise.
MIN_SPEEDUP_AT_10K = 5.0 if SMOKE else 10.0

#: ISSUE 10 target: gateway ingest at batch 32 vs the committed
#: pre-vectorization smoke baseline.  The constant is the
#: ``test_gateway_handle_line_throughput`` min from
#: ``benchmarks/BASELINE_core.json`` as committed by PR 9 (1000-line
#: smoke trace, unbatched scalar path) — kept verbatim so the gate
#: survives the baseline file being regenerated with the fast path in.
PRE_VECTORIZED_SMOKE_SECONDS = 0.03485236000051373

#: The issue asked for >= 5x.  Measured reality after vectorizing every
#: layer (batched region evaluation, fused frame decode, batched
#: response encode): 2.5-2.9x depending on machine weather, against a
#: component floor of ~8-9.5 us/line — orjson decode + task decode +
#: the exact-arithmetic admission engine alone exceed the 7 us/line a
#: 5x multiple of the pinned baseline would require (the full audit is
#: DESIGN.md section 16.6).  The *enforced* floor below keeps the same
#: ~2x noise headroom the churn gate uses (5x smoke vs 10x full); the
#: 5x figure is kept as the documented target so the shortfall stays
#: visible in the printed report rather than silently redefined away.
TARGET_GATEWAY_SPEEDUP = 5.0
MIN_GATEWAY_SPEEDUP = 2.0

#: Admission batch size for the gateway throughput benchmark (the
#: ISSUE 10 acceptance point).
GATEWAY_MAX_BATCH = 32


class _FsumBaselineTracker:
    """The pre-accumulator bookkeeping, reduced to its churn hot path.

    Incremental adds, full ``fsum`` recompute over the surviving
    contributions on every removal — O(n) per remove, exactly what
    ``StageUtilizationTracker.remove`` did before the exact
    accumulator (the heap and departed-set bookkeeping, identical in
    both schemes, is left out of both sides of the comparison).
    """

    def __init__(self):
        self._contribs = {}
        self._sum = 0.0

    def add(self, task_id, contribution):
        self._contribs[task_id] = contribution
        self._sum += contribution

    def remove(self, task_id):
        contribution = self._contribs.pop(task_id)
        self._sum = math.fsum(self._contribs.values())
        return contribution


class _ExactChurnTracker:
    """The same reduced churn surface over the production accumulator."""

    def __init__(self):
        self._inner = StageUtilizationTracker()

    def add(self, task_id, contribution):
        self._inner.add(task_id, contribution, expiry=math.inf)

    def remove(self, task_id):
        return self._inner.remove(task_id)


def _churn_seconds(make_tracker, in_flight, cycles, repeats=3):
    """Best-of-``repeats`` wall time for a remove+re-add churn loop."""
    rng = random.Random(in_flight)
    contributions = [rng.uniform(1e-6, 1e-3) for _ in range(in_flight)]
    best = math.inf
    for _ in range(repeats):
        tracker = make_tracker()
        for task_id, contribution in enumerate(contributions):
            tracker.add(task_id, contribution)
        victims = [rng.randrange(in_flight) for _ in range(cycles)]
        start = time.perf_counter()
        for cycle, victim in enumerate(victims):
            contribution = tracker.remove(victim)
            tracker.add(victim, contribution)
        best = min(best, time.perf_counter() - start)
    return best


def test_tracker_churn_sweep(benchmark):
    """Exact-accumulator churn vs the fsum baseline, swept over load.

    Prints ops/sec for both schemes at each in-flight population and
    asserts the acceptance-criterion speedup at 10k in-flight.
    """
    results = {}

    def run():
        for in_flight in SWEEP:
            exact = _churn_seconds(_ExactChurnTracker, in_flight, CHURN_CYCLES)
            fsum_base = _churn_seconds(
                _FsumBaselineTracker, in_flight, CHURN_CYCLES
            )
            results[in_flight] = {
                "exact_ops_per_sec": CHURN_CYCLES / exact,
                "fsum_ops_per_sec": CHURN_CYCLES / fsum_base,
                "speedup": fsum_base / exact,
            }
        return results

    run_once(benchmark, run)
    print("\ntracker churn (remove + re-add), exact accumulator vs fsum recompute:")
    for in_flight, row in results.items():
        print(
            f"  in-flight {in_flight:>6}: "
            f"exact {row['exact_ops_per_sec']:>12,.0f} ops/s   "
            f"fsum {row['fsum_ops_per_sec']:>12,.0f} ops/s   "
            f"speedup {row['speedup']:>7.1f}x"
        )
    assert results[10_000]["speedup"] >= MIN_SPEEDUP_AT_10K, (
        f"churn speedup at 10k in-flight is {results[10_000]['speedup']:.1f}x, "
        f"below the {MIN_SPEEDUP_AT_10K}x acceptance floor"
    )


def _shedding_trace(seed, count, num_stages=NUM_STAGES):
    """An overloaded arrival trace: rejections and shedding dominate."""
    rng = random.Random(seed)
    t = 0.0
    tasks = []
    for task_id in range(count):
        t += rng.expovariate(300.0)
        tasks.append(
            make_task(
                arrival_time=t,
                deadline=rng.uniform(0.3, 1.0),
                computation_times=[
                    rng.expovariate(1.0 / 0.01) for _ in range(num_stages)
                ],
                importance=rng.randrange(3),
                task_id=task_id,
            )
        )
    return tasks


def test_admit_many_throughput(benchmark, count=TRACE_LEN):
    """Batched admission over an overloaded trace (tracker-churn consumer)."""
    tasks = _shedding_trace(seed=1, count=count)

    def run():
        controller = PipelineAdmissionController(NUM_STAGES)
        decisions = controller.admit_many(tasks)
        return sum(d.admitted for d in decisions)

    admitted = run_best(benchmark, run)
    assert 0 < admitted < count
    print(
        f"\nadmit_many: {count} decisions, {admitted} admitted "
        f"({count / benchmark.stats.stats.min:,.0f} ops/s)"
    )


def test_gateway_handle_line_throughput(benchmark, count=TRACE_LEN):
    """Full ingest stack at batch 32: frame -> fused decode -> batch-decide.

    The ISSUE 10 acceptance point, measured over the production ingest
    route: the NDJSON payload arrives in 64 KiB socket-sized chunks,
    ``NdjsonFramer`` splits them, and ``handle_frames`` runs the fused
    bytes-to-decision lane (chunk-level huge-int screen, direct orjson
    decode, inlined envelope checks, one-entry pipeline cache).
    Admissions queue into batches of ``GATEWAY_MAX_BATCH`` so each
    flush takes the vectorized ``admit_many`` fast path and the
    batched response encoder; the trailing partial batch is flushed by
    ``drain()``.  In smoke mode the measured wall time is compared to
    the committed pre-vectorization baseline: the 5x target multiple
    is printed, the 2x floor is asserted (see the constants above for
    why they differ).  The measurement is the min over a few rounds
    (``run_best``) so the gate tracks the code, not scheduler noise on
    a shared CI machine.
    """
    tasks = _shedding_trace(seed=2, count=count)
    lines = [
        json.dumps({
            "id": task.task_id,
            "rid": f"r{task.task_id}",
            "op": "admit",
            "pipeline": "bench",
            "task": task_to_wire(task),
        })
        for task in tasks
    ]
    register = json.dumps({
        "id": -1, "op": "register", "pipeline": "bench",
        "policy": {"num_stages": NUM_STAGES, "max_batch": GATEWAY_MAX_BATCH},
    })
    payload = ("\n".join([register] + lines) + "\n").encode()
    chunk_size = GatewayServer.READ_CHUNK
    chunks = [
        payload[i:i + chunk_size] for i in range(0, len(payload), chunk_size)
    ]

    def run():
        gateway = AdmissionGateway()
        framer = NdjsonFramer(GatewayServer.READER_LIMIT)
        responses = 0
        for chunk in chunks:
            frames = framer.feed(chunk)
            if frames:
                responses += len(gateway.handle_frames(frames))
        responses += len(gateway.drain())
        return responses

    responses = run_best(benchmark, run)
    assert responses == count + 1  # register ack + one response per admit
    elapsed = benchmark.stats.stats.min
    print(
        f"\ngateway ingest (batch {GATEWAY_MAX_BATCH}): {count} admits "
        f"({count / elapsed:,.0f} ops/s)"
    )
    if SMOKE:
        speedup = PRE_VECTORIZED_SMOKE_SECONDS / elapsed
        print(
            f"  vs pre-vectorization baseline "
            f"{count / PRE_VECTORIZED_SMOKE_SECONDS:,.0f} ops/s: "
            f"{speedup:.1f}x (target {TARGET_GATEWAY_SPEEDUP:.0f}x, "
            f"floor {MIN_GATEWAY_SPEEDUP:.0f}x)"
        )
        assert speedup >= MIN_GATEWAY_SPEEDUP, (
            f"gateway ingest speedup is {speedup:.1f}x, below the "
            f"{MIN_GATEWAY_SPEEDUP}x enforced floor"
        )


def test_admit_response_encoder(benchmark, count=ENCODE_ITERS):
    """Fragment encoder vs the generic encoder it is byte-identical to."""
    request = {"id": 12345, "op": "admit", "rid": "r-12345"}

    def encode_fast():
        for _ in range(count):
            admit_response(request, admitted=True, region_value=0.7321)

    def encode_generic():
        for _ in range(count):
            ok_response(request, admitted=True, region_value=0.7321, shed=[])

    start = time.perf_counter()
    encode_generic()
    generic = time.perf_counter() - start
    run_once(benchmark, encode_fast)
    fast = benchmark.stats.stats.min
    print(
        f"\nadmit_response: {count / fast:,.0f} ops/s vs generic "
        f"{count / generic:,.0f} ops/s ({generic / fast:.1f}x)"
    )
    assert fast < generic, "fragment encoder should beat the generic encoder"
