"""Extension benchmark: Theorem-2 admission for task graphs.

The paper derives the DAG feasible region (Theorem 2) but evaluates
only pipelines; this extension quantifies the dividend of the
critical-path formulation — a diamond-shaped task admits strictly more
work than the same demand flattened into a chain, because parallel
branches share the end-to-end budget via max() rather than sum().
"""

from repro.experiments import ext_dag_admission

from conftest import run_once


def test_ext_dag_admission(benchmark):
    result = run_once(
        benchmark,
        ext_dag_admission.run,
        rates=(0.5, 1.0, 2.0, 3.0, 4.0),
        horizon=1200.0,
        seeds=(1, 2),
    )
    print()
    result.print()

    by_label = {s.label: s for s in result.series}
    for rate in (0.5, 1.0, 2.0, 3.0, 4.0):
        # The diamond processes at least as much work at every rate...
        assert by_label["diamond util"].y_at(rate) >= (
            by_label["chain util"].y_at(rate) - 0.01
        )
        # ...and admits at least as many tasks.
        assert by_label["diamond accept"].y_at(rate) >= (
            by_label["chain accept"].y_at(rate) - 0.01
        )
    # Both shapes keep the zero-miss guarantee.
    assert max(by_label["diamond miss"].ys()) == 0.0
    assert max(by_label["chain miss"].ys()) == 0.0
    # Somewhere in the sweep the dividend is material (>2 points).
    gains = [
        by_label["diamond util"].y_at(rate) - by_label["chain util"].y_at(rate)
        for rate in (0.5, 1.0, 2.0, 3.0, 4.0)
    ]
    assert max(gains) > 0.02
