"""Protocol-layer microbenchmarks: framing, decode, task decode, encode.

The four per-line costs between the socket and the admission engine,
each measured against the reference implementation it is pinned to:

- ``NdjsonFramer.feed`` over socket-sized chunks vs a whole-payload
  ``splitlines`` (the framer must pay for incremental delivery and
  limit enforcement without losing to the batch primitive);
- ``parse_request`` (screened orjson fast path) vs
  ``_parse_request_strict`` (the stdlib reference both paths must
  agree with byte-for-byte);
- ``task_from_wire`` (all-float fast loop + ``__new__``) on admit-op
  task payloads;
- ``admit_response_batch`` vs per-item ``admit_response``, the flush
  encoder amortization.

Run via ``make bench`` (folded into ``BENCH_serve.json``) or
standalone; every workload shrinks ~5x under ``REPRO_BENCH_SMOKE=1``
so the file stays cheap enough for ad-hoc runs on shared machines.
"""

import json
import os
import random
import time

from repro.core.task import make_task
from repro.serve.protocol import (
    NdjsonFramer,
    _parse_request_strict,
    admit_response,
    admit_response_batch,
    parse_request,
    task_from_wire,
    task_to_wire,
)

from conftest import run_once

NUM_STAGES = 3

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Lines per decode/frame workload.
LINE_COUNT = 2000 if SMOKE else 10_000

#: Items per encode workload.
ENCODE_COUNT = 2000 if SMOKE else 10_000

#: Socket read size mirrored from ``GatewayServer.READ_CHUNK``.
CHUNK_SIZE = 64 * 1024

#: Framer line limit mirrored from ``GatewayServer.READER_LIMIT``.
LINE_LIMIT = 4 << 20


def _admit_lines(count=LINE_COUNT, num_stages=NUM_STAGES):
    rng = random.Random(7)
    t = 0.0
    lines = []
    for task_id in range(count):
        t += rng.expovariate(300.0)
        task = make_task(
            arrival_time=t,
            deadline=rng.uniform(0.3, 1.0),
            computation_times=[
                rng.expovariate(1.0 / 0.01) for _ in range(num_stages)
            ],
            importance=rng.randrange(3),
            task_id=task_id,
        )
        lines.append(
            json.dumps({
                "id": task_id,
                "rid": f"r{task_id}",
                "op": "admit",
                "pipeline": "bench",
                "task": task_to_wire(task),
            })
        )
    return lines


def test_framer_feed(benchmark):
    """Incremental framing over 64 KiB chunks vs whole-payload splitlines."""
    payload = ("\n".join(_admit_lines()) + "\n").encode()
    chunks = [
        payload[i:i + CHUNK_SIZE] for i in range(0, len(payload), CHUNK_SIZE)
    ]

    def frame_incremental():
        framer = NdjsonFramer(LINE_LIMIT)
        frames = 0
        for chunk in chunks:
            frames += len(framer.feed(chunk))
        return frames

    start = time.perf_counter()
    reference = len(payload.splitlines())
    split_seconds = time.perf_counter() - start
    frames = run_once(benchmark, frame_incremental)
    assert frames == reference == LINE_COUNT
    incremental = benchmark.stats.stats.min
    print(
        f"\nframer feed: {frames / incremental:,.0f} lines/s incremental vs "
        f"{frames / split_seconds:,.0f} lines/s splitlines "
        f"({incremental / split_seconds:.1f}x the batch primitive's cost)"
    )


def test_parse_request_fast_vs_strict(benchmark):
    """Screened orjson decode vs the stdlib strict reference parser."""
    lines = _admit_lines()

    def parse_fast():
        for line in lines:
            parse_request(line)

    def parse_strict():
        for line in lines:
            _parse_request_strict(line)

    start = time.perf_counter()
    parse_strict()
    strict = time.perf_counter() - start
    run_once(benchmark, parse_fast)
    fast = benchmark.stats.stats.min
    print(
        f"\nparse_request: {len(lines) / fast:,.0f} lines/s fast path vs "
        f"{len(lines) / strict:,.0f} lines/s strict ({strict / fast:.1f}x)"
    )


def test_task_from_wire(benchmark):
    """Admit-payload task decode (the all-float fast loop)."""
    docs = [json.loads(line)["task"] for line in _admit_lines()]

    def decode():
        for doc in docs:
            task_from_wire(doc)

    run_once(benchmark, decode)
    rate = len(docs) / benchmark.stats.stats.min
    print(f"\ntask_from_wire: {rate:,.0f} tasks/s")


def test_admit_response_batch_vs_per_item(benchmark):
    """The one-pass flush encoder vs a per-decision encode loop."""
    rng = random.Random(11)
    items = [
        (
            {"id": k, "op": "admit", "rid": f"r{k}"},
            bool(k % 3),
            rng.random(),
            (),
        )
        for k in range(ENCODE_COUNT)
    ]

    def encode_per_item():
        return [
            admit_response(
                request, admitted=admitted, region_value=value, shed=shed
            )
            for request, admitted, value, shed in items
        ]

    start = time.perf_counter()
    reference = encode_per_item()
    per_item = time.perf_counter() - start
    batch = run_once(benchmark, admit_response_batch, items)
    assert batch == reference
    batched = benchmark.stats.stats.min
    print(
        f"\nadmit_response_batch: {len(items) / batched:,.0f} items/s vs "
        f"per-item {len(items) / per_item:,.0f} items/s "
        f"({per_item / batched:.1f}x)"
    )
