"""Benchmark: regenerate Figure 7 — miss ratio with approximate admission.

Two-stage balanced pipeline; the admission controller charges every
arrival the *mean* computation time (actual demands unknown at arrival).
Task resolution swept at two input loads.

Expected shape: zero misses at high resolution; only a very small
fraction of misses appears as resolution decreases.
"""

from repro.experiments import fig7_approximate_admission

from conftest import run_once


def test_fig7_approximate_admission(benchmark):
    result = run_once(
        benchmark,
        fig7_approximate_admission.run,
        resolutions=(2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0),
        loads=(1.0, 1.6),
        horizon=1500.0,
        seeds=(1, 2, 3),
    )
    print()
    result.print()

    for series in result.series:
        assert series.y_at(100.0) <= 0.01, "paper: ~no misses at high resolution"
        assert series.y_at(200.0) <= 0.01
        assert max(series.ys()) < 0.25, "misses stay a small fraction"
