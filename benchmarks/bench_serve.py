"""Throughput and latency benchmarks for the serving layer.

Five costs the gateway adds around the core admission test:

- protocol round trips (parse, dispatch, decide, encode) through the
  in-process transport — the full stack minus sockets;
- batched admission (``admit_many``) vs a sequential ``request`` loop
  at the same virtual timestamps, the amortization the batch queue buys;
- snapshot/restore of a controller with live admitted state;
- the end-to-end load generator on the webserver scenario, the number
  `make serve-smoke` exercises;
- write-ahead journaling: the same admit stream with the journal off,
  on (buffered), and on with per-record fsync — the durability tax.
"""

import json
import random
import time

from repro.core.admission import PipelineAdmissionController
from repro.core.task import make_task
from repro.serve.client import GatewayClient, InProcessTransport
from repro.serve.gateway import AdmissionGateway, GatewayServer
from repro.serve.journal import DurableGateway, Journal
from repro.serve.loadgen import run_scenario
from repro.serve.protocol import NdjsonFramer, task_to_wire
from repro.serve.snapshot import controller_snapshot, restore_controller

from conftest import run_once

NUM_STAGES = 3
TRACE_LEN = 2000


def _trace(seed, count=TRACE_LEN, num_stages=NUM_STAGES):
    rng = random.Random(seed)
    t = 0.0
    tasks = []
    for task_id in range(count):
        t += rng.expovariate(100.0)
        tasks.append(
            make_task(
                arrival_time=t,
                deadline=rng.uniform(0.5, 2.0),
                computation_times=[
                    rng.expovariate(1.0 / 0.004) for _ in range(num_stages)
                ],
                importance=rng.randrange(3),
                task_id=task_id,
            )
        )
    return tasks


def test_gateway_protocol_round_trips(benchmark):
    tasks = _trace(seed=0)

    def run():
        client = GatewayClient(InProcessTransport(AdmissionGateway()))
        client.register("bench", {"num_stages": NUM_STAGES})
        admitted = 0
        for task in tasks:
            if client.admit("bench", task)["admitted"]:
                admitted += 1
        return admitted

    admitted = run_once(benchmark, run)
    assert 0 < admitted <= TRACE_LEN


def test_sequential_request_loop(benchmark):
    tasks = _trace(seed=0)

    def run():
        controller = PipelineAdmissionController(NUM_STAGES)
        return sum(
            controller.request(task, task.arrival_time).admitted
            for task in tasks
        )

    admitted = run_once(benchmark, run)
    assert 0 < admitted <= TRACE_LEN


def test_batched_admit_many(benchmark):
    tasks = _trace(seed=0)

    def run():
        controller = PipelineAdmissionController(NUM_STAGES)
        return sum(d.admitted for d in controller.admit_many(tasks))

    admitted = run_once(benchmark, run)
    # Amortized path must agree with the sequential loop above.
    reference = PipelineAdmissionController(NUM_STAGES)
    assert admitted == sum(
        reference.request(task, task.arrival_time).admitted for task in tasks
    )


def test_snapshot_restore_round_trip(benchmark):
    controller = PipelineAdmissionController(NUM_STAGES)
    for task in _trace(seed=1, count=500):
        # Long deadlines keep every record live at snapshot time.
        controller.request(
            make_task(
                arrival_time=task.arrival_time,
                deadline=1000.0,
                computation_times=[c * 0.01 for c in task.computation_times],
                task_id=task.task_id,
            ),
            task.arrival_time,
        )
    live = len(controller.iter_admitted())
    assert live > 100

    def round_trip():
        return restore_controller(controller_snapshot(controller))

    restored = run_once(benchmark, round_trip)
    assert len(restored.iter_admitted()) == live


def test_loadgen_webserver_scenario(benchmark):
    report = run_once(benchmark, run_scenario, "webserver", 0, 500)
    assert report["traffic"]["missed"] == 0
    assert report["traffic"]["admitted"] == 500


# ----------------------------------------------------------------------
# Batch-size sweep: the framed ingest path at max_batch 1/8/32/128.
# ----------------------------------------------------------------------

BATCH_SWEEP = (1, 8, 32, 128)


def test_gateway_batch_size_sweep(benchmark):
    """Framed ingest throughput as the admission batch size grows.

    The same NDJSON payload — register plus ``TRACE_LEN`` admits —
    fed through ``NdjsonFramer`` in 64 KiB chunks and
    ``handle_frames``, once per ``max_batch`` in ``BATCH_SWEEP``.
    Batch 1 decides every admit scalar (the pre-vectorization
    behavior expressed through the current code); larger batches
    amortize the region evaluation through ``admit_many`` and the
    batched response encoder.  Prints the ops/s curve so regressions
    in *scaling* (not just the batch-32 point the smoke gate pins)
    stay visible in ``BENCH_serve.json`` runs.
    """
    tasks = _trace(seed=3)
    admit_lines = [
        json.dumps({
            "id": task.task_id,
            "op": "admit",
            "pipeline": "bench",
            "task": task_to_wire(task),
        })
        for task in tasks
    ]
    chunk_size = GatewayServer.READ_CHUNK
    results = {}

    def sweep():
        for max_batch in BATCH_SWEEP:
            register = json.dumps({
                "id": -1, "op": "register", "pipeline": "bench",
                "policy": {"num_stages": NUM_STAGES, "max_batch": max_batch},
            })
            payload = ("\n".join([register] + admit_lines) + "\n").encode()
            chunks = [
                payload[i:i + chunk_size]
                for i in range(0, len(payload), chunk_size)
            ]
            gateway = AdmissionGateway()
            framer = NdjsonFramer(GatewayServer.READER_LIMIT)
            start = time.perf_counter()
            responses = 0
            for chunk in chunks:
                frames = framer.feed(chunk)
                if frames:
                    responses += len(gateway.handle_frames(frames))
            responses += len(gateway.drain())
            results[max_batch] = {
                "seconds": time.perf_counter() - start,
                "responses": responses,
            }
        return results

    run_once(benchmark, sweep)
    print("\ngateway framed ingest, batch-size sweep:")
    for max_batch, row in results.items():
        assert row["responses"] == TRACE_LEN + 1
        print(
            f"  max_batch {max_batch:>4}: "
            f"{TRACE_LEN / row['seconds']:>10,.0f} ops/s"
        )


# ----------------------------------------------------------------------
# Journal overhead: the same admit stream, journal off / on / on+fsync.
# ----------------------------------------------------------------------

JOURNAL_TRACE_LEN = 500


def _admit_lines(count=JOURNAL_TRACE_LEN, num_stages=NUM_STAGES):
    lines = [
        json.dumps(
            {
                "id": 0,
                "op": "register",
                "pipeline": "bench",
                "policy": {"num_stages": num_stages},
            }
        )
    ]
    for n, task in enumerate(_trace(seed=2, count=count), start=1):
        lines.append(
            json.dumps(
                {
                    "id": n,
                    "op": "admit",
                    "pipeline": "bench",
                    "task": {
                        "task_id": task.task_id,
                        "arrival": task.arrival_time,
                        "deadline": task.arrival_time + task.deadline,
                        "costs": list(task.computation_times),
                    },
                }
            )
        )
    return lines


def _drive_lines(gateway, lines):
    admitted = 0
    for line in lines:
        for _, response in gateway.handle_line(line):
            if json.loads(response).get("admitted"):
                admitted += 1
    return admitted


def _assert_admits(admitted):
    assert 0 < admitted <= JOURNAL_TRACE_LEN


def test_admit_stream_journal_off(benchmark):
    lines = _admit_lines()
    _assert_admits(run_once(benchmark, lambda: _drive_lines(AdmissionGateway(), lines)))


def _durable_run(tmp_path, lines, fsync, tag):
    journal = Journal(tmp_path / f"{tag}.ndjson", fsync=fsync)
    durable = DurableGateway(
        AdmissionGateway(), journal, tmp_path / f"{tag}.snapshot.json",
        snapshot_every=0,
    )
    try:
        return _drive_lines(durable, lines)
    finally:
        durable.close()
        journal.path.unlink(missing_ok=True)


def test_admit_stream_journal_on(benchmark, tmp_path):
    lines = _admit_lines()
    _assert_admits(
        run_once(benchmark, lambda: _durable_run(tmp_path, lines, False, "buffered"))
    )


def test_admit_stream_journal_fsync(benchmark, tmp_path):
    lines = _admit_lines()
    _assert_admits(
        run_once(benchmark, lambda: _durable_run(tmp_path, lines, True, "fsync"))
    )


# ----------------------------------------------------------------------
# Fleet overhead: shard enforcement on the hot path, and a supervised
# 3-worker fleet (routing + durable workers + one heartbeat round).
# ----------------------------------------------------------------------


def test_admit_stream_shard_gateway(benchmark):
    # The same stream as the journal benchmarks, behind ownership
    # enforcement: measures the per-line cost of the shard bounce check
    # when every request is correctly routed (the common case).
    from repro.serve.router import ShardGateway, ShardMap

    lines = _admit_lines()
    shard_map = ShardMap(shards=3, assignments=(("bench", 0),))

    def run():
        return _drive_lines(ShardGateway(AdmissionGateway(), 0, shard_map), lines)

    _assert_admits(run_once(benchmark, run))


def test_fleet_dispatch_three_workers(benchmark, tmp_path):
    from repro.serve.fleet import FleetSupervisor
    from repro.serve.router import ShardMap

    names = ["bench-a", "bench-b", "bench-c"]
    docs = []
    for shard, name in enumerate(names):
        docs.append(
            {
                "id": f"reg-{shard}",
                "op": "register",
                "pipeline": name,
                "policy": {"num_stages": NUM_STAGES},
            }
        )
    for n, task in enumerate(_trace(seed=3, count=JOURNAL_TRACE_LEN), start=1):
        docs.append(
            {
                "id": n,
                "op": "admit",
                "pipeline": names[n % len(names)],
                "task": {
                    "task_id": task.task_id,
                    "arrival": task.arrival_time,
                    "deadline": task.arrival_time + task.deadline,
                    "costs": list(task.computation_times),
                },
            }
        )

    def run(root):
        fleet = FleetSupervisor(
            3, root, shard_map=ShardMap.balanced(names, 3), snapshot_every=0
        )
        fleet.start()
        try:
            admitted = 0
            for doc in docs:
                for response in fleet.dispatch(doc):
                    if json.loads(response).get("admitted"):
                        admitted += 1
            fleet.probe()
            return admitted
        finally:
            fleet.close()

    runs = iter(range(1_000_000))
    admitted = run_once(
        benchmark, lambda: run(tmp_path / f"fleet-{next(runs)}")
    )
    _assert_admits(admitted)
