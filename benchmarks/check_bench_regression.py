"""Gate a fresh benchmark run against a committed baseline.

Reads two ``pytest-benchmark`` JSON documents and fails (exit code 1)
when any benchmark's best-case time regressed by more than the allowed
ratio, or when a baseline benchmark is missing from the fresh run
(a silently deleted benchmark must not pass the gate).

The committed baseline ``benchmarks/BASELINE_core.json`` was recorded
in smoke mode (``REPRO_BENCH_SMOKE=1``) so CI compares equal workloads;
the default 2x tolerance absorbs machine-to-machine variance while
still catching the order-of-magnitude cliffs this gate exists for
(e.g. an accidental O(n) recompute creeping back into the tracker
hot path).

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json BASELINE.json \
        [--max-ratio 2.0]
"""

import argparse
import json
import sys


def _min_times(document):
    """``{benchmark name: best-case seconds}`` from a pytest-benchmark doc."""
    return {
        bench["name"]: float(bench["stats"]["min"])
        for bench in document.get("benchmarks", [])
    }


def check(current, baseline, max_ratio):
    """Return a list of human-readable failures (empty when the gate passes)."""
    failures = []
    current_times = _min_times(current)
    baseline_times = _min_times(baseline)
    if not baseline_times:
        return ["baseline document contains no benchmarks"]
    for name, base_seconds in sorted(baseline_times.items()):
        now_seconds = current_times.get(name)
        if now_seconds is None:
            failures.append(f"{name}: present in baseline but missing from run")
            continue
        ratio = now_seconds / base_seconds if base_seconds > 0 else float("inf")
        if ratio > max_ratio:
            failures.append(
                f"{name}: {now_seconds * 1e3:.2f} ms vs baseline "
                f"{base_seconds * 1e3:.2f} ms ({ratio:.2f}x > {max_ratio}x)"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="benchmark JSON from the fresh run")
    parser.add_argument("baseline", help="committed baseline benchmark JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when current/baseline best-case time exceeds this (default 2.0)",
    )
    args = parser.parse_args(argv)
    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = check(current, baseline, args.max_ratio)
    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    names = sorted(_min_times(baseline))
    print(
        f"benchmark regression gate passed: {len(names)} benchmarks within "
        f"{args.max_ratio}x of baseline ({', '.join(names)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
