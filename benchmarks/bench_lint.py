"""Analyzer benchmark: the whole-program pass over the repository.

The analyzer runs on every `make check` / CI job, so its own cost is a
developer-facing hot path.  One benchmark times the full pipeline —
file discovery, parsing, per-file rules, call-graph construction,
protocol fan-out, taint, and the suppression audit — over ``src/``;
a second isolates graph construction (the piece that grows
quadratically if symbol resolution regresses to repeated scans).

Folded into ``BENCH_core.json`` by ``make bench`` and gated at 2x
against ``benchmarks/BASELINE_core.json`` by ``make bench-smoke``.
"""

import os
from pathlib import Path

from repro.lint import analyze_paths
from repro.lint.context import FileContext
from repro.lint.graph import ProjectContext
from repro.lint.runner import iter_python_files

from conftest import run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

#: Smoke mode shares the switch used by the hot-path suite; the
#: analyzer's workload (the repo itself) cannot shrink, so both modes
#: run one pass and smoke relies on the 2x gate's headroom.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Full-pass repetitions outside smoke mode.
PASSES = 1 if SMOKE else 3


def test_analyzer_full_pass(benchmark):
    def run():
        total = 0
        for _ in range(PASSES):
            total += len(analyze_paths([SRC]))
        return total

    findings = run_once(benchmark, run)
    assert findings == 0  # the tree gates clean (tests/test_lint_clean.py)


def test_project_graph_build(benchmark):
    files = [
        (path, FileContext(str(path), path.read_text(encoding="utf-8")))
        for path in iter_python_files([SRC])
    ]

    def build():
        project = ProjectContext(files)
        return len(project.functions)

    functions = run_once(benchmark, build)
    assert functions > 100  # the graph actually saw the repository
