"""Benchmark: regenerate Table 1 / Section 5 — the TSCE case study.

Static question: reserve synthetic utilization for Weapon Detection,
Weapon Targeting and UAV Video and check Eq. 13 (paper: reservations
0.4 / 0.25 / 0.1, region value 0.93 < 1).

Dynamic question: how many Target Tracking instances can be admitted
on top of the reservation with a 200 ms admission wait (paper: ~550
tracks, stage 1 the bottleneck at ~95% utilization).
"""

import pytest

from repro.experiments import tab1_tsce

from conftest import run_once


def test_tab1_tsce(benchmark):
    result, tab1 = run_once(
        benchmark,
        tab1_tsce.run,
        track_counts=(200, 400, 500, 550, 600, 700),
        horizon=15.0,
        admission_wait=0.2,
        seed=2,
    )
    print()
    print(f"reserved: {tuple(round(u, 3) for u in tab1.plan.reserved)} "
          f"(paper: 0.4, 0.25, 0.1)")
    print(f"Eq. 13 value: {tab1.plan.region_value:.4f} (paper: 0.93), "
          f"feasible: {tab1.plan.feasible}")
    result.print()
    print(f"sustained tracks: {tab1.sustained_tracks} (paper: ~550); "
          f"stage-1 utilization there: "
          f"{tab1.bottleneck_utilization_at_sustained():.3f} (paper: ~0.95)")

    # Static certification matches the paper exactly.
    assert tab1.plan.reserved == pytest.approx((0.4, 0.25, 0.1))
    assert tab1.plan.region_value == pytest.approx(0.93, abs=0.005)
    assert tab1.plan.feasible

    # Dynamic capacity: hundreds of tracks, same ballpark as ~550.
    assert tab1.sustained_tracks >= 500
    assert tab1.bottleneck_utilization_at_sustained() > 0.90
    # Admission control converts overload into rejections, not misses.
    assert max(result.series[2].ys()) == 0.0
