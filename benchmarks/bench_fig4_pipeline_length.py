"""Benchmark: regenerate Figure 4 — effect of pipeline length.

Paper setup: balanced exponential stages, resolution ~100, Poisson
arrivals, DM scheduling; input load 60%-200% of stage capacity, one
curve per pipeline length (1, 2, 3, 5).

Expected shape: >80% average utilization at 100% load; the 2/3/5-stage
curves nearly coincide (pipeline depth adds no pessimism); zero misses.
"""

import pytest

from repro.experiments import fig4_pipeline_length

from conftest import run_once


def test_fig4_pipeline_length(benchmark):
    result = run_once(
        benchmark,
        fig4_pipeline_length.run,
        loads=(0.6, 0.8, 1.0, 1.2, 1.6, 2.0),
        lengths=(1, 2, 3, 5),
        horizon=1500.0,
        seeds=(1, 2),
    )
    print()
    result.print()

    # Reproduction acceptance criteria (shape, not absolute values).
    for series in result.series:
        assert series.y_at(1.0) > 0.78, "paper: >80% utilization at 100% load"
        for point in series.points:
            assert point.detail["miss_ratio"] == 0.0
    two, three, five = result.series[1], result.series[2], result.series[3]
    for load in (0.6, 1.0, 1.6, 2.0):
        assert three.y_at(load) == pytest.approx(two.y_at(load), abs=0.08)
        assert five.y_at(load) == pytest.approx(two.y_at(load), abs=0.08)
