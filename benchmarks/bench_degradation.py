"""Degradation-path microbenchmarks: revalidation sweep + repair cost.

Two costs the online degradation manager adds to the serving layer:

- **capacity revalidation** — an authoritative rescale re-charges the
  whole admitted set through the exact accumulator and re-runs the
  Eq. 12/15 region test, swept across populations.  The per-record
  work is constant (one re-derive + at most one tracker move per
  stage), so the sweep pins near-linear scaling;
- **eviction repair** — the sacrifice loop on an infeasible rescale:
  victims fall in brownout order until the region holds, measured as
  the full repair of a half-capacity drop over a large admitted set.

Run via ``make bench`` (folded into ``BENCH_core.json``) or, at
reduced iterations with a regression gate against the committed
baseline, via ``make bench-smoke``.
"""

import os
import random
import time

from repro.core.admission import PipelineAdmissionController
from repro.core.task import make_task

from conftest import run_once

NUM_STAGES = 2

#: ``REPRO_BENCH_SMOKE=1`` shrinks the workloads so the CI regression
#: gate (``make bench-smoke``) finishes in seconds; the committed
#: baseline ``benchmarks/BASELINE_core.json`` was recorded in smoke
#: mode, so the gate compares like for like.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Admitted-set sweep for the revalidation benchmark.
SWEEP = (100, 1000, 10_000)

#: Rescale+region_ok revalidations measured per sweep point.
REVALIDATE_REPEATS = 3 if SMOKE else 10

#: Admitted population for the eviction-repair benchmark.
REPAIR_POPULATION = 2000 if SMOKE else 10_000

#: Independent drop+repair rounds per eviction-repair measurement
#: (repair is one-shot per controller, so each round needs its own).
REPAIR_ROUNDS = 3 if SMOKE else 5


def _build(count, seed):
    """Admit ``count`` tasks summing to ~0.30 utilization per stage."""
    rng = random.Random(seed)
    controller = PipelineAdmissionController(NUM_STAGES, alpha=0.9)
    per_task = 0.30 / count
    for task_id in range(count):
        deadline = rng.uniform(5.0, 15.0)
        costs = [
            per_task * deadline * rng.uniform(0.5, 1.5)
            for _ in range(NUM_STAGES)
        ]
        decision = controller.request(
            make_task(
                arrival_time=0.0,
                deadline=deadline,
                computation_times=costs,
                importance=rng.randrange(3),
                task_id=task_id,
            ),
            now=0.0,
        )
        assert decision.admitted
    return controller


def _revalidate_seconds(controller, repeats):
    """Best-of rescale + whole-set region test (alternating levels)."""
    best = float("inf")
    for i in range(repeats):
        capacity = 0.8 if i % 2 == 0 else 1.0
        start = time.perf_counter()
        controller.rescale_stage_capacity(0, capacity)
        controller.region_ok()
        best = min(best, time.perf_counter() - start)
    controller.rescale_stage_capacity(0, 1.0)
    return best


def test_capacity_revalidation_sweep(benchmark):
    """Rescale + region re-test vs admitted-set size.

    Prints revalidations/sec at each population and asserts near-linear
    scaling: 100x the tasks must cost well under 1000x the time.
    """
    controllers = {count: _build(count, seed=count) for count in SWEEP}
    results = {}

    def run():
        for count in SWEEP:
            results[count] = _revalidate_seconds(
                controllers[count], REVALIDATE_REPEATS
            )
        return results

    run_once(benchmark, run)
    print("\ncapacity rescale + region revalidation:")
    for count, seconds in results.items():
        print(
            f"  admitted {count:>6}: {seconds * 1e3:>9.3f} ms   "
            f"({1.0 / seconds:>10,.1f} revalidations/s)"
        )
    growth = results[10_000] / results[100]
    assert growth < 1000.0, (
        f"revalidation cost grew {growth:.0f}x from 100 to 10k admitted "
        "tasks — the rescale path has regressed past linear"
    )


def test_eviction_repair_cost(benchmark):
    """Full sacrifice repair of a half-capacity drop.

    Halving stage 0 doubles its charged utilization past the region,
    so the repair must shed a large fraction of the population; the
    printed figure is the per-eviction cost of the brownout loop.
    """
    controllers = [
        _build(REPAIR_POPULATION, seed=17 + n) for n in range(REPAIR_ROUNDS)
    ]
    for controller in controllers:
        controller.rescale_stage_capacity(0, 0.5)
        assert not controller.region_ok()
    sacrificed = []

    def run():
        for controller in controllers:
            sacrificed.extend(controller.repair_region())
        return len(sacrificed)

    run_once(benchmark, run)
    assert all(controller.region_ok() for controller in controllers)
    assert sacrificed, "the half-capacity drop must force evictions"
    per_eviction = benchmark.stats.stats.min / len(sacrificed)
    print(
        f"\neviction repair at {REPAIR_POPULATION} admitted x "
        f"{REPAIR_ROUNDS} rounds: {len(sacrificed)} sacrificed, "
        f"{per_eviction * 1e6:.1f} us per eviction "
        f"({benchmark.stats.stats.min * 1e3:.3f} ms total)"
    )
