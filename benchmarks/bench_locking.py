"""Blocking-engine microbenchmarks for the online PCP bound.

Two costs the locking subsystem adds to the admission path:

- full ``beta_j`` recompute over the admitted set, swept across
  populations — the per-mutation cost of :class:`PCPBlockingState`
  (every add/remove re-derives the exact vector).  The sweep-based
  stabbing-max is ``O((S + T) log (S + T))`` per stage; the assertion
  pins it against accidental regression to the naive
  ``O(tasks x sections)`` double loop;
- ``preview`` at the largest population, the exact extra work a
  locking controller spends deciding one arrival.

Run via ``make bench`` (folded into ``BENCH_core.json``) or, at
reduced iterations with a regression gate against the committed
baseline, via ``make bench-smoke``.
"""

import os
import random
import time

from repro.locking import PCPBlockingState, ResourceSpec

from conftest import run_once

NUM_STAGES = 3

#: Resource pool shared by the synthetic population.
RESOURCES = ("mtx-a", "mtx-b", "mtx-c", "mtx-d")

#: ``REPRO_BENCH_SMOKE=1`` shrinks the workloads so the CI regression
#: gate (``make bench-smoke``) finishes in seconds; the committed
#: baseline ``benchmarks/BASELINE_core.json`` was recorded in smoke
#: mode, so the gate compares like for like.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Admitted-set sweep for the recompute benchmark.
SWEEP = (100, 1000, 10_000)

#: Full recomputes measured per sweep point.
RECOMPUTE_REPEATS = (3 if SMOKE else 10)

#: Arrival previews measured at the largest population.
PREVIEW_ITERS = 50 if SMOKE else 400


def _populate(state, count, seed):
    """Bulk-track ``count`` synthetic tasks; ~60% declare 1-2 sections."""
    rng = random.Random(seed)
    entries = []
    for task_id in range(count):
        resources = []
        if rng.random() < 0.6:
            picks = rng.sample(
                [(s, r) for s in range(NUM_STAGES) for r in RESOURCES],
                rng.randrange(1, 3),
            )
            resources = [
                ResourceSpec(stage, resource, rng.uniform(0.0, 0.05))
                for stage, resource in picks
            ]
        entries.append((task_id, rng.uniform(0.25, 4.0), resources))
    state.load(entries)


def _recompute_seconds(state, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        state.recompute()
        best = min(best, time.perf_counter() - start)
    return best


def test_beta_recompute_sweep(benchmark):
    """Full ``beta_j`` recompute vs admitted-set size.

    Prints recomputes/sec at each population and asserts near-linear
    scaling: 100x the tasks must cost well under 1000x the time (the
    naive all-pairs bound would be ~10,000x).
    """
    results = {}

    def run():
        for count in SWEEP:
            state = PCPBlockingState(NUM_STAGES)
            _populate(state, count, seed=count)
            results[count] = _recompute_seconds(state, RECOMPUTE_REPEATS)
        return results

    run_once(benchmark, run)
    print("\nblocking-engine full beta recompute:")
    for count, seconds in results.items():
        print(
            f"  admitted {count:>6}: {seconds * 1e3:>9.3f} ms   "
            f"({1.0 / seconds:>10,.1f} recomputes/s)"
        )
    growth = results[10_000] / results[100]
    assert growth < 1000.0, (
        f"recompute cost grew {growth:.0f}x from 100 to 10k admitted tasks — "
        "the sweep has regressed toward the quadratic double loop"
    )


def test_admission_preview_at_10k(benchmark):
    """Per-arrival ``preview`` cost against a 10k-task admitted set."""
    state = PCPBlockingState(NUM_STAGES)
    _populate(state, 10_000, seed=7)
    rng = random.Random(11)
    candidates = [
        (
            1_000_000 + i,
            rng.uniform(0.25, 4.0),
            [ResourceSpec(rng.randrange(NUM_STAGES), rng.choice(RESOURCES),
                          rng.uniform(0.0, 0.05))],
        )
        for i in range(PREVIEW_ITERS)
    ]

    def run():
        checksum = 0.0
        for task_id, deadline, resources in candidates:
            checksum += state.preview(task_id, deadline, resources)[0]
        return checksum

    run_once(benchmark, run)
    per_preview = benchmark.stats.stats.min / PREVIEW_ITERS
    print(
        f"\nadmission preview at 10k admitted: {per_preview * 1e3:.3f} ms "
        f"per arrival ({1.0 / per_preview:,.1f} previews/s)"
    )
    assert len(state) == 10_000  # previews never mutate
