"""Benchmark: regenerate Figure 6 — effect of load imbalance.

Two-stage pipeline, the mean computation-time ratio across stages is
swept symmetrically around the balanced midpoint (ratio 1); the
arrival rate holds the bottleneck stage at a fixed offered load.

Expected shape: bottleneck utilization is minimal at the balanced
midpoint and grows with imbalance in either direction — the admission
controller opportunistically exploits the underutilized stage.
"""

from repro.experiments import fig6_load_imbalance

from conftest import run_once


def test_fig6_load_imbalance(benchmark):
    result = run_once(
        benchmark,
        fig6_load_imbalance.run,
        ratios=(0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
        bottleneck_load=1.2,
        horizon=2000.0,
        seeds=(1, 2, 3),
    )
    print()
    result.print()

    series = result.series[0]
    mid = series.y_at(1.0)
    for ratio in (0.125, 0.25, 4.0, 8.0):
        assert series.y_at(ratio) >= mid - 0.01, (
            "bottleneck utilization must not drop below the balanced midpoint"
        )
