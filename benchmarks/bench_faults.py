"""Overhead benchmarks for the robustness layer.

Two costs the chaos subsystem adds to the hot path:

- admission throughput with the periodic invariant auditor armed vs
  disarmed (the auditor re-sums every tracker, so its period bounds the
  amortized per-request overhead);
- raw admission request rate through a controller whose notifications
  pass through the fault-injection wrappers (empty schedule — the
  wrappers are not even installed, measuring the zero-fault fast path).
"""

import random

from repro.core.audit import ControllerAuditor
from repro.faults import DropNotification, FaultInjector, FaultSchedule
from repro.sim.pipeline import PipelineSimulation

from conftest import run_once

NUM_STAGES = 3
HORIZON = 400.0


def _offered(seed, num_stages=NUM_STAGES, load=0.9, horizon=HORIZON):
    rng = random.Random(seed)
    mean_cost = 0.5
    rate = load / (num_stages * mean_cost)
    from repro.core.task import make_task

    t = 0.0
    tasks = []
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        tasks.append(
            make_task(
                t,
                rng.uniform(5.0, 15.0),
                [rng.expovariate(1.0 / mean_cost) for _ in range(num_stages)],
            )
        )
    return tasks


def _run(audit_period):
    pipeline = PipelineSimulation(NUM_STAGES)
    pipeline.offer_stream(_offered(seed=5))
    injector = FaultInjector(
        pipeline, FaultSchedule(), audit_period=audit_period
    )
    injector.install()
    report = pipeline.run(HORIZON)
    return report, injector


def test_admission_throughput_auditor_off(benchmark):
    report, injector = run_once(benchmark, _run, audit_period=None)
    assert report.generated > 200
    # Only the explicit final audit may run.
    assert injector.auditor.audits_run == 0


def test_admission_throughput_auditor_on(benchmark):
    report, injector = run_once(benchmark, _run, audit_period=5.0)
    assert report.generated > 200
    assert injector.auditor.audits_run >= HORIZON / 5.0 - 1
    # A fault-free run must audit clean every single time.
    assert injector.auditor.violations_found == 0


def test_admission_throughput_with_drop_wrappers(benchmark):
    def run():
        pipeline = PipelineSimulation(NUM_STAGES)
        pipeline.offer_stream(_offered(seed=5))
        # Wrappers installed but windowed out: measures interception
        # cost alone.
        schedule = FaultSchedule(
            drops=[
                DropNotification(
                    kind="departure",
                    probability=1.0,
                    start=HORIZON * 10,
                    end=HORIZON * 20,
                )
            ]
        )
        FaultInjector(pipeline, schedule, seed=1).install()
        return pipeline.run(HORIZON)

    report = run_once(benchmark, run)
    assert report.miss_ratio() == 0.0


def test_standalone_audit_cost(benchmark):
    pipeline = PipelineSimulation(NUM_STAGES)
    pipeline.offer_stream(_offered(seed=5, horizon=100.0))
    pipeline.run(50.0)  # leave live admitted state behind
    auditor = ControllerAuditor(pipeline.controller)

    def audit():
        return auditor.audit(
            50.0,
            frontier=pipeline.frontier(),
            idle_stages=pipeline.idle_stages(),
        )

    violations = run_once(benchmark, audit)
    assert violations == []
