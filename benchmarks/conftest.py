"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (Figure 4-7,
Table 1) or an ablation, printing the measured series next to the
paper's qualitative expectation.  Benchmarks run each experiment once
(``pedantic`` with one round): the interesting output is the series,
and the benchmark timing doubles as a record of harness cost.

Run:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_best(benchmark, fn, *args, rounds=5, **kwargs):
    """Execute ``fn`` ``rounds`` times; ``stats.min`` is the measurement.

    For the hot-path regression gates: a single round on a shared CI
    machine measures the scheduler as much as the code, while the
    minimum over a few rounds converges on the code's actual cost.
    Gates that compare against a committed baseline should read
    ``benchmark.stats.stats.min``.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds, iterations=1)
