"""Benchmark: regenerate Figure 5 — effect of task resolution.

Two-stage balanced pipeline; the x axis sweeps task resolution (avg
deadline / avg total computation) at three load levels.

Expected shape: accepted utilization increases with resolution —
"it is easier to generate unschedulable workloads when individual
tasks are larger".
"""

from repro.experiments import fig5_task_resolution

from conftest import run_once


def test_fig5_task_resolution(benchmark):
    result = run_once(
        benchmark,
        fig5_task_resolution.run,
        resolutions=(2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0),
        loads=(0.8, 1.2, 1.6),
        horizon=1500.0,
        seeds=(1, 2),
    )
    print()
    result.print()

    for series in result.series:
        ys = series.ys()
        # Monotone trend start-to-end, allowing small sampling wiggle.
        assert ys[-1] > ys[0], "utilization must grow with resolution"
        assert ys[-1] >= max(ys) - 0.05
