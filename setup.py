"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this machine lacks
``bdist_wheel``, so the legacy ``setup.py``-based editable path
(``--no-use-pep517``) is kept working.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
