# Developer entry points.  Only `python` and `pytest` are hard
# requirements; ruff and mypy are used when installed and skipped
# (with a note) when not, so `make check` works in the minimal image.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint typecheck check chaos

test:
	$(PYTHON) -m pytest -x -q

# Fast chaos suite: every named fault scenario, deterministic at seed 0.
chaos:
	$(PYTHON) -m repro.faults --scenario all --seed 0

lint:
	$(PYTHON) -m repro.lint src examples benchmarks
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples benchmarks; \
	else \
		echo "ruff not installed; skipping (config in pyproject.toml)"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core src/repro/lint; \
	else \
		echo "mypy not installed; skipping (config in pyproject.toml)"; \
	fi

check: lint typecheck test
