# Developer entry points.  Only `python` and `pytest` are hard
# requirements; ruff and mypy are used when installed and skipped
# (with a note) when not, so `make check` works in the minimal image.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-sarif typecheck check chaos serve-smoke bench bench-smoke bench-protocol

test:
	$(PYTHON) -m pytest -x -q

# Fast chaos suite: every named fault scenario, deterministic at seed 0.
chaos:
	$(PYTHON) -m repro.faults --scenario all --seed 0

# Serving-layer smoke: replay a 1k-request seeded trace through the
# in-process gateway twice and require byte-identical reports, zero
# deadline misses, batching equivalence, and a clean snapshot audit —
# then 24 crash/recover cycles with zero lost or duplicated admissions
# and bitwise-identical recovered state, and 12 fleet chaos cycles
# (worker SIGKILLs + network faults across 3 shards) with the same
# zero-loss/zero-duplication guarantee against a shadow fleet.  The
# degradation chaos gate layers capacity-drop/restore waves over the
# crash kinds and additionally requires zero region violations after
# every sacrifice repair.
# Finally the blocking comparison report: online PCP-derived beta_j vs
# the static worst-case population bound over one contention trace —
# must be byte-stable, admit at least as much online, and finish the
# closed-loop simulation with zero deadline misses on both sides.
serve-smoke:
	$(PYTHON) -m repro.serve.loadgen --scenario webserver --seed 0 --requests 1000 --selftest
	$(PYTHON) -m repro.serve.loadgen --chaos-crash --cycles 24 --seed 0 --selftest
	$(PYTHON) -m repro.serve.loadgen --chaos-fleet --cycles 12 --workers 3 --seed 0 --selftest
	$(PYTHON) -m repro.serve.loadgen --chaos-degradation --cycles 12 --seed 0 --selftest
	$(PYTHON) -m repro.serve.loadgen --compare-blocking --seed 0 --selftest

# Consolidated benchmark run: paper-artifact and serving benchmarks in
# BENCH_serve.json, the core hot-path + analyzer suite
# (exact-accumulator churn, admit_many, gateway encode/flush,
# whole-program lint pass) in BENCH_core.json.
bench:
	$(PYTHON) -m pytest benchmarks -q -o addopts="" --benchmark-only \
		--ignore=benchmarks/bench_core_hotpath.py \
		--ignore=benchmarks/bench_lint.py \
		--ignore=benchmarks/bench_locking.py \
		--ignore=benchmarks/bench_degradation.py \
		--ignore=benchmarks/bench_protocol.py \
		--benchmark-json=BENCH_serve.json
	$(PYTHON) -m pytest benchmarks/bench_core_hotpath.py benchmarks/bench_lint.py \
		benchmarks/bench_locking.py benchmarks/bench_degradation.py \
		benchmarks/bench_protocol.py \
		-q -o addopts="" \
		--benchmark-only --benchmark-json=BENCH_core.json
	@echo "wrote BENCH_serve.json and BENCH_core.json"

# Protocol-layer microbenchmarks alone (framing, decode, task decode,
# batch encode), with their comparison printouts.
bench-protocol:
	$(PYTHON) -m pytest benchmarks/bench_protocol.py -q -o addopts="" \
		--benchmark-only -s

# CI regression gate: the hot-path + analyzer suites at reduced
# iterations (REPRO_BENCH_SMOKE=1), failing when any benchmark runs
# more than 2x slower than the committed baseline
# benchmarks/BASELINE_core.json.
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_core_hotpath.py \
		benchmarks/bench_lint.py benchmarks/bench_locking.py \
		benchmarks/bench_degradation.py benchmarks/bench_protocol.py \
		-q -o addopts="" --benchmark-only \
		--benchmark-json=BENCH_core_smoke.json
	$(PYTHON) benchmarks/check_bench_regression.py BENCH_core_smoke.json \
		benchmarks/BASELINE_core.json

# Whole-program pass (per-file rules + call-graph/taint rules + the
# unused-suppression audit), ratcheted against the committed baseline:
# only findings NOT recorded in lint-baseline.json fail.
lint:
	$(PYTHON) -m repro.lint src examples benchmarks --baseline lint-baseline.json
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples benchmarks; \
	else \
		echo "ruff not installed; skipping (config in pyproject.toml)"; \
	fi

# Machine-readable report for code-scanning UIs.
lint-sarif:
	$(PYTHON) -m repro.lint src examples benchmarks --sarif --out lint.sarif \
		--baseline lint-baseline.json
	@echo "wrote lint.sarif"

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core src/repro/lint src/repro/serve; \
	else \
		echo "mypy not installed; skipping (config in pyproject.toml)"; \
	fi

check: lint typecheck test serve-smoke
