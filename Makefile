# Developer entry points.  Only `python` and `pytest` are hard
# requirements; ruff and mypy are used when installed and skipped
# (with a note) when not, so `make check` works in the minimal image.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint typecheck check chaos serve-smoke bench

test:
	$(PYTHON) -m pytest -x -q

# Fast chaos suite: every named fault scenario, deterministic at seed 0.
chaos:
	$(PYTHON) -m repro.faults --scenario all --seed 0

# Serving-layer smoke: replay a 1k-request seeded trace through the
# in-process gateway twice and require byte-identical reports, zero
# deadline misses, batching equivalence, and a clean snapshot audit —
# then 24 crash/recover cycles with zero lost or duplicated admissions
# and bitwise-identical recovered state.
serve-smoke:
	$(PYTHON) -m repro.serve.loadgen --scenario webserver --seed 0 --requests 1000 --selftest
	$(PYTHON) -m repro.serve.loadgen --chaos-crash --cycles 24 --seed 0 --selftest

# Consolidated benchmark run: every benchmarks/bench_*.py file, one
# machine-readable summary at the repo root.
bench:
	$(PYTHON) -m pytest benchmarks -q -o addopts="" --benchmark-only \
		--benchmark-json=BENCH_serve.json
	@echo "wrote BENCH_serve.json"

lint:
	$(PYTHON) -m repro.lint src examples benchmarks
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples benchmarks; \
	else \
		echo "ruff not installed; skipping (config in pyproject.toml)"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core src/repro/lint src/repro/serve; \
	else \
		echo "mypy not installed; skipping (config in pyproject.toml)"; \
	fi

check: lint typecheck test serve-smoke
