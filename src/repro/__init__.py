"""repro — feasible regions for aperiodic end-to-end deadlines in resource pipelines.

A reproduction of *"A Feasible Region for Meeting Aperiodic End-to-end
Deadlines in Resource Pipelines"* (Abdelzaher, Thaker & Lardieri,
ICDCS 2004): the multi-dimensional synthetic-utilization feasible
region, the O(N) admission controller built on it, extensions to
arbitrary fixed-priority policies, critical sections (PCP), and
arbitrary task graphs — plus the discrete-event simulation substrate
and the full evaluation harness (Figures 4-7, Table 1 / TSCE).

Quickstart::

    from repro import (
        PipelineAdmissionController, make_task, stage_delay_factor,
    )

    controller = PipelineAdmissionController(num_stages=3)
    task = make_task(arrival_time=0.0, deadline=0.1,
                     computation_times=[0.004, 0.002, 0.001])
    decision = controller.request(task, now=0.0)
    assert decision.admitted

Subpackages:

- :mod:`repro.core` — the analytical contribution (bounds, regions,
  admission control, DAG algebra);
- :mod:`repro.sim` — the discrete-event simulation substrate;
- :mod:`repro.analysis` — uniprocessor/periodic baselines;
- :mod:`repro.apps` — TSCE and web-server application models;
- :mod:`repro.experiments` — one module per paper figure/table.
"""

from .core import (
    UNIPROCESSOR_APERIODIC_BOUND,
    AdmissionDecision,
    CriticalTask,
    DagFeasibleRegion,
    DelayExpression,
    DemandModel,
    ExactDemand,
    MeanDemand,
    ScaledDemand,
    PeriodicTaskSpec,
    PipelineAdmissionController,
    PipelineFeasibleRegion,
    PipelineTask,
    ReservationPlan,
    StageUtilizationTracker,
    TaskGraph,
    alpha_deadline_monotonic,
    alpha_random_priority,
    build_reservation,
    inverse_stage_delay_factor,
    is_dag_feasible,
    is_pipeline_feasible,
    leaf,
    make_task,
    par,
    periodic_spec,
    pipeline_margin,
    pipeline_region_value,
    region_budget,
    seq,
    single_resource_bound,
    stage_delay,
    stage_delay_factor,
    uniform_per_stage_bound,
    urgency_inversion_alpha,
)
from .sim import (
    DeadlineMonotonic,
    EarliestDeadlineFirst,
    FifoPolicy,
    GraphPipelineSimulation,
    ImportanceFirst,
    PipelineSimulation,
    PipelineWorkload,
    RandomPriority,
    SimulationReport,
    Simulator,
    balanced_workload,
    imbalanced_two_stage_workload,
    run_pipeline_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core analytics
    "stage_delay_factor",
    "inverse_stage_delay_factor",
    "stage_delay",
    "pipeline_region_value",
    "pipeline_margin",
    "region_budget",
    "is_pipeline_feasible",
    "single_resource_bound",
    "uniform_per_stage_bound",
    "UNIPROCESSOR_APERIODIC_BOUND",
    "urgency_inversion_alpha",
    "alpha_deadline_monotonic",
    "alpha_random_priority",
    # task model
    "PipelineTask",
    "PeriodicTaskSpec",
    "make_task",
    "periodic_spec",
    # regions
    "PipelineFeasibleRegion",
    "DagFeasibleRegion",
    "TaskGraph",
    "DelayExpression",
    "leaf",
    "seq",
    "par",
    "is_dag_feasible",
    # admission
    "PipelineAdmissionController",
    "AdmissionDecision",
    "DemandModel",
    "ExactDemand",
    "MeanDemand",
    "ScaledDemand",
    "StageUtilizationTracker",
    "CriticalTask",
    "ReservationPlan",
    "build_reservation",
    # simulation
    "Simulator",
    "PipelineSimulation",
    "GraphPipelineSimulation",
    "run_pipeline_simulation",
    "PipelineWorkload",
    "balanced_workload",
    "imbalanced_two_stage_workload",
    "SimulationReport",
    "DeadlineMonotonic",
    "EarliestDeadlineFirst",
    "FifoPolicy",
    "RandomPriority",
    "ImportanceFirst",
]
