"""Table 1 / Section 5 — the TSCE mission-execution case study.

Two certification questions, answered exactly as in the paper:

1. **Static**: are Weapon Detection, Weapon Targeting and UAV Video
   schedulable concurrently?  Compute the per-stage reserved synthetic
   utilization (paper: 0.4 / 0.25 / 0.1 — stage 3 takes the max across
   tasks because they drive different consoles) and substitute into
   Eq. 13 (paper: 0.93 < 1 — schedulable).
2. **Dynamic**: with that capacity permanently reserved, how many
   Target Tracking instances can be admitted at run time, each arrival
   allowed to wait up to 200 ms at the admission controller?  The
   paper's simulation sustains ~550 concurrent tracks with stage 1 the
   bottleneck at ~95% utilization — "the system operates virtually at
   capacity" thanks to the idle-reset rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..apps.tsce import (
    TrackingCapacityResult,
    simulate_tracking_capacity,
    tsce_reservation,
)
from ..core.reservation import ReservationPlan
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_TRACK_COUNTS", "Tab1Result"]

DEFAULT_TRACK_COUNTS: Sequence[int] = (200, 400, 500, 550, 600, 700)


@dataclass
class Tab1Result:
    """Combined static + dynamic outcome.

    Attributes:
        plan: The validated reservation (static certification).
        capacity: Per-population dynamic simulation outcomes.
        sustained_tracks: Largest offered population with (near-)zero
            rejections, or 0 when even the smallest rejected tasks.
    """

    plan: ReservationPlan
    capacity: List[TrackingCapacityResult]
    sustained_tracks: int

    def bottleneck_utilization_at_sustained(self) -> float:
        """Stage-1 utilization at the sustained population (paper: ~0.95)."""
        for r in self.capacity:
            if r.num_tracks == self.sustained_tracks:
                return max(r.stage_utilizations)
        return 0.0


def run(
    track_counts: Sequence[int] = DEFAULT_TRACK_COUNTS,
    horizon: float = 20.0,
    admission_wait: float = 0.2,
    seed: int = 2,
    rejection_tolerance: float = 0.01,
) -> Tuple[ExperimentResult, Tab1Result]:
    """Reproduce Table 1's certification numbers.

    Args:
        track_counts: Tracking populations to try.
        horizon: Simulated seconds per population.
        admission_wait: Admission-queue budget (paper: 200 ms).
        seed: Phase-randomization seed.
        rejection_tolerance: Populations whose invocation rejection
            ratio stays at or below this count as *sustained*.

    Returns:
        ``(experiment_result, tab1_result)`` — the former renders the
        rejection/utilization sweep, the latter carries the structured
        verdicts.
    """
    plan = tsce_reservation()
    result = ExperimentResult(
        experiment_id="TAB1",
        title="TSCE mission system: reserved criticals + dynamic tracking",
        x_label="offered concurrent tracking tasks",
        y_label="rejection ratio / stage-1 utilization",
        expectation=(
            "reserved region value 0.93 < 1 (criticals schedulable); "
            "~550 tracks sustained with stage 1 the bottleneck at ~95%"
        ),
    )
    rejection_series = Series(label="invocation rejection ratio")
    util_series = Series(label="stage-1 real utilization")
    miss_series = Series(label="miss ratio")
    capacity: List[TrackingCapacityResult] = []
    sustained = 0
    for count in track_counts:
        outcome = simulate_tracking_capacity(
            count, horizon=horizon, admission_wait=admission_wait, seed=seed
        )
        capacity.append(outcome)
        rejection_series.points.append(
            SeriesPoint(x=count, y=outcome.rejection_ratio)
        )
        util_series.points.append(
            SeriesPoint(x=count, y=outcome.stage_utilizations[0])
        )
        miss_series.points.append(SeriesPoint(x=count, y=outcome.miss_ratio))
        if outcome.rejection_ratio <= rejection_tolerance:
            sustained = max(sustained, count)
    result.series.extend([rejection_series, util_series, miss_series])
    return result, Tab1Result(plan=plan, capacity=capacity, sustained_tracks=sustained)


def main() -> Tuple[ExperimentResult, Tab1Result]:
    """Run with full defaults and print both certification answers."""
    result, tab1 = run()
    plan = tab1.plan
    print("Static certification (Eq. 13):")
    print(f"  reserved per-stage synthetic utilization: "
          f"{tuple(round(u, 4) for u in plan.reserved)}  (paper: 0.4, 0.25, 0.1)")
    print(f"  region value: {plan.region_value:.4f}  (paper: 0.93)  "
          f"budget: {plan.budget:.2f}  feasible: {plan.feasible}")
    print()
    result.print()
    print(f"sustained tracks: {tab1.sustained_tracks} (paper: ~550), "
          f"bottleneck utilization there: "
          f"{tab1.bottleneck_utilization_at_sustained():.3f} (paper: ~0.95)")
    return result, tab1


if __name__ == "__main__":
    main()
