"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig4 [--csv out.csv]
    python -m repro.experiments tab1
    python -m repro.experiments ablations
    python -m repro.experiments all

Each artifact runs with its full-size default parameters and prints
the measured series as an aligned table (the same tables recorded in
``EXPERIMENTS.md``).  ``--csv`` additionally writes the series in long
format (``series,x,y``) for external plotting.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Callable, Dict, List, Optional

from . import (
    ablations,
    ext_dag_admission,
    fig4_pipeline_length,
    fig5_task_resolution,
    fig6_load_imbalance,
    fig7_approximate_admission,
    tab1_tsce,
)
from .common import ExperimentResult

__all__ = ["main", "ARTIFACTS"]


def _run_fig4() -> List[ExperimentResult]:
    return [fig4_pipeline_length.run()]


def _run_fig5() -> List[ExperimentResult]:
    return [fig5_task_resolution.run()]


def _run_fig6() -> List[ExperimentResult]:
    return [fig6_load_imbalance.run()]


def _run_fig7() -> List[ExperimentResult]:
    return [fig7_approximate_admission.run()]


def _run_tab1() -> List[ExperimentResult]:
    result, tab1 = tab1_tsce.run()
    plan = tab1.plan
    print(
        f"reserved: {tuple(round(u, 4) for u in plan.reserved)}  "
        f"Eq.13 value: {plan.region_value:.4f}  feasible: {plan.feasible}"
    )
    print(f"sustained tracks: {tab1.sustained_tracks}")
    return [result]


def _run_ext_dag() -> List[ExperimentResult]:
    return [ext_dag_admission.run()]


def _run_ablations() -> List[ExperimentResult]:
    return [
        ablations.run_reset_ablation(),
        ablations.run_wait_ablation(),
        ablations.run_alpha_ablation(),
        ablations.run_blocking_ablation(),
        ablations.run_overrun_ablation(),
    ]


#: Artifact name -> callable returning the experiment results.
ARTIFACTS: Dict[str, Callable[[], List[ExperimentResult]]] = {
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "tab1": _run_tab1,
    "ablations": _run_ablations,
    "extdag": _run_ext_dag,
}


def write_csv(results: List[ExperimentResult], path: str) -> None:
    """Write all series in long format: experiment, series, x, y."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment", "series", "x", "y"])
        for result in results:
            for series in result.series:
                for point in series.points:
                    writer.writerow(
                        [result.experiment_id, series.label, point.x, point.y]
                    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the series to a CSV file (long format)",
    )
    args = parser.parse_args(argv)

    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(name)
        return 0

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    collected: List[ExperimentResult] = []
    for name in names:
        results = ARTIFACTS[name]()
        for result in results:
            result.print()
            print()
        collected.extend(results)
    if args.csv:
        write_csv(collected, args.csv)
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
