"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations quantify mechanisms the paper asserts qualitatively:

- **reset** — the Section-4 idle-reset rule ("a very important tool
  that reduces the pessimism of admission control"): accepted
  utilization with the rule on vs off.
- **wait** — the Section-5 bounded admission wait (200 ms in the TSCE
  study): accept ratio vs wait budget at fixed load.
- **alpha** — the urgency-inversion parameter (Eq. 12): a random
  fixed-priority scheduler run (a) with its proper shrunken budget
  ``alpha = D_least / D_most`` and (b) unsoundly with the DM budget of
  1, against the DM baseline.  The unsound variant is the one that
  can miss deadlines.
- **blocking** — the Eq. 15 beta terms: tasks with PCP critical
  sections admitted (a) with the blocking-aware budget
  ``1 - sum beta_j`` and (b) blocking-blind with budget 1.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core.bounds import region_budget
from ..sim.pipeline import PipelineSimulation, run_pipeline_simulation
from ..sim.policies import DeadlineMonotonic, RandomPriority
from ..sim.stage import Segment
from ..sim.workload import balanced_workload
from .common import ExperimentResult, Series, SeriesPoint

__all__ = [
    "run_reset_ablation",
    "run_wait_ablation",
    "run_alpha_ablation",
    "run_blocking_ablation",
    "run_overrun_ablation",
]


def run_reset_ablation(
    loads: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.6, 2.0),
    num_stages: int = 2,
    resolution: float = 100.0,
    horizon: float = 2000.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Idle-reset rule on vs off: accepted utilization across loads."""
    result = ExperimentResult(
        experiment_id="ABL-RESET",
        title="Idle-reset rule ablation",
        x_label="input load (fraction of stage capacity)",
        y_label="average real stage utilization after admission control",
        expectation=(
            "with the reset rule, utilization tracks the input load up "
            "to ~0.9; without it, admission saturates near the static "
            "bound (~0.59 per stage)"
        ),
    )
    for reset in (True, False):
        series = Series(label="reset on" if reset else "reset off")
        for load in loads:
            workload = balanced_workload(num_stages, load, resolution=resolution)
            utils = [
                run_pipeline_simulation(
                    workload, horizon=horizon, seed=s, reset_on_idle=reset
                ).average_utilization()
                for s in seeds
            ]
            series.points.append(SeriesPoint(x=load, y=sum(utils) / len(utils)))
        result.series.append(series)
    return result


def run_wait_ablation(
    waits: Sequence[float] = (0.0, 5.0, 20.0, 50.0),
    load: float = 1.4,
    num_stages: int = 2,
    resolution: float = 100.0,
    horizon: float = 2000.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Bounded admission wait: accept ratio vs wait budget.

    Wait budgets are in workload time units (mean stage cost = 1;
    mean deadline = ``resolution * num_stages``).
    """
    result = ExperimentResult(
        experiment_id="ABL-WAIT",
        title="Admission-wait ablation",
        x_label="admission wait budget (time units)",
        y_label="accept ratio",
        expectation="accept ratio rises with the wait budget; misses stay zero",
    )
    accept = Series(label=f"accept ratio @ load {int(load * 100)}%")
    miss = Series(label="miss ratio")
    for wait in waits:
        workload = balanced_workload(num_stages, load, resolution=resolution)
        accepts: List[float] = []
        misses: List[float] = []
        for s in seeds:
            report = run_pipeline_simulation(
                workload, horizon=horizon, seed=s, max_admission_wait=wait
            )
            accepts.append(report.accept_ratio)
            misses.append(report.miss_ratio())
        accept.points.append(SeriesPoint(x=wait, y=sum(accepts) / len(accepts)))
        miss.points.append(SeriesPoint(x=wait, y=sum(misses) / len(misses)))
    result.series.extend([accept, miss])
    return result


def run_alpha_ablation(
    loads: Sequence[float] = (0.8, 1.2, 1.6),
    num_stages: int = 2,
    resolution: float = 100.0,
    deadline_spread: float = 0.5,
    horizon: float = 2000.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Urgency inversion: DM vs random priorities, sound vs unsound budget.

    With deadlines uniform in ``mean * (1 -/+ spread)``, the worst-case
    urgency-inversion parameter of a random priority assignment is
    ``alpha = (1 - spread) / (1 + spread)``.
    """
    alpha_random = (1 - deadline_spread) / (1 + deadline_spread)
    result = ExperimentResult(
        experiment_id="ABL-ALPHA",
        title="Urgency-inversion (alpha) ablation",
        x_label="input load (fraction of stage capacity)",
        y_label="miss ratio among admitted tasks",
        expectation=(
            "DM (alpha=1) and random-with-proper-alpha miss nothing; "
            "random priorities admitted against the DM budget can miss"
        ),
    )
    variants = (
        ("DM, budget 1", DeadlineMonotonic(), 1.0),
        (f"random, budget {alpha_random:.2f}", RandomPriority(seed=7), alpha_random),
        ("random, budget 1 (unsound)", RandomPriority(seed=7), 1.0),
    )
    for label, policy, alpha in variants:
        miss_series = Series(label=f"{label} miss")
        util_series = Series(label=f"{label} util")
        for load in loads:
            workload = balanced_workload(
                num_stages, load, resolution=resolution, deadline_spread=deadline_spread
            )
            misses: List[float] = []
            utils: List[float] = []
            for s in seeds:
                report = run_pipeline_simulation(
                    workload, horizon=horizon, seed=s, policy=policy, alpha=alpha
                )
                misses.append(report.miss_ratio())
                utils.append(report.average_utilization())
            miss_series.points.append(SeriesPoint(x=load, y=sum(misses) / len(misses)))
            util_series.points.append(SeriesPoint(x=load, y=sum(utils) / len(utils)))
        result.series.append(miss_series)
        result.series.append(util_series)
    return result


def run_blocking_ablation(
    loads: Sequence[float] = (0.8, 1.2),
    num_stages: int = 2,
    resolution: float = 10.0,
    cs_cap: float = 0.5,
    horizon: float = 2000.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Critical sections under PCP: blocking-aware vs blocking-blind budget.

    Every subtask spends up to ``cs_cap`` time units (capped at half
    its execution) inside a critical section on a per-stage shared
    lock.  The blocking-aware run shrinks the budget by
    ``sum_j beta_j`` with ``beta_j = cs_cap / D_min`` (Eq. 15); the
    blind run admits against the full budget of 1 despite the
    priority-inversion blocking.

    A lower resolution than the other experiments (10 instead of 100)
    keeps the beta terms non-negligible.
    """
    workload0 = balanced_workload(num_stages, loads[0], resolution=resolution)
    d_min = workload0.deadline_range[0]
    beta = cs_cap / d_min
    betas = [beta] * num_stages

    def build_segments(task, stage_index):
        c = task.computation_times[stage_index]
        cs = min(cs_cap, c / 2.0)
        open_part = (c - cs) / 2.0
        return [
            Segment(open_part),
            Segment(cs, lock=f"lock-stage{stage_index}"),
            Segment(open_part),
        ]

    result = ExperimentResult(
        experiment_id="ABL-BLOCKING",
        title="Critical-section (beta) ablation under PCP",
        x_label="input load (fraction of stage capacity)",
        y_label="miss ratio among admitted tasks",
        expectation=(
            "the blocking-aware budget admits slightly less and misses "
            "nothing; ignoring blocking can produce deadline misses"
        ),
    )
    variants = (
        (f"aware (budget {region_budget(1.0, betas):.3f})", betas),
        ("blind (budget 1.000)", None),
    )
    for label, beta_vec in variants:
        miss_series = Series(label=f"{label} miss")
        accept_series = Series(label=f"{label} accept")
        for load in loads:
            workload = balanced_workload(num_stages, load, resolution=resolution)
            misses: List[float] = []
            accepts: List[float] = []
            for s in seeds:
                sim = PipelineSimulation(
                    num_stages=num_stages,
                    betas=beta_vec,
                    segment_builder=build_segments,
                )
                rng = random.Random(s)
                sim.offer_stream(workload.tasks(horizon, rng))
                report = sim.run(horizon, warmup=horizon * 0.05)
                misses.append(report.miss_ratio())
                accepts.append(report.accept_ratio)
            miss_series.points.append(SeriesPoint(x=load, y=sum(misses) / len(misses)))
            accept_series.points.append(
                SeriesPoint(x=load, y=sum(accepts) / len(accepts))
            )
        result.series.append(miss_series)
        result.series.append(accept_series)
    return result


def run_overrun_ablation(
    overrun_factors: Sequence[float] = (1.0, 1.1, 1.25, 1.5, 2.0),
    load: float = 1.2,
    num_stages: int = 2,
    resolution: float = 20.0,
    horizon: float = 2000.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Failure injection: execution overruns vs declared demand.

    The exact admission test assumes declared computation times match
    reality.  This ablation under-charges every task by the overrun
    factor (tasks execute ``factor`` times longer than admitted for,
    via :class:`~repro.core.admission.ScaledDemand` with
    ``1 / factor``) and measures how the zero-miss guarantee degrades.
    A moderate resolution (20) makes individual tasks large enough for
    overruns to matter.
    """
    from ..core.admission import ScaledDemand

    result = ExperimentResult(
        experiment_id="ABL-OVERRUN",
        title="Execution-overrun robustness",
        x_label="overrun factor (actual / declared demand)",
        y_label="miss ratio among admitted tasks",
        expectation=(
            "zero misses at factor 1 (exact declarations); miss ratio "
            "grows gracefully with the overrun, not as a cliff"
        ),
    )
    miss_series = Series(label=f"miss ratio @ load {int(load * 100)}%")
    util_series = Series(label="average utilization")
    for factor in overrun_factors:
        workload = balanced_workload(num_stages, load, resolution=resolution)
        misses: List[float] = []
        utils: List[float] = []
        for s in seeds:
            report = run_pipeline_simulation(
                workload,
                horizon=horizon,
                seed=s,
                demand_model=ScaledDemand(1.0 / factor),
            )
            misses.append(report.miss_ratio())
            utils.append(report.average_utilization())
        miss_series.points.append(SeriesPoint(x=factor, y=sum(misses) / len(misses)))
        util_series.points.append(SeriesPoint(x=factor, y=sum(utils) / len(utils)))
    result.series.extend([miss_series, util_series])
    return result
