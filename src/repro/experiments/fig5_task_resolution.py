"""Figure 5 — effect of task resolution on accepted utilization.

Setup (Section 4.2): a two-stage balanced pipeline; task resolution
(average end-to-end deadline divided by average total computation
time) is swept while the offered per-stage load is held at one of
three levels.  y = average real per-stage utilization after admission
control.

Paper observation to reproduce: the higher the resolution, the higher
the fraction of accepted tasks (and hence the accepted utilization) —
"it is easier to generate unschedulable workloads when individual
tasks are larger".
"""

from __future__ import annotations

from typing import Sequence

from ..sim.metrics import mean_confidence_interval
from ..sim.pipeline import run_pipeline_simulation
from ..sim.workload import balanced_workload
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_RESOLUTIONS", "DEFAULT_LOADS"]

DEFAULT_RESOLUTIONS: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)
DEFAULT_LOADS: Sequence[float] = (0.8, 1.2, 1.6)
NUM_STAGES = 2


def run(
    resolutions: Sequence[float] = DEFAULT_RESOLUTIONS,
    loads: Sequence[float] = DEFAULT_LOADS,
    horizon: float = 3000.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Reproduce Figure 5.

    Args:
        resolutions: Task-resolution sweep (x axis).
        loads: Total per-stage load levels, one series each.
        horizon: Simulated time units per point (mean stage cost = 1).
        seeds: Replication seeds.

    Returns:
        One series per load level; y = average real per-stage
        utilization after admission control on a two-stage pipeline.
    """
    result = ExperimentResult(
        experiment_id="FIG5",
        title="Effect of task resolution (two-stage pipeline)",
        x_label="task resolution (avg deadline / avg total computation)",
        y_label="average real stage utilization after admission control",
        expectation=(
            "accepted utilization increases with resolution; higher "
            "offered load gives (weakly) higher accepted utilization"
        ),
    )
    for load in loads:
        series = Series(label=f"load {int(round(load * 100))}%")
        for resolution in resolutions:
            workload = balanced_workload(
                num_stages=NUM_STAGES, load=load, resolution=resolution
            )
            utils = []
            accepts = []
            for seed in seeds:
                report = run_pipeline_simulation(workload, horizon=horizon, seed=seed)
                utils.append(report.average_utilization())
                accepts.append(report.accept_ratio)
            mean, half = mean_confidence_interval(utils)
            series.points.append(
                SeriesPoint(
                    x=resolution,
                    y=mean,
                    detail={
                        "ci_half_width": half,
                        "accept_ratio": sum(accepts) / len(accepts),
                    },
                )
            )
        result.series.append(series)
    return result


def main() -> ExperimentResult:
    """Run with full defaults and print the table."""
    result = run()
    result.print()
    return result


if __name__ == "__main__":
    main()
