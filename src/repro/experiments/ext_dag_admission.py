"""Extension experiment — Theorem-2 admission for task graphs.

The paper derives the DAG generalization analytically (Section 3.3)
but evaluates only pipelines.  This extension experiment quantifies
what Theorem 2 buys: for the same per-resource demand, a task whose
subtasks run in *parallel* branches consumes only the critical-path
budget (``max`` across branches), so the admission controller accepts
strictly more load than it would if the graph were flattened into a
chain (``sum`` across all subtasks).

Setup: four resources; diamond-shaped tasks (R1 -> (R2 | R3) -> R4)
versus chain-shaped tasks with identical per-subtask demand, swept
over arrival rate.  y = accept ratio and average resource utilization.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dag import TaskGraph
from ..sim.graphworkload import GraphTemplate, GraphWorkload, run_graph_simulation
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_RATES"]

DEFAULT_RATES: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0)

RESOURCES = ("R1", "R2", "R3", "R4")


def _diamond() -> TaskGraph:
    return TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )


def _chain() -> TaskGraph:
    return TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (2, 3), (3, 4)],
    )


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    branch_cost: float = 1.2,
    stem_cost: float = 0.3,
    deadline_range: Sequence[float] = (20.0, 60.0),
    horizon: float = 1500.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Compare diamond vs chain admission across arrival rates.

    The parallel branches (subtasks 2 and 3) are deliberately heavier
    than the stem (subtasks 1 and 4): the diamond pays only the slower
    branch on its critical path, while the chain pays both — the gap
    between the two accept curves is Theorem 2's dividend.

    Args:
        rates: Poisson arrival rates to sweep.
        branch_cost: Mean computation time of the two branch subtasks.
        stem_cost: Mean computation time of the stem subtasks.
        deadline_range: Uniform end-to-end deadline range.
        horizon: Simulated time units per point.
        seeds: Replication seeds.

    Returns:
        Accept-ratio and utilization series for both shapes; the
        diamond's accept ratio must dominate the chain's (Theorem 2's
        ``max`` vs the pipeline ``sum``), with zero misses for both.
    """
    result = ExperimentResult(
        experiment_id="EXT-DAG",
        title="Theorem-2 admission: parallel branches vs flattened chain",
        x_label="arrival rate (tasks per time unit)",
        y_label="accept ratio / average resource utilization",
        expectation=(
            "identical per-subtask demand, but the diamond's critical "
            "path is shorter: it admits more than the chain at every "
            "rate; both shapes keep zero misses"
        ),
    )
    shapes = (("diamond", _diamond()), ("chain", _chain()))
    costs = {1: stem_cost, 2: branch_cost, 3: branch_cost, 4: stem_cost}
    for label, graph in shapes:
        accept_series = Series(label=f"{label} accept")
        util_series = Series(label=f"{label} util")
        miss_series = Series(label=f"{label} miss")
        template = GraphTemplate(name=label, graph=graph, mean_costs=costs)
        for rate in rates:
            workload = GraphWorkload(
                templates=(template,),
                arrival_rate=rate,
                deadline_range=tuple(deadline_range),
            )
            accepts, utils, misses = [], [], []
            for seed in seeds:
                report = run_graph_simulation(workload, horizon=horizon, seed=seed)
                accepts.append(report.accept_ratio)
                utils.append(report.average_utilization())
                misses.append(report.miss_ratio())
            accept_series.points.append(
                SeriesPoint(x=rate, y=sum(accepts) / len(accepts))
            )
            util_series.points.append(SeriesPoint(x=rate, y=sum(utils) / len(utils)))
            miss_series.points.append(SeriesPoint(x=rate, y=sum(misses) / len(misses)))
        result.series.extend([accept_series, util_series, miss_series])
    return result


def main() -> ExperimentResult:
    """Run with full defaults and print the table."""
    result = run()
    result.print()
    return result


if __name__ == "__main__":
    main()
