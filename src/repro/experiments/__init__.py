"""Experiment harness: one module per paper figure/table plus ablations.

Each module exposes ``run(...) -> ExperimentResult`` (structured
series) and ``main()`` (prints a table).  Benchmarks re-use ``run``
with reduced parameters; full-size outputs are recorded in
``EXPERIMENTS.md``.

- :mod:`repro.experiments.fig4_pipeline_length` — Figure 4;
- :mod:`repro.experiments.fig5_task_resolution` — Figure 5;
- :mod:`repro.experiments.fig6_load_imbalance` — Figure 6;
- :mod:`repro.experiments.fig7_approximate_admission` — Figure 7;
- :mod:`repro.experiments.tab1_tsce` — Table 1 / the TSCE case study;
- :mod:`repro.experiments.ablations` — reset / wait / alpha / blocking;
- :mod:`repro.experiments.ext_dag_admission` — extension: Theorem-2
  admission for task graphs (parallel branches vs flattened chain).
"""

from . import (
    ablations,
    ext_dag_admission,
    fig4_pipeline_length,
    fig5_task_resolution,
    fig6_load_imbalance,
    fig7_approximate_admission,
    tab1_tsce,
)
from .common import ExperimentResult, Series, SeriesPoint

__all__ = [
    "ExperimentResult",
    "Series",
    "SeriesPoint",
    "fig4_pipeline_length",
    "fig5_task_resolution",
    "fig6_load_imbalance",
    "fig7_approximate_admission",
    "tab1_tsce",
    "ablations",
    "ext_dag_admission",
]
