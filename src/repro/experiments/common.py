"""Shared result types for the experiment harness.

Every experiment module exposes a ``run(...)`` returning an
:class:`ExperimentResult` — labeled series of (x, y) points plus the
paper's qualitative expectation — and a ``main()`` that prints the
result as an aligned table.  Benchmarks re-use ``run`` with reduced
parameters; ``EXPERIMENTS.md`` records full-size outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SeriesPoint", "Series", "ExperimentResult"]


@dataclass(frozen=True)
class SeriesPoint:
    """One measured point of an experiment series.

    Attributes:
        x: Swept parameter value.
        y: Measured response.
        detail: Auxiliary measurements (e.g. accept ratio, miss ratio).
    """

    x: float
    y: float
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """A labeled curve: one line of the paper's figure."""

    label: str
    points: List[SeriesPoint] = field(default_factory=list)

    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self) -> List[float]:
        return [p.y for p in self.points]

    def y_at(self, x: float) -> Optional[float]:
        """The y value measured at ``x`` (exact match), or ``None``."""
        for p in self.points:
            if p.x == x:
                return p.y
        return None


@dataclass
class ExperimentResult:
    """The measured reproduction of one paper figure or table.

    Attributes:
        experiment_id: ``"FIG4"`` .. ``"FIG7"``, ``"TAB1"``, or an
            ablation id.
        title: Human-readable experiment title.
        x_label: Meaning of the swept parameter.
        y_label: Meaning of the measured response.
        series: One entry per curve.
        expectation: The paper's qualitative claim this run should
            reproduce (shape, not absolute values).
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    expectation: str = ""

    def to_table(self, precision: int = 4) -> str:
        """Render all series as one aligned text table (x as rows)."""
        xs = sorted({p.x for s in self.series for p in s.points})
        header = [self.x_label] + [s.label for s in self.series]
        rows: List[List[str]] = [header]
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                y = s.y_at(x)
                row.append("-" if y is None else f"{y:.{precision}f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        banner = f"{self.experiment_id}: {self.title}  [{self.y_label}]"
        return "\n".join([banner, "-" * len(banner)] + lines)

    def print(self) -> None:
        """Print the table and the paper expectation."""
        print(self.to_table())
        if self.expectation:
            print(f"paper expectation: {self.expectation}")
