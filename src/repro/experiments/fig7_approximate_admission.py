"""Figure 7 — miss ratio under approximate admission control.

Setup (Section 4.4): a balanced two-stage pipeline whose admission
controller does *not* know the actual per-task computation times —
it charges every arrival the *mean* demand instead
(:class:`~repro.core.admission.MeanDemand`).  Task resolution is swept
at two input loads; y = deadline-miss ratio among admitted tasks.

Paper observations to reproduce: no tasks miss their deadlines as long
as task resolution is high; as resolution decreases, a very small
fraction of tasks may miss — knowledge of exact computation times is
not essential in practice when resolution is high and occasional
misses are tolerable (soft real-time).
"""

from __future__ import annotations

from typing import Sequence

from ..core.admission import MeanDemand
from ..sim.metrics import mean_confidence_interval
from ..sim.pipeline import run_pipeline_simulation
from ..sim.workload import balanced_workload
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_RESOLUTIONS", "DEFAULT_LOADS"]

DEFAULT_RESOLUTIONS: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)
DEFAULT_LOADS: Sequence[float] = (1.0, 1.6)
NUM_STAGES = 2


def run(
    resolutions: Sequence[float] = DEFAULT_RESOLUTIONS,
    loads: Sequence[float] = DEFAULT_LOADS,
    horizon: float = 3000.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Reproduce Figure 7.

    Args:
        resolutions: Task-resolution sweep (x axis).
        loads: Input loads, one series each (paper shows two).
        horizon: Simulated time units per point.
        seeds: Replication seeds.

    Returns:
        One series per load; y = miss ratio among admitted tasks when
        the admission test uses the mean computation time.
    """
    result = ExperimentResult(
        experiment_id="FIG7",
        title="Miss ratio with approximate admission control",
        x_label="task resolution (avg deadline / avg total computation)",
        y_label="deadline-miss ratio of admitted tasks",
        expectation=(
            "zero misses at high resolution; a very small fraction of "
            "misses appears only as resolution decreases"
        ),
    )
    for load in loads:
        series = Series(label=f"load {int(round(load * 100))}%")
        for resolution in resolutions:
            workload = balanced_workload(
                num_stages=NUM_STAGES, load=load, resolution=resolution
            )
            demand = MeanDemand(workload.mean_stage_costs)
            misses = []
            accepts = []
            for seed in seeds:
                report = run_pipeline_simulation(
                    workload, horizon=horizon, seed=seed, demand_model=demand
                )
                misses.append(report.miss_ratio())
                accepts.append(report.accept_ratio)
            mean, half = mean_confidence_interval(misses)
            series.points.append(
                SeriesPoint(
                    x=resolution,
                    y=mean,
                    detail={
                        "ci_half_width": half,
                        "accept_ratio": sum(accepts) / len(accepts),
                    },
                )
            )
        result.series.append(series)
    return result


def main() -> ExperimentResult:
    """Run with full defaults and print the table."""
    result = run()
    result.print()
    return result


if __name__ == "__main__":
    main()
