"""Figure 6 — effect of load imbalance on the bottleneck stage.

Setup (Section 4.3): a two-stage pipeline whose mean computation times
differ by a swept ratio (the x axis, symmetric around the balanced
midpoint at ratio 1); the arrival rate keeps the *bottleneck* stage at
a fixed offered load.  y = average real utilization of the bottleneck
stage after admission control.

Paper observation to reproduce: the bottleneck utilization is lowest
at the balanced midpoint and grows as the imbalance increases in
either direction — an imbalanced system is dominated by its bottleneck
resource and approaches single-resource behavior, so the admission
controller "opportunistically increases the utilization of one stage
when the other is underutilized".
"""

from __future__ import annotations

from typing import Sequence

from ..sim.metrics import mean_confidence_interval
from ..sim.pipeline import run_pipeline_simulation
from ..sim.workload import imbalanced_two_stage_workload
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_RATIOS"]

DEFAULT_RATIOS: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def run(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    bottleneck_load: float = 1.2,
    resolution: float = 100.0,
    horizon: float = 3000.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Reproduce Figure 6.

    Args:
        ratios: Mean-computation-time ratios across the two stages;
            1.0 is the balanced midpoint.
        bottleneck_load: Offered load held constant at the slower
            stage (the sweep compares like against like).
        resolution: Task resolution.
        horizon: Simulated time units per point.
        seeds: Replication seeds.

    Returns:
        A single series; y = bottleneck-stage real utilization.
    """
    result = ExperimentResult(
        experiment_id="FIG6",
        title="Effect of load imbalance (two-stage pipeline)",
        x_label="mean computation-time ratio across stages",
        y_label="bottleneck-stage real utilization after admission control",
        expectation=(
            "minimum at the balanced midpoint (ratio 1); grows toward "
            "the single-resource level as imbalance increases either way"
        ),
    )
    series = Series(label=f"bottleneck load {int(round(bottleneck_load * 100))}%")
    for ratio in ratios:
        workload = imbalanced_two_stage_workload(
            cost_ratio=ratio,
            bottleneck_load=bottleneck_load,
            resolution=resolution,
        )
        utils = []
        accepts = []
        for seed in seeds:
            report = run_pipeline_simulation(workload, horizon=horizon, seed=seed)
            utils.append(report.bottleneck_utilization())
            accepts.append(report.accept_ratio)
        mean, half = mean_confidence_interval(utils)
        series.points.append(
            SeriesPoint(
                x=ratio,
                y=mean,
                detail={
                    "ci_half_width": half,
                    "accept_ratio": sum(accepts) / len(accepts),
                },
            )
        )
    result.series.append(series)
    return result


def main() -> ExperimentResult:
    """Run with full defaults and print the table."""
    result = run()
    result.print()
    return result


if __name__ == "__main__":
    main()
