"""Figure 4 — effect of pipeline length on admission control.

Setup (Section 4.1): balanced stages with exponential computation
times, average total computation ~ 1/100 of the average end-to-end
deadline, deadlines uniform from a range growing linearly with the
number of stages, Poisson arrivals, deadline-monotonic scheduling.
Input load swept from 60% to 200% of stage capacity; one curve per
pipeline length.

Paper observations to reproduce:

1. Real stage utilization after admission control is high — more than
   80% at 100% input load ("a very good schedulable utilization for
   fixed-priority scheduling").
2. The curves for 2, 3 and 5 stages are almost identical — increasing
   pipeline length has no adverse effect on the bound.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.metrics import mean_confidence_interval
from ..sim.pipeline import run_pipeline_simulation
from ..sim.workload import balanced_workload
from .common import ExperimentResult, Series, SeriesPoint

__all__ = ["run", "main", "DEFAULT_LOADS", "DEFAULT_LENGTHS"]

DEFAULT_LOADS: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
DEFAULT_LENGTHS: Sequence[int] = (1, 2, 3, 5)


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    resolution: float = 100.0,
    horizon: float = 3000.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Reproduce Figure 4.

    Args:
        loads: Input loads as fractions of stage capacity (paper:
            0.6 .. 2.0).
        lengths: Pipeline lengths (paper: 1, 2, 3, 5).
        resolution: Task resolution (paper: ~100 — "liquid-like").
        horizon: Simulated time units per point (mean stage cost = 1).
        seeds: Replication seeds; the reported y is the replication
            mean, with the half-width stored in the point detail.

    Returns:
        One series per pipeline length; y = average real stage
        utilization after admission control.
    """
    result = ExperimentResult(
        experiment_id="FIG4",
        title="Effect of pipeline length",
        x_label="input load (fraction of stage capacity)",
        y_label="average real stage utilization after admission control",
        expectation=(
            "utilization > 0.8 at 100% input load; curves for 2, 3, 5 "
            "stages nearly identical (no added pessimism with depth)"
        ),
    )
    for length in lengths:
        series = Series(label=f"{length} stage{'s' if length > 1 else ''}")
        for load in loads:
            workload = balanced_workload(
                num_stages=length, load=load, resolution=resolution
            )
            utils = []
            accepts = []
            misses = []
            for seed in seeds:
                report = run_pipeline_simulation(workload, horizon=horizon, seed=seed)
                utils.append(report.average_utilization())
                accepts.append(report.accept_ratio)
                misses.append(report.miss_ratio())
            mean, half = mean_confidence_interval(utils)
            series.points.append(
                SeriesPoint(
                    x=load,
                    y=mean,
                    detail={
                        "ci_half_width": half,
                        "accept_ratio": sum(accepts) / len(accepts),
                        "miss_ratio": sum(misses) / len(misses),
                    },
                )
            )
        result.series.append(series)
    return result


def main() -> ExperimentResult:
    """Run with full defaults and print the table."""
    result = run()
    result.print()
    return result


if __name__ == "__main__":
    main()
