"""Shared floating-point comparison helpers.

Every quantity in the feasible-region analysis — deadlines, arrival
times, per-stage costs ``C_ij``, synthetic utilizations ``C_ij / D_i``,
delay factors ``f(U)`` — is a float accumulated through sums and
divisions, so raw ``==``/``!=`` between two such values silently turns
numeric noise into admission or deadline-miss decisions.  All tolerance
handling is centralized here; ``repro.lint`` rule ``FLT001`` flags raw
equality between time/utilization expressions and points offenders at
this module.

The metric is relative with an absolute floor of 1: two values are
equal when ``|a - b| <= tol * max(1, |a|, |b|)``.  The floor makes the
tolerance behave absolutely for the O(1) normalized quantities the
analysis mostly manipulates (utilizations, delay factors, ratios) while
still scaling for large absolute times late in long simulations.
"""

from __future__ import annotations

import math

__all__ = ["EPS", "approx_eq", "approx_le", "approx_ge"]

#: Default comparison tolerance.  Matches the ad-hoc ``1e-9`` the
#: harmonic-chain detection historically used; loose enough to absorb
#: accumulated rounding over ~1e6-event simulations, tight enough to
#: never conflate two distinct model parameters.
EPS: float = 1e-9


def approx_eq(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a`` and ``b`` are equal within ``tol``.

    Uses ``|a - b| <= tol * max(1, |a|, |b|)``.  Exact equality
    short-circuits first, so infinities compare equal to themselves
    (``approx_eq(inf, inf)`` is True — needed by fixed-point iterations
    whose divergent branches saturate to ``inf``).  NaN is never equal
    to anything, mirroring IEEE semantics.
    """
    if a == b:  # repro: noqa[FLT001] — exact shortcut; handles inf == inf
        return True
    if math.isinf(a) or math.isinf(b) or math.isnan(a) or math.isnan(b):
        return False
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def approx_le(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a <= b`` within ``tol`` (true when ``a`` is smaller or close).

    The tolerant form of budget checks such as Eq. 13's
    ``sum_j f(U_j) <= alpha``: a region value exceeding the budget by
    mere rounding noise still counts as feasible.
    """
    return a <= b or approx_eq(a, b, tol)


def approx_ge(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a >= b`` within ``tol`` (true when ``a`` is larger or close)."""
    return a >= b or approx_eq(a, b, tol)
