"""Shared floating-point comparison helpers and exact accumulation.

Every quantity in the feasible-region analysis — deadlines, arrival
times, per-stage costs ``C_ij``, synthetic utilizations ``C_ij / D_i``,
delay factors ``f(U)`` — is a float accumulated through sums and
divisions, so raw ``==``/``!=`` between two such values silently turns
numeric noise into admission or deadline-miss decisions.  All tolerance
handling is centralized here; ``repro.lint`` rule ``FLT001`` flags raw
equality between time/utilization expressions and points offenders at
this module.

The metric is relative with an absolute floor of 1: two values are
equal when ``|a - b| <= tol * max(1, |a|, |b|)``.  The floor makes the
tolerance behave absolutely for the O(1) normalized quantities the
analysis mostly manipulates (utilizations, delay factors, ratios) while
still scaling for large absolute times late in long simulations.

:class:`ExactSum` is the long-accumulator counterpart: running sums
whose adds *and removals* must be exact, invertible, and independent of
operation order (the synthetic-utilization bookkeeping, stage busy-time
accounting).  It holds the mathematically exact sum as an arbitrary-
precision integer in units of ``2**-1074`` — the smallest positive
subnormal, of which every finite IEEE-754 double is an exact integer
multiple — so no information is ever lost and subtracting a previously
added value restores the prior state bit-for-bit.  ``value()`` performs
the single correctly-rounded (ties-to-even) conversion back to a float,
matching ``math.fsum`` over the same multiset of addends.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable

__all__ = ["EPS", "approx_eq", "approx_le", "approx_ge", "ExactSum"]

#: Default comparison tolerance.  Matches the ad-hoc ``1e-9`` the
#: harmonic-chain detection historically used; loose enough to absorb
#: accumulated rounding over ~1e6-event simulations, tight enough to
#: never conflate two distinct model parameters.
EPS: float = 1e-9


def approx_eq(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a`` and ``b`` are equal within ``tol``.

    Uses ``|a - b| <= tol * max(1, |a|, |b|)``.  Exact equality
    short-circuits first, so infinities compare equal to themselves
    (``approx_eq(inf, inf)`` is True — needed by fixed-point iterations
    whose divergent branches saturate to ``inf``).  NaN is never equal
    to anything, mirroring IEEE semantics.
    """
    if a == b:  # repro: noqa[FLT001] — exact shortcut; handles inf == inf
        return True
    if math.isinf(a) or math.isinf(b) or math.isnan(a) or math.isnan(b):
        return False
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def approx_le(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a <= b`` within ``tol`` (true when ``a`` is smaller or close).

    The tolerant form of budget checks such as Eq. 13's
    ``sum_j f(U_j) <= alpha``: a region value exceeding the budget by
    mere rounding noise still counts as feasible.
    """
    return a <= b or approx_eq(a, b, tol)


def approx_ge(a: float, b: float, tol: float = EPS) -> bool:
    """Whether ``a >= b`` within ``tol`` (true when ``a`` is larger or close)."""
    return a >= b or approx_eq(a, b, tol)


#: Scale exponent of the fixed-point representation.  ``2**-1074`` is
#: the smallest positive subnormal double; every finite double equals
#: ``m * 2**-1074`` for some integer ``m``, so the representation below
#: is lossless for arbitrary finite inputs.
_FIXED_SCALE = 1074


def _to_fixed(x: float) -> int:
    """Exact fixed-point image of a finite float, in units of ``2**-1074``."""
    n, d = x.as_integer_ratio()
    # d is always a power of two for a float, so this shift is exact.
    return n << (_FIXED_SCALE - (d.bit_length() - 1))


def _fixed_to_float(fixed: int) -> float:
    """Round a fixed-point value (units of ``2**-1074``) to the nearest
    double, ties to even — the single rounding step of the accumulator.

    Mirrors IEEE round-to-nearest so the result matches what
    ``math.fsum`` would return for any multiset of addends with the
    same exact sum.
    """
    if fixed == 0:
        return 0.0
    magnitude = abs(fixed)
    nbits = magnitude.bit_length()
    if nbits <= 53:
        # Fits in the significand (covers all subnormal results and
        # small normals): ldexp is exact, no rounding needed.
        result = math.ldexp(float(magnitude), -_FIXED_SCALE)
    else:
        shift = nbits - 54
        top = magnitude >> shift  # 54 bits: 53 result bits + round bit
        q = top >> 1
        # Sticky test without materializing a mask over the discarded
        # bits: they are nonzero iff shifting `top` back up loses
        # information.  Evaluated lazily — only on the halfway case,
        # and only when the tie-to-even test doesn't already decide.
        if (top & 1) and ((q & 1) or (top << shift) != magnitude):
            q += 1  # round up: above halfway, or tie with odd quotient
        result = math.ldexp(float(q), shift + 1 - _FIXED_SCALE)
    return -result if fixed < 0 else result


class ExactSum:
    """Exact, invertible running sum of finite floats.

    The true sum is held as an arbitrary-precision integer in units of
    ``2**-1074``, so :meth:`add` and :meth:`subtract` never round: the
    state after any sequence of operations is a function only of the
    *multiset* of currently included addends, independent of the order
    in which they were added or removed, and removing a value restores
    the exact prior state.  :meth:`value` performs the one rounding
    step (to nearest, ties to even), matching ``math.fsum`` over the
    same multiset.  Like ``fsum``, a sum that is exactly zero yields
    ``+0.0`` regardless of the signs of the (cancelling or zero)
    addends.

    Adds cost O(1) bigint work (the integers stay within a few machine
    words for utilization-scale values); the win is that *removal* is
    also O(1), where a cancellation-safe float scheme would need an
    O(n) recompute over the surviving addends.
    """

    __slots__ = ("_fixed",)

    def __init__(self) -> None:
        self._fixed = 0  # exact sum, units of 2**-1074

    def add(self, x: float) -> None:
        """Include finite ``x`` in the sum exactly."""
        n, d = x.as_integer_ratio()  # raises for inf/nan
        if n:
            self._fixed += n << (_FIXED_SCALE - (d.bit_length() - 1))

    def subtract(self, x: float) -> None:
        """Remove one previously added ``x``; exact inverse of :meth:`add`."""
        n, d = x.as_integer_ratio()  # raises for inf/nan
        if n:
            self._fixed -= n << (_FIXED_SCALE - (d.bit_length() - 1))

    def add_all(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def value(self) -> float:
        """The correctly rounded float sum (ties to even, fsum parity)."""
        return _fixed_to_float(self._fixed)

    def is_zero(self) -> bool:
        """Whether the exact sum is exactly zero."""
        return self._fixed == 0

    def clear(self) -> None:
        self._fixed = 0

    def copy(self) -> "ExactSum":
        dup = ExactSum()
        dup._fixed = self._fixed
        return dup

    def load_float(self, x: float) -> None:
        """Reset the state to represent the single float ``x``.

        Used when restoring from legacy serialized state that recorded
        only the rounded running sum: the accumulator then carries the
        rounded value forward exactly.
        """
        if not math.isfinite(x):
            raise ValueError(f"ExactSum requires a finite value, got {x!r}")
        self._fixed = _to_fixed(x)

    def state(self) -> Dict[str, Any]:
        """JSON-safe exact state (hex-encoded fixed-point integer)."""
        return {"fixed": hex(self._fixed)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ExactSum":
        """Rebuild from :meth:`state` output; raises ``ValueError`` on
        malformed documents."""
        try:
            fixed = int(str(state["fixed"]), 16)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed ExactSum state: {state!r}") from exc
        acc = cls()
        acc._fixed = fixed
        return acc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactSum):
            return NotImplemented
        return self._fixed == other._fixed

    def __hash__(self) -> int:
        return hash(self._fixed)

    def __repr__(self) -> str:
        return f"ExactSum(value={self.value()!r})"
