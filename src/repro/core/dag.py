"""Arbitrary task graphs: delay expressions and Theorem 2.

Section 3.3 generalizes the pipeline result to tasks given by a
directed acyclic graph of subtasks, each allocated to a (potentially
different) resource.  If ``d(L_1, ..., L_M)`` expresses the end-to-end
delay of the task as a function of per-subtask stage delays — series
composition sums, parallel branches take the max — then the feasible
region is (Theorem 2)

    d( f(U_k1) + beta_k1, ..., f(U_kM) + beta_kM ) <= alpha

where ``k_i`` is the resource of subtask ``i``.  Multiple subtasks may
be allocated to the same resource; they then share that resource's
synthetic-utilization term.

Two equivalent APIs are provided:

- :class:`DelayExpression` — an explicit series/parallel algebra
  mirroring how the paper writes Eq. 16:
  ``seq(leaf("R1"), par(leaf("R2"), leaf("R3")), leaf("R4"))``.
- :class:`TaskGraph` — an adjacency-list DAG whose end-to-end delay is
  its longest (critical) path; works for graphs that are not
  series-parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from .bounds import stage_delay_factor

__all__ = [
    "DelayExpression",
    "leaf",
    "seq",
    "par",
    "TaskGraph",
    "dag_region_value",
    "is_dag_feasible",
]


# ----------------------------------------------------------------------
# Series/parallel delay algebra
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DelayExpression:
    """A series/parallel expression over per-resource stage delays.

    Nodes are one of:

    - ``leaf(resource)`` — the delay of one subtask on ``resource``;
    - ``seq(e1, ..., en)`` — subtasks in precedence order (delays add);
    - ``par(e1, ..., en)`` — parallel branches (delays max).

    ``evaluate`` plugs in per-resource values; used both with measured
    delays (``L`` values) and with normalized ``f(U) + beta`` terms for
    the Theorem-2 feasibility check.
    """

    kind: str  # "leaf" | "seq" | "par"
    resource: Optional[Hashable] = None
    children: Tuple["DelayExpression", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("leaf", "seq", "par"):
            raise ValueError(f"unknown delay-expression kind {self.kind!r}")
        if self.kind == "leaf":
            if self.resource is None:
                raise ValueError("leaf expressions need a resource")
            if self.children:
                raise ValueError("leaf expressions take no children")
        else:
            if not self.children:
                raise ValueError(f"{self.kind} expressions need at least one child")

    def evaluate(self, delays: Mapping[Hashable, float]) -> float:
        """Evaluate the expression with one delay value per resource.

        Args:
            delays: Maps each resource appearing in the expression to
                its per-subtask delay term.

        Raises:
            KeyError: If a referenced resource is missing.
        """
        if self.kind == "leaf":
            return delays[self.resource]
        child_values = [c.evaluate(delays) for c in self.children]
        return sum(child_values) if self.kind == "seq" else max(child_values)

    def resources(self) -> Tuple[Hashable, ...]:
        """All resources referenced, in left-to-right first-appearance order."""
        seen: List[Hashable] = []
        self._collect(seen)
        return tuple(seen)

    def _collect(self, seen: List[Hashable]) -> None:
        if self.kind == "leaf":
            if self.resource not in seen:
                seen.append(self.resource)
        else:
            for child in self.children:
                child._collect(seen)

    def region_value(
        self,
        utilizations: Mapping[Hashable, float],
        betas: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """Theorem-2 left-hand side: ``d(f(U_k) + beta_k, ...)``."""
        terms = {
            r: stage_delay_factor(utilizations[r]) + (betas.get(r, 0.0) if betas else 0.0)
            for r in self.resources()
        }
        return self.evaluate(terms)

    def is_feasible(
        self,
        utilizations: Mapping[Hashable, float],
        alpha: float = 1.0,
        betas: Optional[Mapping[Hashable, float]] = None,
    ) -> bool:
        """Theorem-2 feasibility: ``region_value <= alpha``.

        Blocking is folded into the per-resource terms (``beta_k``), so
        the budget here is plain ``alpha`` rather than
        ``alpha (1 - sum beta)`` — matching Eq. 17, where the paper adds
        ``beta`` inside ``d``.
        """
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return self.region_value(utilizations, betas) <= alpha


def leaf(resource: Hashable) -> DelayExpression:
    """Delay of a single subtask executing on ``resource``."""
    return DelayExpression(kind="leaf", resource=resource)


def seq(*children: DelayExpression) -> DelayExpression:
    """Series composition: precedence-ordered subtasks, delays add."""
    return DelayExpression(kind="seq", children=tuple(children))


def par(*children: DelayExpression) -> DelayExpression:
    """Parallel composition: independent branches, the slowest dominates."""
    return DelayExpression(kind="par", children=tuple(children))


# ----------------------------------------------------------------------
# General DAGs via critical-path analysis
# ----------------------------------------------------------------------


@dataclass
class TaskGraph:
    """A directed acyclic graph of subtasks with resource assignments.

    Nodes are subtask identifiers; each node is assigned a resource via
    ``resource_of``.  The end-to-end delay of the task is the longest
    path through the DAG where each node weighs its subtask's stage
    delay — exactly the ``d(...)`` of Theorem 2 for graphs that need
    not be series-parallel.

    Attributes:
        resource_of: Maps subtask id -> resource id.
        edges: Precedence edges ``(u, v)`` meaning ``u`` before ``v``.
    """

    resource_of: Dict[Hashable, Hashable]
    edges: List[Tuple[Hashable, Hashable]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if u not in self.resource_of or v not in self.resource_of:
                raise ValueError(f"edge ({u!r}, {v!r}) references an unknown subtask")
            if u == v:
                raise ValueError(f"self-loop on subtask {u!r}")
        self._topo_order()  # raises on cycles

    @property
    def subtasks(self) -> Tuple[Hashable, ...]:
        return tuple(self.resource_of)

    def resources(self) -> Tuple[Hashable, ...]:
        """Distinct resources used, in first-appearance order."""
        seen: List[Hashable] = []
        for r in self.resource_of.values():
            if r not in seen:
                seen.append(r)
        return tuple(seen)

    def _topo_order(self) -> List[Hashable]:
        """Kahn topological order; raises ``ValueError`` on a cycle."""
        indegree: Dict[Hashable, int] = {n: 0 for n in self.resource_of}
        adjacency: Dict[Hashable, List[Hashable]] = {n: [] for n in self.resource_of}
        for u, v in self.edges:
            adjacency[u].append(v)
            indegree[v] += 1
        frontier = [n for n, d in indegree.items() if d == 0]
        order: List[Hashable] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for succ in adjacency[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.resource_of):
            raise ValueError("task graph contains a cycle")
        return order

    def critical_path_delay(self, node_delay: Mapping[Hashable, float]) -> float:
        """Longest-path end-to-end delay given per-subtask delays.

        Args:
            node_delay: Maps subtask id -> delay spent by the subtask
                at its resource.

        Returns:
            ``max`` over all source-to-sink paths of the summed delays;
            0.0 for an empty graph.
        """
        order = self._topo_order()
        adjacency: Dict[Hashable, List[Hashable]] = {n: [] for n in self.resource_of}
        for u, v in self.edges:
            adjacency[u].append(v)
        finish: Dict[Hashable, float] = {}
        best = 0.0
        # Process in reverse topological order: finish[n] = delay(n) + max succ.
        for node in reversed(order):
            tail = max((finish[s] for s in adjacency[node]), default=0.0)
            finish[node] = node_delay[node] + tail
            best = max(best, finish[node])
        return best

    def critical_path(self, node_delay: Mapping[Hashable, float]) -> List[Hashable]:
        """Return one longest path as an ordered list of subtask ids."""
        order = self._topo_order()
        adjacency: Dict[Hashable, List[Hashable]] = {n: [] for n in self.resource_of}
        for u, v in self.edges:
            adjacency[u].append(v)
        finish: Dict[Hashable, float] = {}
        successor: Dict[Hashable, Optional[Hashable]] = {}
        for node in reversed(order):
            best_succ, best_val = None, 0.0
            for s in adjacency[node]:
                if finish[s] > best_val:
                    best_succ, best_val = s, finish[s]
            finish[node] = node_delay[node] + best_val
            successor[node] = best_succ
        if not finish:
            return []
        start = max(finish, key=lambda n: finish[n])
        path: List[Hashable] = []
        cursor: Optional[Hashable] = start
        while cursor is not None:
            path.append(cursor)
            cursor = successor[cursor]
        return path

    def region_value(
        self,
        utilizations: Mapping[Hashable, float],
        betas: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """Theorem-2 left-hand side evaluated along the critical path.

        Each subtask contributes ``f(U_k) + beta_k`` of its assigned
        resource ``k``; subtasks sharing a resource share its
        utilization value.
        """
        node_terms = {
            n: stage_delay_factor(utilizations[self.resource_of[n]])
            + (betas.get(self.resource_of[n], 0.0) if betas else 0.0)
            for n in self.resource_of
        }
        return self.critical_path_delay(node_terms)

    def is_feasible(
        self,
        utilizations: Mapping[Hashable, float],
        alpha: float = 1.0,
        betas: Optional[Mapping[Hashable, float]] = None,
    ) -> bool:
        """Theorem-2 feasibility check for this task graph."""
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return self.region_value(utilizations, betas) <= alpha

    def to_delay_expression(self) -> DelayExpression:
        """Convert a *chain* graph to a series expression (convenience).

        Only graphs whose nodes form a single precedence chain are
        convertible; general DAGs should use the critical-path methods.

        Raises:
            ValueError: If the graph is not a simple chain.
        """
        out_degree = {n: 0 for n in self.resource_of}
        in_degree = {n: 0 for n in self.resource_of}
        for u, v in self.edges:
            out_degree[u] += 1
            in_degree[v] += 1
        if any(d > 1 for d in out_degree.values()) or any(d > 1 for d in in_degree.values()):
            raise ValueError("graph is not a simple chain")
        order = self._topo_order()
        if not order:
            raise ValueError("cannot convert an empty graph")
        return seq(*(leaf(self.resource_of[n]) for n in order))


def dag_region_value(
    graph: TaskGraph,
    utilizations: Mapping[Hashable, float],
    betas: Optional[Mapping[Hashable, float]] = None,
) -> float:
    """Functional alias for :meth:`TaskGraph.region_value`."""
    return graph.region_value(utilizations, betas)


def is_dag_feasible(
    graph: TaskGraph,
    utilizations: Mapping[Hashable, float],
    alpha: float = 1.0,
    betas: Optional[Mapping[Hashable, float]] = None,
) -> bool:
    """Functional alias for :meth:`TaskGraph.is_feasible`."""
    return graph.is_feasible(utilizations, alpha, betas)
