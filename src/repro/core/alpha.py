"""Urgency-inversion parameter ``alpha`` for fixed-priority policies.

A *fixed-priority* scheduling policy, in the aperiodic context, assigns
each task a priority that is fixed across all pipeline stages and is
not a function of the task's arrival time (Section 2).  EDF is *not*
fixed priority under this definition, because the absolute deadline
``A_i + D_i`` depends on the arrival time.

An *urgency inversion* occurs when a less urgent task (longer relative
deadline) is given an equal or higher priority than a more urgent one.
With ``T_hi`` the higher-priority and ``T_lo`` the lower-priority task
of such a pair, the policy parameter is

    alpha = min_{T_hi >= T_lo} D_lo / D_hi

the minimum relative-deadline ratio across all priority-ordered task
pairs, clamped to 1.  Deadline-monotonic has no urgency inversion, so
``alpha = 1``; random priorities give ``alpha = D_least / D_most``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Sequence, Tuple

__all__ = [
    "urgency_inversion_alpha",
    "alpha_deadline_monotonic",
    "alpha_random_priority",
    "alpha_from_pairs",
]


def alpha_from_pairs(pairs: Iterable[Tuple[float, float]]) -> float:
    """Compute ``alpha`` from explicit ``(D_hi, D_lo)`` priority-ordered pairs.

    Args:
        pairs: Iterable of ``(D_hi, D_lo)`` relative-deadline pairs
            where the first task has equal or higher priority than the
            second.

    Returns:
        ``min(1, min D_lo / D_hi)``; 1.0 for an empty iterable (no
        inversion possible).

    Raises:
        ValueError: If any deadline is not positive.
    """
    alpha = 1.0
    for d_hi, d_lo in pairs:
        if d_hi <= 0 or d_lo <= 0:
            raise ValueError(f"deadlines must be > 0, got pair ({d_hi}, {d_lo})")
        ratio = d_lo / d_hi
        if ratio < alpha:
            alpha = ratio
    return alpha


def urgency_inversion_alpha(
    deadlines: Sequence[float],
    priorities: Sequence[float],
) -> float:
    """Compute ``alpha`` for an explicit priority assignment.

    Args:
        deadlines: Relative deadline ``D_i`` of each task.
        priorities: Numeric priority of each task; *larger values mean
            higher priority*.  Equal priorities count as inversions in
            both directions, matching the ``>=`` in the paper's
            definition.

    Returns:
        ``alpha`` in ``(0, 1]``.

    Raises:
        ValueError: On length mismatch or non-positive deadlines.

    The computation is ``O(n log n)``: after sorting by priority
    descending, for each task taken as the lower-priority member the
    worst partner is the longest-deadline task seen so far (including
    its own priority class, excluding itself).
    """
    if len(deadlines) != len(priorities):
        raise ValueError(
            f"deadlines ({len(deadlines)}) and priorities ({len(priorities)}) "
            "must have the same length"
        )
    for d in deadlines:
        if d <= 0 or not math.isfinite(d):
            raise ValueError(f"deadlines must be finite and > 0, got {d}")
    n = len(deadlines)
    if n < 2:
        return 1.0

    order = sorted(range(n), key=lambda i: -priorities[i])
    alpha = 1.0
    max_d_higher = -math.inf  # longest deadline among strictly higher priorities
    i = 0
    while i < n:
        # Process one priority class at a time so equal-priority pairs
        # are compared against each other in both directions.
        j = i
        class_max = -math.inf
        while j < n and priorities[order[j]] == priorities[order[i]]:
            class_max = max(class_max, deadlines[order[j]])
            j += 1
        for k in range(i, j):
            d_lo = deadlines[order[k]]
            # Partner of highest deadline with >= priority, excluding self.
            d_hi = max_d_higher
            if j - i > 1:
                # Another member of the same class exists; if this task
                # holds the class max, use the second largest.
                # Identity question ("is this task the class max?"), not a
                # numeric-tolerance one: both values come verbatim from
                # the same deadlines list.
                if d_lo == class_max:  # repro: noqa[FLT001] — identity test on values copied verbatim from one list
                    second = max(
                        (deadlines[order[m]] for m in range(i, j) if m != k),
                        default=-math.inf,
                    )
                    d_hi = max(d_hi, second)
                else:
                    d_hi = max(d_hi, class_max)
            if d_hi > 0 and math.isfinite(d_hi):
                ratio = d_lo / d_hi
                if ratio < alpha:
                    alpha = ratio
        max_d_higher = max(max_d_higher, class_max)
        i = j
    return alpha


def alpha_deadline_monotonic(deadlines: Sequence[float]) -> float:
    """``alpha`` under deadline-monotonic priorities — always 1.

    DM assigns higher priority to shorter relative deadlines, so no
    urgency inversion can occur.  Provided for symmetry and verified by
    the generic computation in tests.
    """
    for d in deadlines:
        if d <= 0:
            raise ValueError(f"deadlines must be > 0, got {d}")
    return 1.0


def alpha_random_priority(deadlines: Sequence[float]) -> float:
    """Worst-case ``alpha`` when priorities are assigned arbitrarily.

    With no relation between priority and urgency, the worst pair is
    the least urgent task over the most urgent one:
    ``alpha = D_least / D_most`` (Section 2).
    """
    ds = list(deadlines)
    if not ds:
        return 1.0
    for d in ds:
        if d <= 0:
            raise ValueError(f"deadlines must be > 0, got {d}")
    return min(ds) / max(ds)


def alpha_for_policy(
    deadlines: Sequence[float],
    priority_of: Callable[[int], float],
) -> float:
    """Convenience wrapper: derive priorities via a callback then compute alpha.

    Args:
        deadlines: Relative deadlines, indexed by task position.
        priority_of: Maps a task index to its numeric priority (larger
            = higher priority).
    """
    priorities: List[float] = [priority_of(i) for i in range(len(deadlines))]
    return urgency_inversion_alpha(deadlines, priorities)
