"""Core analytical machinery: task model, feasible regions, admission control.

This package is pure computation — no simulation dependencies.  It
implements the paper's primary contribution:

- :mod:`repro.core.task` — aperiodic pipeline tasks and periodic specs;
- :mod:`repro.core.bounds` — the stage delay factor ``f(U)`` and the
  pipeline feasibility conditions (Eqs. 12/13/15);
- :mod:`repro.core.alpha` — the urgency-inversion parameter ``alpha``;
- :mod:`repro.core.numeric` — shared float-comparison tolerances
  (``EPS``, ``approx_eq``, ``approx_le``, ``approx_ge``) and the
  exact running-sum accumulator (``ExactSum``);
- :mod:`repro.core.synthetic` — synthetic-utilization accounting with
  deadline expiry and idle resets;
- :mod:`repro.core.dag` — series/parallel delay algebra and Theorem 2
  for arbitrary task graphs;
- :mod:`repro.core.regions` — region objects with boundary geometry;
- :mod:`repro.core.admission` — the O(N) admission controller with
  reservations, shedding, capacity-aware degradation, state resync,
  and approximate (mean-demand) mode;
- :mod:`repro.core.audit` — invariant auditing of the controller's
  bookkeeping state against ground truth;
- :mod:`repro.core.reservation` — Section-5 reservation planning.
"""

from .admission import (
    AdmissionDecision,
    DemandModel,
    ExactDemand,
    MeanDemand,
    PipelineAdmissionController,
    ResyncReport,
    ScaledDemand,
)
from .audit import AUDIT_KINDS, ControllerAuditor, InvariantViolation
from .alpha import (
    alpha_deadline_monotonic,
    alpha_for_policy,
    alpha_from_pairs,
    alpha_random_priority,
    urgency_inversion_alpha,
)
from .bounds import (
    UNIPROCESSOR_APERIODIC_BOUND,
    inverse_stage_delay_factor,
    is_pipeline_feasible,
    pipeline_margin,
    pipeline_region_value,
    region_budget,
    single_resource_bound,
    stage_delay,
    stage_delay_factor,
    uniform_per_stage_bound,
)
from .dag import (
    DelayExpression,
    TaskGraph,
    dag_region_value,
    is_dag_feasible,
    leaf,
    par,
    seq,
)
from .numeric import EPS, ExactSum, approx_eq, approx_ge, approx_le
from .regions import DagFeasibleRegion, PipelineFeasibleRegion
from .reservation import (
    CriticalTask,
    ReservationPlan,
    aperiodic_capacity,
    build_reservation,
)
from .synthetic import StageUtilizationTracker
from .task import (
    PeriodicTaskSpec,
    PipelineTask,
    make_task,
    periodic_spec,
    task_priority_deadline_monotonic,
    validate_task,
)

__all__ = [
    # task
    "PipelineTask",
    "PeriodicTaskSpec",
    "make_task",
    "periodic_spec",
    "task_priority_deadline_monotonic",
    "validate_task",
    # bounds
    "stage_delay_factor",
    "inverse_stage_delay_factor",
    "stage_delay",
    "pipeline_region_value",
    "region_budget",
    "is_pipeline_feasible",
    "pipeline_margin",
    "single_resource_bound",
    "uniform_per_stage_bound",
    "UNIPROCESSOR_APERIODIC_BOUND",
    # alpha
    "urgency_inversion_alpha",
    "alpha_deadline_monotonic",
    "alpha_random_priority",
    "alpha_from_pairs",
    "alpha_for_policy",
    # numeric
    "EPS",
    "ExactSum",
    "approx_eq",
    "approx_le",
    "approx_ge",
    # synthetic
    "StageUtilizationTracker",
    # dag
    "DelayExpression",
    "TaskGraph",
    "leaf",
    "seq",
    "par",
    "dag_region_value",
    "is_dag_feasible",
    # regions
    "PipelineFeasibleRegion",
    "DagFeasibleRegion",
    # admission
    "PipelineAdmissionController",
    "AdmissionDecision",
    "DemandModel",
    "ExactDemand",
    "MeanDemand",
    "ScaledDemand",
    "ResyncReport",
    # audit
    "ControllerAuditor",
    "InvariantViolation",
    "AUDIT_KINDS",
    # reservation
    "CriticalTask",
    "ReservationPlan",
    "build_reservation",
    "aperiodic_capacity",
]
