"""Invariant auditing for the admission controller's bookkeeping state.

The zero-miss guarantee rests on the synthetic-utilization counters
being *exactly* the bookkeeping of Section 4: one contribution
``C_ij / D_i`` per current task per stage, removed at deadline expiry,
and released at stage-idle instants for departed tasks.  In a real
deployment (and in the chaos harness of :mod:`repro.faults`) that
bookkeeping is fed by notifications that can be lost, duplicated, or
delayed — so the controller's view silently drifts away from ground
truth and the admission test becomes either unsafe or needlessly
pessimistic.

:class:`ControllerAuditor` checks two families of invariants:

*Internal consistency* (no ground truth needed):

- ``sum-drift`` — a tracker's cached running sum disagrees with its
  exact accumulator, or the accumulator disagrees with a ground-truth
  re-summation of the tracked contributions (floating-point corruption
  or a bookkeeping bug);
- ``negative-utilization`` — the running sum is materially negative
  (double removal);
- ``orphan-contribution`` — a stage holds a contribution for a task the
  controller has no admitted record of;
- ``expired-contribution`` — a contribution outlived its task's
  deadline even after ``expire(now)`` ran (expiry-heap corruption);
- ``blocking-drift`` — on a locking controller, the cached online
  ``beta_j`` vector (or the blocking engine's tracked set) disagrees
  *bitwise* with a ground-truth PCP recomputation from the admitted
  records' resource declarations;
- ``budget-drift`` — the cached region budget is not bitwise equal to
  ``alpha (1 - sum_j beta_j)`` over the current beta vector — the
  transactional budget update was skipped somewhere;
- ``capacity-drift`` — a stage capacity is outside ``[0, 1]``, or (on a
  controller whose charges follow the capacities, i.e. after an
  authoritative ``rescale_stage_capacity``) an admitted record's
  charged contribution is not bitwise equal to the charge re-derived
  from its raw demand and the current capacity vector — a rescale that
  skipped records, or a capacity mutated without re-charging;
- ``post-repair-feasibility`` — the live admitted set violates the
  Eq. 12/15 region test (``region_ok``): a capacity drop shrank the
  region and no repair (sacrifice) pass restored feasibility.

*Ground-truth cross-checks* (fed by the simulation or a monitoring
layer):

- ``missed-departure`` — ground truth says the task departed the stage
  but the tracker never recorded it, so the idle-reset rule cannot
  release the contribution (a lost ``notify_subtask_departure``);
- ``missed-idle-reset`` — the stage is idle but departed contributions
  are still counted (a lost ``notify_stage_idle``).

Recovery is :meth:`~repro.core.admission.PipelineAdmissionController.resync`,
which rebuilds the canonical state from the same ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

from ..locking.bounds import compute_betas
from .admission import PipelineAdmissionController
from .bounds import region_budget
from .numeric import EPS

__all__ = [
    "InvariantViolation",
    "ControllerAuditor",
    "AUDIT_KINDS",
    "diff_controllers",
]

#: Every violation kind the auditor can emit, in report order.
AUDIT_KINDS = (
    "sum-drift",
    "negative-utilization",
    "orphan-contribution",
    "expired-contribution",
    "blocking-drift",
    "budget-drift",
    "capacity-drift",
    "post-repair-feasibility",
    "missed-departure",
    "missed-idle-reset",
)


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach.

    Attributes:
        kind: One of :data:`AUDIT_KINDS`.
        stage: Stage index the violation anchors to (or ``None``).
        task_id: Task involved (or ``None`` for stage-level checks).
        detail: Human-readable specifics.
    """

    kind: str
    stage: Optional[int]
    task_id: Optional[Hashable]
    detail: str

    def render(self) -> str:
        where = f"stage {self.stage}" if self.stage is not None else "controller"
        who = f" task {self.task_id}" if self.task_id is not None else ""
        return f"[{self.kind}] {where}{who}: {self.detail}"


class ControllerAuditor:
    """Audits a :class:`PipelineAdmissionController` against its invariants.

    Args:
        controller: The controller under audit.
        tolerance: Absolute slack allowed on sum comparisons; defaults
            to the shared :data:`repro.core.numeric.EPS`.
    """

    def __init__(
        self,
        controller: PipelineAdmissionController,
        tolerance: float = EPS,
    ) -> None:
        self.controller = controller
        self.tolerance = tolerance
        self.audits_run = 0
        self.violations_found = 0

    def audit(
        self,
        now: float,
        frontier: Optional[Dict[Hashable, int]] = None,
        idle_stages: Optional[Iterable[int]] = None,
    ) -> List[InvariantViolation]:
        """Run every applicable check and return the violations.

        ``expire(now)`` is applied first — lazily pending expirations
        are normal operation, not corruption, so the auditor must not
        report them.

        Args:
            now: Current time.
            frontier: Ground-truth execution frontier per live task (the
                stage index each task currently occupies;
                ``num_stages`` once fully departed).  ``None`` skips the
                ``missed-departure`` cross-check.
            idle_stages: Ground-truth indices of currently idle stages.
                ``None`` skips the ``missed-idle-reset`` cross-check.

        Returns:
            All violations found, internal checks first.
        """
        controller = self.controller
        controller.expire(now)
        violations: List[InvariantViolation] = []
        admitted = controller.admitted_snapshot()
        for j, tracker in enumerate(controller.trackers):
            incremental, exact = tracker.audit_sums()
            if abs(incremental - exact) > self.tolerance * max(1.0, abs(exact)):
                violations.append(
                    InvariantViolation(
                        "sum-drift",
                        j,
                        None,
                        f"incremental sum {incremental!r} != exact sum {exact!r}",
                    )
                )
            # Deep check: the accumulator itself against a ground-truth
            # re-summation of the tracked contributions.  O(n), but the
            # auditor is diagnostics, not the hot path.
            ground_truth = tracker.fsum_contributions()
            if abs(exact - ground_truth) > self.tolerance * max(
                1.0, abs(ground_truth)
            ):
                violations.append(
                    InvariantViolation(
                        "sum-drift",
                        j,
                        None,
                        f"exact accumulator {exact!r} != contribution "
                        f"re-summation {ground_truth!r}",
                    )
                )
            if incremental < -self.tolerance:
                violations.append(
                    InvariantViolation(
                        "negative-utilization",
                        j,
                        None,
                        f"running sum is {incremental!r}",
                    )
                )
            for task_id in sorted(tracker.tracked_ids(), key=repr):
                if task_id not in admitted:
                    violations.append(
                        InvariantViolation(
                            "orphan-contribution",
                            j,
                            task_id,
                            f"contribution {tracker.contribution_of(task_id)!r} "
                            "has no admitted record",
                        )
                    )
        violations.extend(self._check_expired(now))
        violations.extend(self._check_blocking())
        violations.extend(self._check_capacity())
        violations.extend(self._check_region())
        if frontier is not None:
            violations.extend(self._check_departures(frontier))
        if idle_stages is not None:
            violations.extend(self._check_idle(idle_stages))
        self.audits_run += 1
        self.violations_found += len(violations)
        return violations

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------

    def _check_expired(self, now: float) -> List[InvariantViolation]:
        violations: List[InvariantViolation] = []
        for task_id, record in self.controller._admitted.items():
            if record.expiry <= now:
                violations.append(
                    InvariantViolation(
                        "expired-contribution",
                        None,
                        task_id,
                        f"record expired at {record.expiry!r} but survived "
                        f"expire({now!r})",
                    )
                )
        return violations

    def _check_blocking(self) -> List[InvariantViolation]:
        """Bitwise blocking/budget invariants (Eq. 15 bookkeeping).

        The budget must equal ``region_budget(alpha, betas)`` on every
        controller.  On a locking controller the cached ``beta_j``
        vector must additionally match a ground-truth PCP recomputation
        from the admitted records' ``(deadline, resources)`` pairs —
        the canonical blocking state is a pure function of those, just
        as the synthetic-utilization state is of the contributions.
        """
        controller = self.controller
        violations: List[InvariantViolation] = []
        blocking = getattr(controller, "_blocking", None)
        if blocking is not None:
            tracked = set(blocking._tasks)
            admitted = set(controller._admitted)
            if tracked != admitted:
                extra = sorted(tracked - admitted, key=repr)
                missing = sorted(admitted - tracked, key=repr)
                violations.append(
                    InvariantViolation(
                        "blocking-drift",
                        None,
                        None,
                        f"blocking engine tracks {extra!r} without admitted "
                        f"records and misses admitted {missing!r}",
                    )
                )
            ground_truth = compute_betas(
                (
                    (task_id, record.deadline, record.resources)
                    for task_id, record in controller._admitted.items()
                ),
                controller.num_stages,
            )
            cached = blocking.betas()
            if cached != blocking.recompute():
                violations.append(
                    InvariantViolation(
                        "blocking-drift",
                        None,
                        None,
                        f"cached beta vector {cached!r} != engine "
                        f"recomputation {blocking.recompute()!r}",
                    )
                )
            elif cached != ground_truth:
                violations.append(
                    InvariantViolation(
                        "blocking-drift",
                        None,
                        None,
                        f"cached beta vector {cached!r} != ground-truth "
                        f"recomputation {ground_truth!r} from admitted records",
                    )
                )
            if controller.betas != cached:
                violations.append(
                    InvariantViolation(
                        "blocking-drift",
                        None,
                        None,
                        f"controller.betas {controller.betas!r} != blocking "
                        f"engine vector {cached!r}",
                    )
                )
        expected_budget = region_budget(controller.alpha, controller.betas)
        if controller.budget != expected_budget:  # repro: noqa[FLT001] — drift check is bitwise by design
            violations.append(
                InvariantViolation(
                    "budget-drift",
                    None,
                    None,
                    f"budget {controller.budget!r} != "
                    f"alpha (1 - sum beta) = {expected_budget!r}",
                )
            )
        return violations

    def _check_capacity(self) -> List[InvariantViolation]:
        """Capacity vector sanity plus the charge/capacity identity.

        Capacities must be finite and in ``[0, 1]`` always.  When the
        controller's charges follow the capacities (after an
        authoritative rescale), every demand-bearing admitted record's
        charged contribution must be *bitwise* the charge re-derived
        from its raw demand, its deadline, and the current capacity —
        the same pure function fresh admissions are charged with.
        Outage stages (capacity 0.0) are exempt: they retain the
        pre-outage charge until the repair pass evicts the task.
        """
        controller = self.controller
        violations: List[InvariantViolation] = []
        capacities = controller.stage_capacities()
        for j, capacity in enumerate(capacities):
            if not math.isfinite(capacity) or not (0.0 <= capacity <= 1.0):
                violations.append(
                    InvariantViolation(
                        "capacity-drift",
                        j,
                        None,
                        f"stage capacity {capacity!r} is outside [0, 1]",
                    )
                )
        if violations or not getattr(controller, "charges_follow_capacity", False):
            return violations
        for task_id, record in controller._admitted.items():
            if record.demand is None:
                continue
            for j, (c, capacity) in enumerate(zip(record.demand, capacities)):
                if capacity == 0.0:
                    continue
                expected = (
                    c / record.deadline
                    if capacity == 1.0
                    else c / (capacity * record.deadline)
                )
                if record.contributions[j] != expected:
                    violations.append(
                        InvariantViolation(
                            "capacity-drift",
                            j,
                            task_id,
                            f"charged contribution {record.contributions[j]!r} "
                            f"!= demand/capacity re-derivation {expected!r} at "
                            f"capacity {capacity!r}",
                        )
                    )
        return violations

    def _check_region(self) -> List[InvariantViolation]:
        """The live admitted set must satisfy Eq. 12/15 (post-repair check).

        Fresh admissions are tested incrementally, so a violation here
        means a capacity rescale (or state corruption) moved already
        charged utilization outside the region and no sacrifice pass
        repaired it.
        """
        controller = self.controller
        if controller.region_ok():
            return []
        return [
            InvariantViolation(
                "post-repair-feasibility",
                None,
                None,
                f"admitted set violates the region: value "
                f"{controller.region_value()!r}, budget "
                f"{controller.budget!r}, utilizations "
                f"{controller.utilizations()!r}",
            )
        ]

    def _check_departures(
        self, frontier: Dict[Hashable, int]
    ) -> List[InvariantViolation]:
        """Cross-check departed-stage marks against the execution frontier."""
        violations: List[InvariantViolation] = []
        controller = self.controller
        for task_id, record in controller._admitted.items():
            stage_frontier = frontier.get(task_id, controller.num_stages)
            for j in range(min(stage_frontier, controller.num_stages)):
                tracker = controller.trackers[j]
                if task_id in tracker and not tracker.is_departed(task_id):
                    violations.append(
                        InvariantViolation(
                            "missed-departure",
                            j,
                            task_id,
                            "task departed this stage but was never marked "
                            "departed — a lost notify_subtask_departure",
                        )
                    )
        return violations

    def _check_idle(
        self, idle_stages: Iterable[int]
    ) -> List[InvariantViolation]:
        """An idle stage must not be holding departed contributions."""
        violations: List[InvariantViolation] = []
        if not self.controller.reset_on_idle:
            return violations
        for j in sorted(set(idle_stages)):
            pending = self.controller.trackers[j].pending_idle_release()
            if pending > self.tolerance:
                violations.append(
                    InvariantViolation(
                        "missed-idle-reset",
                        j,
                        None,
                        f"stage is idle but {pending!r} of departed "
                        "utilization is still counted — a lost "
                        "notify_stage_idle",
                    )
                )
        return violations


def diff_controllers(
    a: PipelineAdmissionController, b: PipelineAdmissionController
) -> List[str]:
    """Exact structural diff between two controllers.

    Compares every piece of decision-relevant state *bitwise* — scalar
    configuration, per-stage capacities, admitted records (charged
    contributions, expiry, importance), each tracker's tracked and
    departed sets, per-task live contributions, and the raw running
    sums.  An empty result means the controllers are observationally
    identical: every future decision sequence produces the same
    answers and the same region values, down to the last ulp.

    Crash-recovery verification uses this to turn "the fingerprints
    differ" into "stage 2's running sum is off by one ulp".

    Returns:
        Human-readable difference descriptions (empty if identical).
    """
    diffs: List[str] = []
    for field in ("num_stages", "alpha", "betas", "budget", "reset_on_idle", "locking"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            diffs.append(f"{field}: {va!r} != {vb!r}")
    if diffs:
        return diffs  # structurally incomparable below this point
    # Degradation bookkeeping: plain state, not structure — reported
    # alongside the record/tracker diffs rather than masking them.
    for field in ("admission_seq", "charges_follow_capacity"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            diffs.append(f"{field}: {va!r} != {vb!r}")
    if a.stage_capacities() != b.stage_capacities():
        diffs.append(
            f"capacities: {a.stage_capacities()!r} != {b.stage_capacities()!r}"
        )
    rec_a = {t[0]: t[1:] for t in a.iter_admitted()}
    rec_b = {t[0]: t[1:] for t in b.iter_admitted()}
    for task_id in sorted(rec_a.keys() | rec_b.keys(), key=repr):
        if task_id not in rec_b:
            diffs.append(f"admitted task {task_id!r}: only in first")
        elif task_id not in rec_a:
            diffs.append(f"admitted task {task_id!r}: only in second")
        elif rec_a[task_id] != rec_b[task_id]:
            diffs.append(
                f"admitted task {task_id!r}: record "
                f"{rec_a[task_id]!r} != {rec_b[task_id]!r}"
            )
    for j, (ta, tb) in enumerate(zip(a.trackers, b.trackers)):
        if ta.reserved != tb.reserved:
            diffs.append(f"stage {j}: reserved {ta.reserved!r} != {tb.reserved!r}")
        ids_a, ids_b = ta.tracked_ids(), tb.tracked_ids()
        for task_id in sorted(ids_a ^ ids_b, key=repr):
            side = "first" if task_id in ids_a else "second"
            diffs.append(f"stage {j}: task {task_id!r} tracked only in {side}")
        for task_id in sorted(ids_a & ids_b, key=repr):
            ca, cb = ta.contribution_of(task_id), tb.contribution_of(task_id)
            if ca != cb:
                diffs.append(
                    f"stage {j}: task {task_id!r} contribution {ca!r} != {cb!r}"
                )
        if ta.departed_ids() != tb.departed_ids():
            diffs.append(
                f"stage {j}: departed sets differ: "
                f"{sorted(ta.departed_ids(), key=repr)!r} != "
                f"{sorted(tb.departed_ids(), key=repr)!r}"
            )
        sum_a, sum_b = ta.audit_sums()[0], tb.audit_sums()[0]
        if sum_a != sum_b:
            diffs.append(f"stage {j}: running sum {sum_a!r} != {sum_b!r}")
        if ta.exact_state() != tb.exact_state():
            diffs.append(
                f"stage {j}: exact accumulator state "
                f"{ta.exact_state()!r} != {tb.exact_state()!r}"
            )
    return diffs
