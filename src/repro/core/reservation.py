"""Reservation analysis for critical task sets (Section 5).

Cost considerations preclude reserving resources for the simultaneous
occurrence of all urgent aperiodics; instead a fraction of *synthetic*
utilization is reserved on each stage for critical periodic and
aperiodic tasks:

    U_j^res = sum_{critical T_i using stage j} C_ij / D_i

with one refinement used in the paper's TSCE example: when critical
tasks use *disjoint* instances of a stage (e.g. different display
consoles), their contributions are not added — the largest one is
taken.  The reserved vector must itself satisfy the region inequality
(Theorem 2 / Eq. 13); the admission controller's counters are then
initialized with the reserved values and dynamic aperiodics are
admitted on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from .bounds import (
    pipeline_region_value,
    region_budget,
    stage_delay_factor,
)
from .numeric import approx_ge, approx_le
from .task import PeriodicTaskSpec

__all__ = [
    "ReservationPlan",
    "CriticalTask",
    "build_reservation",
    "aperiodic_capacity",
]


@dataclass(frozen=True)
class CriticalTask:
    """A critical task stream participating in a reservation.

    Attributes:
        name: Stream name.
        deadline: Relative (end-to-end) deadline ``D``.
        computation_times: Per-stage demand ``C_j`` of one invocation.
        exclusive_stages: Stage indices on which this task uses a
            *private* instance of the stage (e.g. its own console);
            contributions on such stages are combined by ``max`` rather
            than ``+`` across critical tasks that also mark the stage
            exclusive.
    """

    name: str
    deadline: float
    computation_times: Tuple[float, ...]
    exclusive_stages: Tuple[int, ...] = ()

    @classmethod
    def from_periodic(
        cls, spec: PeriodicTaskSpec, exclusive_stages: Sequence[int] = ()
    ) -> "CriticalTask":
        """Build from a periodic spec (deadline = the spec's relative deadline)."""
        return cls(
            name=spec.name,
            deadline=spec.deadline,
            computation_times=spec.computation_times,
            exclusive_stages=tuple(exclusive_stages),
        )

    def stage_contribution(self, stage: int) -> float:
        """Synthetic-utilization contribution ``C_j / D`` on ``stage``."""
        return self.computation_times[stage] / self.deadline


@dataclass(frozen=True)
class ReservationPlan:
    """A validated per-stage reserved synthetic-utilization vector.

    Attributes:
        reserved: ``U_j^res`` per stage.
        region_value: ``sum_j f(U_j^res)`` of the reserved vector.
        budget: Region budget ``alpha (1 - sum beta)``.
        feasible: Whether the critical set is schedulable by its
            end-to-end deadlines (region_value <= budget).
        per_task: Per-task per-stage contributions, for reporting.
    """

    reserved: Tuple[float, ...]
    region_value: float
    budget: float
    feasible: bool
    per_task: Dict[str, Tuple[float, ...]]

    @property
    def headroom(self) -> float:
        """Budget left for dynamically admitted aperiodic load."""
        return self.budget - self.region_value


def aperiodic_capacity(
    plan: ReservationPlan,
    deadline: float,
    computation_times: Sequence[float],
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> int:
    """How many identical aperiodic tasks fit on top of a reservation.

    Finds the largest integer ``k`` such that ``k`` concurrent tasks
    with the given profile keep the system inside the feasible region:

        sum_j f(U_j^res + k * C_j / D)  <=  alpha (1 - sum beta)

    This is the *instantaneous* static capacity; with the idle-reset
    rule the simulated system sustains substantially more (compare
    Table 1: static capacity vs the ~550 tracks the simulation admits).

    Args:
        plan: A feasible reservation plan.
        deadline: Relative deadline of the aperiodic task profile.
        computation_times: Per-stage demand of one task.
        alpha: Policy urgency-inversion parameter.
        betas: Optional per-stage blocking terms.

    Returns:
        The capacity ``k >= 0``.

    Raises:
        ValueError: On dimension mismatch, non-positive deadline, or an
            infeasible plan.
    """
    if deadline <= 0:
        raise ValueError(f"deadline must be > 0, got {deadline}")
    if len(computation_times) != len(plan.reserved):
        raise ValueError(
            f"task has {len(computation_times)} stages, plan has {len(plan.reserved)}"
        )
    if not plan.feasible:
        raise ValueError("reservation plan is infeasible; no aperiodic capacity")
    contributions = [c / deadline for c in computation_times]
    budget = region_budget(alpha, betas)

    def fits(k: int) -> bool:
        total = 0.0
        for reserved_j, contribution_j in zip(plan.reserved, contributions):
            u = reserved_j + k * contribution_j
            if approx_ge(u, 1.0):
                return False
            total += stage_delay_factor(u)
            if not approx_le(total, budget):
                return False
        return True

    if not fits(0):
        return 0
    if all(c == 0 for c in contributions):
        raise ValueError("task consumes nothing; capacity is unbounded")
    lo, hi = 0, 1
    while fits(hi):
        lo, hi = hi, hi * 2
        if hi > 10**12:  # safety net; cannot trigger with positive demand
            break
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo


def build_reservation(
    critical_tasks: Sequence[CriticalTask],
    num_stages: int,
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> ReservationPlan:
    """Compute and validate the reserved utilization vector.

    On each stage, contributions of critical tasks are summed — except
    among tasks that all mark the stage *exclusive*, whose
    contributions are combined by ``max`` (the paper's Section-5
    treatment of per-console display stages: "we do not add their
    utilizations, but take the largest one").

    Args:
        critical_tasks: The critical periodic/aperiodic set.
        num_stages: Pipeline length.
        alpha: Scheduling-policy parameter.
        betas: Optional per-stage blocking terms.

    Returns:
        The reservation plan; callers should check ``plan.feasible``
        before initializing an admission controller with
        ``plan.reserved``.

    Raises:
        ValueError: If any task's stage vector length differs from
            ``num_stages`` or parameters are out of range.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    per_task: Dict[str, Tuple[float, ...]] = {}
    additive = [0.0] * num_stages
    exclusive_max = [0.0] * num_stages
    for task in critical_tasks:
        if len(task.computation_times) != num_stages:
            raise ValueError(
                f"critical task {task.name!r} has {len(task.computation_times)} "
                f"stages, expected {num_stages}"
            )
        if task.deadline <= 0:
            raise ValueError(f"critical task {task.name!r} must have deadline > 0")
        contributions = tuple(task.stage_contribution(j) for j in range(num_stages))
        per_task[task.name] = contributions
        exclusive: Set[int] = set(task.exclusive_stages)
        for j in range(num_stages):
            if j in exclusive:
                exclusive_max[j] = max(exclusive_max[j], contributions[j])
            else:
                additive[j] += contributions[j]
    reserved = tuple(additive[j] + exclusive_max[j] for j in range(num_stages))
    if any(u >= 1.0 for u in reserved):
        value = math.inf
    else:
        value = pipeline_region_value(reserved)
    budget = region_budget(alpha, betas)
    return ReservationPlan(
        reserved=reserved,
        region_value=value,
        budget=budget,
        feasible=approx_le(value, budget),
        per_task=per_task,
    )
