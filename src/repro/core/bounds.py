"""Feasible-region mathematics (Theorem 1 and Equations 12, 13, 15).

The central quantity is the *stage delay factor*

    f(U) = U (1 - U/2) / (1 - U)

from the stage delay theorem (Theorem 1): a task spends at most
``f(U_j) * D_max`` time units at stage ``j`` when the synthetic
utilization of that stage never exceeds ``U_j``; ``D_max`` is the
maximum end-to-end deadline of a higher-priority task.

Summing per-stage delays and bounding by the end-to-end deadline gives
the feasible region of a resource pipeline:

- Eq. 13 (deadline-monotonic):       sum_j f(U_j) <= 1
- Eq. 12 (arbitrary fixed priority): sum_j f(U_j) <= alpha
- Eq. 15 (with blocking under PCP):  sum_j f(U_j) <= alpha (1 - sum_j beta_j)

where ``alpha`` is the urgency-inversion parameter of the scheduling
policy and ``beta_j = max_i B_ij / D_i`` is the normalized worst-case
blocking at stage ``j``.

For a single stage, ``f(U) <= 1`` solves to ``U <= 2 - sqrt(2)``, the
uniprocessor aperiodic bound of Abdelzaher and Lu.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from .numeric import approx_le

__all__ = [
    "stage_delay_factor",
    "inverse_stage_delay_factor",
    "stage_delay",
    "pipeline_region_value",
    "region_budget",
    "is_pipeline_feasible",
    "pipeline_margin",
    "single_resource_bound",
    "uniform_per_stage_bound",
    "UNIPROCESSOR_APERIODIC_BOUND",
]

#: The uniprocessor aperiodic utilization bound 1 / (1 + sqrt(1/2)) = 2 - sqrt(2).
UNIPROCESSOR_APERIODIC_BOUND = 2.0 - math.sqrt(2.0)


def stage_delay_factor(u: float) -> float:
    """Return ``f(U) = U (1 - U/2) / (1 - U)`` from the stage delay theorem.

    ``f`` is the normalized worst-case delay a task suffers at a stage
    whose synthetic utilization never exceeds ``u``; the absolute delay
    is ``f(u) * D_max``.  ``f`` is zero at ``u = 0``, strictly
    increasing on ``[0, 1)``, and diverges as ``u -> 1``.

    Args:
        u: Synthetic utilization in ``[0, 1)``; ``u = 1`` returns
            ``inf`` and values ``> 1`` raise.

    Raises:
        ValueError: If ``u`` is negative, above 1, or not finite.
    """
    if not math.isfinite(u):
        raise ValueError(f"utilization must be finite, got {u}")
    if u < 0.0 or u > 1.0:
        raise ValueError(f"utilization must be within [0, 1], got {u}")
    if u >= 1.0:  # exactly 1 after the range check: the f(U) singularity
        return math.inf
    return u * (1.0 - u / 2.0) / (1.0 - u)


def inverse_stage_delay_factor(y: float) -> float:
    """Solve ``f(U) = y`` for ``U`` in ``[0, 1)``.

    Inverting ``U (1 - U/2) = y (1 - U)`` yields the quadratic
    ``U^2 - 2 (1 + y) U + 2 y = 0`` whose root in ``[0, 1)`` is
    ``U = (1 + y) - sqrt(1 + y^2)``.

    The inverse is the workhorse for boundary computations: for
    example, ``inverse_stage_delay_factor(1.0)`` is the uniprocessor
    aperiodic bound ``2 - sqrt(2)``.

    Args:
        y: Target delay factor, ``>= 0``.

    Raises:
        ValueError: If ``y`` is negative or not finite.
    """
    if not math.isfinite(y):
        raise ValueError(f"delay factor must be finite, got {y}")
    if y < 0.0:
        raise ValueError(f"delay factor must be >= 0, got {y}")
    return (1.0 + y) - math.sqrt(1.0 + y * y)


def stage_delay(u: float, d_max: float) -> float:
    """Worst-case time a task spends at a stage (Theorem 1).

    Args:
        u: Lower bound on the maximum synthetic utilization of the stage.
        d_max: Maximum end-to-end deadline of any higher-priority task
            in the busy period.

    Returns:
        ``f(u) * d_max``.

    Raises:
        ValueError: If ``d_max`` is negative or ``u`` is out of range.
    """
    if d_max < 0:
        raise ValueError(f"d_max must be >= 0, got {d_max}")
    return stage_delay_factor(u) * d_max


def pipeline_region_value(utilizations: Iterable[float]) -> float:
    """Left-hand side of the pipeline feasibility condition: ``sum_j f(U_j)``."""
    return sum(stage_delay_factor(u) for u in utilizations)


def region_budget(alpha: float = 1.0, betas: Optional[Sequence[float]] = None) -> float:
    """Right-hand side of the feasibility condition: ``alpha (1 - sum_j beta_j)``.

    Args:
        alpha: Urgency-inversion parameter of the scheduling policy, in
            ``(0, 1]``.  ``alpha = 1`` for deadline-monotonic.
        betas: Normalized worst-case blocking ``beta_j`` per stage, or
            ``None`` for independent tasks.

    Raises:
        ValueError: If ``alpha`` is outside ``(0, 1]`` or any ``beta_j``
            is negative, or the total blocking reaches 1 (the region
            would be empty).
    """
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    total_beta = 0.0
    if betas is not None:
        validated = []
        for j, b in enumerate(betas):
            if b < 0 or not math.isfinite(b):
                raise ValueError(f"beta at stage {j} must be finite and >= 0, got {b}")
            validated.append(b)
        # fsum, not +=: the budget RHS must be order-independent like
        # the exact-accumulator LHS, or permuting the beta vector moves
        # the admission boundary by an ulp.
        total_beta = math.fsum(validated)
    if total_beta >= 1.0:
        raise ValueError(
            f"total normalized blocking {total_beta} >= 1 leaves an empty feasible region"
        )
    return alpha * (1.0 - total_beta)


def is_pipeline_feasible(
    utilizations: Sequence[float],
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> bool:
    """Check the pipeline feasibility condition (Eqs. 12, 13, 15).

    All end-to-end deadlines are met as long as the instantaneous
    per-stage synthetic utilizations satisfy
    ``sum_j f(U_j) <= alpha (1 - sum_j beta_j)``.

    Args:
        utilizations: Synthetic utilization per stage.
        alpha: Urgency-inversion parameter (1 for deadline-monotonic).
        betas: Optional per-stage normalized blocking terms.
    """
    return approx_le(pipeline_region_value(utilizations), region_budget(alpha, betas))


def pipeline_margin(
    utilizations: Sequence[float],
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> float:
    """Remaining budget ``alpha (1 - sum beta) - sum_j f(U_j)``.

    Positive inside the feasible region, zero on the boundary, negative
    outside.  Useful for admission-control headroom reporting.
    """
    return region_budget(alpha, betas) - pipeline_region_value(utilizations)


def single_resource_bound(alpha: float = 1.0, beta: float = 0.0) -> float:
    """Utilization bound for a single resource: solve ``f(U) = alpha (1 - beta)``.

    With ``alpha = 1`` and ``beta = 0`` this is the uniprocessor
    aperiodic bound ``1 / (1 + sqrt(1/2)) = 2 - sqrt(2) ~ 0.586``
    derived in Abdelzaher & Lu (2001) and recovered by the feasible
    region when the pipeline degenerates to one stage.
    """
    return inverse_stage_delay_factor(region_budget(alpha, [beta] if beta else None))


def uniform_per_stage_bound(
    num_stages: int,
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> float:
    """Largest common per-stage utilization for an ``N``-stage pipeline.

    If every stage runs at the same synthetic utilization ``U``, the
    feasibility condition becomes ``N f(U) <= alpha (1 - sum beta)``,
    so the bound is ``f^{-1}(budget / N)``.  Note the per-stage bound
    shrinks roughly like ``O(1/N)`` but, as Section 3.1 argues, so does
    the per-stage synthetic utilization of a schedulable workload
    (each stage's ``C_ij`` is divided by the *end-to-end* deadline), so
    the condition does not become more severe with pipeline depth.

    Raises:
        ValueError: If ``num_stages`` is not positive.
    """
    if num_stages <= 0:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    return inverse_stage_delay_factor(region_budget(alpha, betas) / num_stages)
