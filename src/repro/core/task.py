"""Task model for aperiodic end-to-end scheduling in resource pipelines.

The model follows Section 2 of the paper.  A *pipeline task* ``T_i`` is
described by:

- an arrival time ``A_i`` at which it enters the first stage,
- a relative end-to-end deadline ``D_i`` by which it must leave the
  last stage, and
- a per-stage computation time ``C_ij`` for each stage ``j``.

Subtasks form a single precedence-constrained chain: the departure of
the task from stage ``j`` is its arrival at stage ``j + 1``.

Periodic workloads are a special case of aperiodic ones (Section 1);
:class:`PeriodicTaskSpec` describes a stream whose invocations are
released every ``period`` and each analyzed as an aperiodic arrival.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from ..locking.model import ResourceSpec, canonical_resources

__all__ = [
    "PipelineTask",
    "PeriodicTaskSpec",
    "task_priority_deadline_monotonic",
    "validate_task",
]

_task_counter = itertools.count()


def _fresh_task_id() -> int:
    """Return a process-unique task identifier."""
    return next(_task_counter)


@dataclass(frozen=True)
class PipelineTask:
    """An aperiodic task processed by every stage of a pipeline in order.

    Attributes:
        task_id: Unique identifier of this task instance.
        arrival_time: Absolute arrival time ``A_i`` at the first stage.
        deadline: Relative end-to-end deadline ``D_i`` (> 0).  The task
            must depart the last stage by ``arrival_time + deadline``.
        computation_times: ``C_ij`` for each stage ``j``; the tuple
            length equals the pipeline length.  Entries may be zero for
            stages the task merely passes through.
        importance: Semantic importance used for load shedding in the
            Section-5 architecture.  Higher values are shed last.  The
            *scheduling* priority is decoupled from this value.
        blocking_times: Optional worst-case blocking ``B_ij`` the task
            may suffer at each stage due to critical sections of
            lower-priority tasks (Section 3.2).  ``None`` means no
            blocking anywhere.
        resources: Declared shared-resource use (Section 3.2 under the
            priority-ceiling protocol): one
            :class:`~repro.locking.model.ResourceSpec` per resource per
            stage, in canonical order.  Unlike ``blocking_times`` —
            which *states* a blocking bound — these let the admission
            layer *derive* ``B_ij`` online from the admitted set.
        stream_id: Optional identifier of the periodic stream this
            invocation belongs to, or ``None`` for a pure aperiodic.
    """

    task_id: int
    arrival_time: float
    deadline: float
    computation_times: Tuple[float, ...]
    importance: int = 0
    blocking_times: Optional[Tuple[float, ...]] = None
    resources: Tuple[ResourceSpec, ...] = ()
    stream_id: Optional[int] = None

    @property
    def absolute_deadline(self) -> float:
        """Absolute deadline ``A_i + D_i``."""
        return self.arrival_time + self.deadline

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages the task visits."""
        return len(self.computation_times)

    @property
    def total_computation(self) -> float:
        """Sum of per-stage computation times."""
        return sum(self.computation_times)

    def synthetic_contribution(self, stage: int) -> float:
        """Contribution ``C_ij / D_i`` to stage ``j``'s synthetic utilization.

        Each current task raises the synthetic utilization of stage
        ``j`` by this amount for the ``D_i`` time units following its
        arrival (Section 2 / Figure 1).
        """
        return self.computation_times[stage] / self.deadline

    def resolution(self) -> float:
        """Task resolution: end-to-end deadline over total computation.

        Section 4.2 defines task resolution as the average end-to-end
        deadline divided by the average total computation time.  The
        per-task analogue is ``D_i / sum_j C_ij``; infinite when the
        task requires no computation.
        """
        total = self.total_computation
        if total == 0:
            return math.inf
        return self.deadline / total


def make_task(
    arrival_time: float,
    deadline: float,
    computation_times: Sequence[float],
    importance: int = 0,
    blocking_times: Optional[Sequence[float]] = None,
    resources: Sequence[ResourceSpec] = (),
    stream_id: Optional[int] = None,
    task_id: Optional[int] = None,
) -> PipelineTask:
    """Build a validated :class:`PipelineTask` with a fresh id.

    Args:
        arrival_time: Absolute arrival time at the first stage.
        deadline: Relative end-to-end deadline (must be positive).
        computation_times: Per-stage computation demands.
        importance: Semantic importance (higher is more important).
        blocking_times: Optional per-stage worst-case blocking terms.
        resources: Shared-resource declarations; canonicalized into
            ``(stage, resource)`` order.
        stream_id: Optional periodic stream identifier.
        task_id: Explicit id; auto-assigned when omitted.

    Returns:
        The constructed task.

    Raises:
        ValueError: If the parameters are inconsistent (see
            :func:`validate_task`).
    """
    task = PipelineTask(
        task_id=_fresh_task_id() if task_id is None else task_id,
        arrival_time=arrival_time,
        deadline=deadline,
        computation_times=tuple(float(c) for c in computation_times),
        importance=importance,
        blocking_times=(
            None if blocking_times is None else tuple(float(b) for b in blocking_times)
        ),
        resources=canonical_resources(resources),
        stream_id=stream_id,
    )
    validate_task(task)
    return task


def validate_task(task: PipelineTask) -> None:
    """Check model invariants of a task, raising ``ValueError`` on violation.

    Invariants: positive deadline, non-negative computation and blocking
    times, matching blocking vector length, and at least one stage.
    """
    if task.deadline <= 0:
        raise ValueError(f"task {task.task_id}: deadline must be > 0, got {task.deadline}")
    if not task.computation_times:
        raise ValueError(f"task {task.task_id}: task must visit at least one stage")
    for j, c in enumerate(task.computation_times):
        if c < 0 or not math.isfinite(c):
            raise ValueError(
                f"task {task.task_id}: computation time at stage {j} must be finite "
                f"and >= 0, got {c}"
            )
    if task.blocking_times is not None:
        if len(task.blocking_times) != len(task.computation_times):
            raise ValueError(
                f"task {task.task_id}: blocking vector length "
                f"{len(task.blocking_times)} != pipeline length "
                f"{len(task.computation_times)}"
            )
        for j, b in enumerate(task.blocking_times):
            if b < 0 or not math.isfinite(b):
                raise ValueError(
                    f"task {task.task_id}: blocking time at stage {j} must be finite "
                    f"and >= 0, got {b}"
                )
    for spec in task.resources:
        if spec.stage >= task.num_stages:
            raise ValueError(
                f"task {task.task_id}: resource {spec.resource!r} declared at "
                f"stage {spec.stage}, task visits {task.num_stages} stages"
            )
    if not math.isfinite(task.arrival_time):
        raise ValueError(f"task {task.task_id}: arrival time must be finite")


def task_priority_deadline_monotonic(task: PipelineTask) -> float:
    """Deadline-monotonic priority key: smaller relative deadline = higher priority.

    DM is the optimal uniprocessor fixed-priority policy for aperiodic
    tasks (Section 4) and has urgency-inversion parameter ``alpha = 1``.
    The returned key sorts ascending: lower keys run first.
    """
    return task.deadline


@dataclass(frozen=True)
class PeriodicTaskSpec:
    """A periodic stream analyzed under the aperiodic framework.

    Periodic arrivals are a special case of aperiodic ones; Section 5
    uses this to reserve synthetic utilization for critical periodic
    tasks.  Each invocation of the stream is a :class:`PipelineTask`
    with the stream's relative deadline and computation vector.

    Attributes:
        name: Human-readable stream name (e.g. ``"Weapon Targeting"``).
        period: Release period ``P`` (> 0).
        deadline: Relative deadline of each invocation; defaults to the
            period when ``None`` is passed to :func:`periodic_spec`.
        computation_times: Per-stage computation demand of one
            invocation.
        importance: Semantic importance of the stream.
        phase: Release offset of the first invocation.
        hard: Whether deadline misses are considered hard failures.
    """

    name: str
    period: float
    deadline: float
    computation_times: Tuple[float, ...]
    importance: int = 0
    phase: float = 0.0
    hard: bool = False
    stream_id: int = field(default_factory=_fresh_task_id)

    @property
    def stage_contributions(self) -> Tuple[float, ...]:
        """Per-stage synthetic-utilization contribution ``C_j / D`` of one invocation."""
        return tuple(c / self.deadline for c in self.computation_times)

    def invocations(self, until: float) -> Iterator[PipelineTask]:
        """Yield invocation tasks released in ``[phase, until)``.

        Invocation ``k`` arrives at ``phase + k * period``.  Each task
        carries this spec's ``stream_id`` so per-stream statistics can
        be aggregated.
        """
        k = 0
        while True:
            release = self.phase + k * self.period
            if release >= until:
                return
            yield make_task(
                arrival_time=release,
                deadline=self.deadline,
                computation_times=self.computation_times,
                importance=self.importance,
                stream_id=self.stream_id,
            )
            k += 1


def periodic_spec(
    name: str,
    period: float,
    computation_times: Sequence[float],
    deadline: Optional[float] = None,
    importance: int = 0,
    phase: float = 0.0,
    hard: bool = False,
) -> PeriodicTaskSpec:
    """Build a validated :class:`PeriodicTaskSpec`.

    Args:
        name: Stream name.
        period: Release period (must be positive).
        computation_times: Per-stage computation demand of one invocation.
        deadline: Relative deadline; defaults to the period (implicit
            deadline).
        importance: Semantic importance of the stream.
        phase: Release offset of the first invocation.
        hard: Whether the stream's deadlines are hard.

    Raises:
        ValueError: On non-positive period/deadline or negative costs.
    """
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    d = period if deadline is None else deadline
    if d <= 0:
        raise ValueError(f"deadline must be > 0, got {d}")
    costs = tuple(float(c) for c in computation_times)
    if any(c < 0 for c in costs):
        raise ValueError("computation times must be >= 0")
    return PeriodicTaskSpec(
        name=name,
        period=period,
        deadline=d,
        computation_times=costs,
        importance=importance,
        phase=phase,
        hard=hard,
    )
