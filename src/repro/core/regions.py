"""Feasible-region objects: membership, margins, and boundary geometry.

The feasible region of an ``N``-stage pipeline is the set of synthetic
utilization vectors ``(U_1, ..., U_N)`` satisfying

    sum_j f(U_j) <= alpha (1 - sum_j beta_j)

(Eqs. 12/13/15).  The region is bounded by a surface in utilization
space; for a single resource it degenerates to the scalar bound
``U <= f^{-1}(budget)``.  :class:`PipelineFeasibleRegion` wraps the
inequality with geometric helpers (boundary sampling for plotting,
per-stage headroom, distance along a ray), and
:class:`DagFeasibleRegion` does the same for Theorem-2 task graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Mapping, Optional, Sequence, Tuple

from .bounds import (
    inverse_stage_delay_factor,
    pipeline_region_value,
    region_budget,
    stage_delay_factor,
)
from .dag import TaskGraph
from .numeric import approx_le

__all__ = ["PipelineFeasibleRegion", "DagFeasibleRegion"]


@dataclass(frozen=True)
class PipelineFeasibleRegion:
    """The multi-dimensional feasible region of a resource pipeline.

    Attributes:
        num_stages: Number of pipeline stages ``N`` (one dimension each).
        alpha: Urgency-inversion parameter of the scheduling policy.
        betas: Per-stage normalized blocking terms, or ``None``.
    """

    num_stages: int
    alpha: float = 1.0
    betas: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {self.num_stages}")
        if self.betas is not None and len(self.betas) != self.num_stages:
            raise ValueError(
                f"betas length {len(self.betas)} != num_stages {self.num_stages}"
            )
        # Validate alpha/beta ranges eagerly.
        region_budget(self.alpha, self.betas)

    @property
    def budget(self) -> float:
        """Right-hand side ``alpha (1 - sum beta)`` of the inequality."""
        return region_budget(self.alpha, self.betas)

    def value(self, utilizations: Sequence[float]) -> float:
        """Left-hand side ``sum_j f(U_j)`` for a utilization vector."""
        self._check_dims(utilizations)
        return pipeline_region_value(utilizations)

    def contains(self, utilizations: Sequence[float]) -> bool:
        """True iff the utilization vector lies inside the region."""
        return approx_le(self.value(utilizations), self.budget)

    def margin(self, utilizations: Sequence[float]) -> float:
        """Budget remaining: positive inside, negative outside."""
        return self.budget - self.value(utilizations)

    def stage_headroom(self, utilizations: Sequence[float], stage: int) -> float:
        """Largest utilization increase stage ``stage`` can absorb alone.

        Holding every other stage fixed, stage ``j`` can grow until
        ``f(U_j)`` consumes the remaining budget.  Returns 0.0 when the
        vector is already on or outside the boundary.
        """
        self._check_dims(utilizations)
        others = sum(
            stage_delay_factor(u) for k, u in enumerate(utilizations) if k != stage
        )
        remaining = self.budget - others
        if remaining <= 0:
            return 0.0
        max_u = inverse_stage_delay_factor(remaining)
        return max(0.0, max_u - utilizations[stage])

    def uniform_bound(self) -> float:
        """Common per-stage utilization at the symmetric boundary point.

        The point ``(U*, ..., U*)`` with ``N f(U*) = budget``.
        """
        return inverse_stage_delay_factor(self.budget / self.num_stages)

    def boundary_scale(self, direction: Sequence[float]) -> float:
        """Scale ``t`` such that ``t * direction`` lies on the boundary.

        Walks along the ray from the origin through ``direction`` and
        finds (by bisection, ``f`` being strictly increasing in each
        coordinate) the boundary crossing.  Useful for plotting region
        cross-sections and for measuring how far inside/outside an
        operating point sits, in relative terms.

        Args:
            direction: Non-negative, non-zero direction vector of
                length ``num_stages``.

        Returns:
            The positive scale factor; ``inf`` if the ray never leaves
            the region (only possible for the zero vector, which
            raises instead).

        Raises:
            ValueError: If the direction is zero or negative anywhere.
        """
        self._check_dims(direction)
        if any(d < 0 for d in direction):
            raise ValueError("direction components must be >= 0")
        if all(d == 0 for d in direction):
            raise ValueError("direction must be non-zero")
        # The largest admissible scale keeps every coordinate < 1.
        hi = min(1.0 / d for d in direction if d > 0)
        lo = 0.0

        def lhs(t: float) -> float:
            return sum(stage_delay_factor(min(t * d, 1.0)) for d in direction)

        if lhs(hi * (1 - 1e-12)) <= self.budget:  # repro: noqa[FLT002] — exact bisection bracket test
            return hi
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if lhs(mid) <= self.budget:  # repro: noqa[FLT002] — exact bisection step
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-14:
                break
        return lo

    def boundary_curve_2d(self, samples: int = 101) -> List[Tuple[float, float]]:
        """Sample the boundary surface of a two-stage region.

        Returns ``(U_1, U_2)`` points with ``f(U_1) + f(U_2) = budget``,
        sweeping ``U_1`` from 0 to the single-stage bound.  Only valid
        for ``num_stages == 2``.

        Raises:
            ValueError: If the region is not two-dimensional or
                ``samples < 2``.
        """
        if self.num_stages != 2:
            raise ValueError("boundary_curve_2d requires a two-stage region")
        if samples < 2:
            raise ValueError(f"samples must be >= 2, got {samples}")
        u1_max = inverse_stage_delay_factor(self.budget)
        points: List[Tuple[float, float]] = []
        for i in range(samples):
            u1 = u1_max * i / (samples - 1)
            remaining = self.budget - stage_delay_factor(u1)
            u2 = inverse_stage_delay_factor(max(remaining, 0.0))
            points.append((u1, u2))
        return points

    def boundary_surface_3d(
        self, samples: int = 41
    ) -> List[Tuple[float, float, float]]:
        """Sample the bounding surface of a three-stage region.

        The paper's central geometric object is "a multi-dimensional
        schedulability bound given by a surface in the resource
        utilization space".  For ``N = 3``, this returns
        ``(U_1, U_2, U_3)`` points with
        ``f(U_1) + f(U_2) + f(U_3) = budget``, sweeping a grid over
        ``(U_1, U_2)`` and solving for ``U_3``; grid points whose first
        two coordinates already exhaust the budget are omitted.  Feed
        the points to any surface plotter (see
        ``examples/feasible_region_surface.py``).

        Args:
            samples: Grid resolution per axis (>= 2).

        Raises:
            ValueError: If the region is not three-dimensional.
        """
        if self.num_stages != 3:
            raise ValueError("boundary_surface_3d requires a three-stage region")
        if samples < 2:
            raise ValueError(f"samples must be >= 2, got {samples}")
        u_max = inverse_stage_delay_factor(self.budget)
        points: List[Tuple[float, float, float]] = []
        for i in range(samples):
            u1 = u_max * i / (samples - 1)
            f1 = stage_delay_factor(u1)
            if f1 > self.budget:  # repro: noqa[FLT002] — geometry sampling, not an admission decision
                continue
            for j in range(samples):
                u2 = u_max * j / (samples - 1)
                remaining = self.budget - f1 - stage_delay_factor(u2)
                if remaining < 0:
                    continue
                points.append((u1, u2, inverse_stage_delay_factor(remaining)))
        return points

    def boundary_slice(
        self, fixed: Mapping[int, float], stage: int
    ) -> float:
        """Boundary utilization of one stage given fixed values elsewhere.

        Args:
            fixed: Maps stage index -> fixed utilization for every stage
                except ``stage``.
            stage: The free stage.

        Returns:
            The largest ``U_stage`` keeping the vector in the region
            (0.0 when the fixed stages already exhaust the budget).

        Raises:
            ValueError: If ``fixed`` does not cover exactly the other
                stages.
        """
        expected = set(range(self.num_stages)) - {stage}
        if set(fixed) != expected:
            raise ValueError(
                f"fixed must cover stages {sorted(expected)}, got {sorted(fixed)}"
            )
        consumed = sum(stage_delay_factor(u) for u in fixed.values())
        remaining = self.budget - consumed
        if remaining <= 0:
            return 0.0
        return inverse_stage_delay_factor(remaining)

    def _check_dims(self, vector: Sequence[float]) -> None:
        if len(vector) != self.num_stages:
            raise ValueError(
                f"expected a vector of length {self.num_stages}, got {len(vector)}"
            )


@dataclass(frozen=True)
class DagFeasibleRegion:
    """Feasible region of an arbitrary task graph (Theorem 2).

    Wraps a :class:`~repro.core.dag.TaskGraph` with policy parameters;
    blocking enters per-resource inside the delay expression
    (Eq. 17), so the budget is plain ``alpha``.
    """

    graph: TaskGraph
    alpha: float = 1.0
    betas: Optional[Mapping[Hashable, float]] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def value(self, utilizations: Mapping[Hashable, float]) -> float:
        """Critical-path sum of ``f(U_k) + beta_k`` terms."""
        return self.graph.region_value(utilizations, self.betas)

    def contains(self, utilizations: Mapping[Hashable, float]) -> bool:
        """True iff the per-resource utilizations keep the task feasible."""
        return self.value(utilizations) <= self.alpha

    def margin(self, utilizations: Mapping[Hashable, float]) -> float:
        """``alpha`` minus the critical-path value."""
        return self.alpha - self.value(utilizations)
