"""Synthetic (instantaneous) utilization accounting.

The synthetic utilization of stage ``j`` at time ``t`` is

    U_j(t) = sum_{T_i in S(t)} C_ij / D_i

over the set of *current* tasks ``S(t) = {T_i | A_i <= t < A_i + D_i}``
(Section 2).  Each task contributes ``C_ij / D_i`` from its arrival
until its absolute deadline, independent of when (or whether) it
actually executes at the stage.

Two bookkeeping rules from Section 4 keep admission control from
becoming pessimistic:

1. Contributions are removed when task deadlines expire.
2. When a stage becomes *idle*, the contribution of all tasks that have
   already departed the stage is removed immediately — departed tasks
   cannot affect the stage's future schedule.  The tracker then decays
   to its *reserved* baseline (Section 5 initializes the counters with
   reserved utilization for critical tasks).

:class:`StageUtilizationTracker` implements one stage; additions and
removals are ``O(1)`` on the running total (an exact accumulator),
``O(log n)`` overall via the expiry heap.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Dict, FrozenSet, Hashable, List, Tuple

from .numeric import _FIXED_SCALE, _fixed_to_float, ExactSum

__all__ = ["StageUtilizationTracker"]


class StageUtilizationTracker:
    """Tracks the synthetic utilization of a single pipeline stage.

    The tracker holds one *contribution* per current task plus a fixed
    *reserved* baseline.  The running total is maintained by an
    :class:`~repro.core.numeric.ExactSum` accumulator: additions and
    removals update the exact sum in ``O(1)`` with no rounding, and the
    cached float total is the single correctly-rounded image of that
    exact sum.  The total is therefore a *canonical function of the
    tracked multiset alone* — independent of operation order — so two
    trackers holding the same contributions are bitwise identical even
    if their histories (expiry-heap layout, departed-set insertion
    order, add/remove interleaving) differ.  That is strictly stronger
    than the earlier fsum-on-removal scheme, whose total was canonical
    only per add *sequence*; it is what lets crash recovery reproduce a
    controller bitwise and order-independently (see
    ``repro.serve.recovery``), and drift can never accumulate because
    no operation ever rounds into the accumulator.

    Attributes:
        reserved: Baseline utilization reserved for critical tasks.
            Resets never go below this value.
    """

    def __init__(self, reserved: float = 0.0) -> None:
        """Create a tracker.

        Args:
            reserved: Reserved baseline utilization in ``[0, 1]``
                (Section 5); the tracker's value never drops below it.

        Raises:
            ValueError: If ``reserved`` is outside ``[0, 1]``.
        """
        if not (0.0 <= reserved <= 1.0):
            raise ValueError(f"reserved utilization must be in [0, 1], got {reserved}")
        self.reserved = reserved
        # task_id -> (contribution, token); the token invalidates stale
        # expiry-heap entries when an id is removed and later re-added.
        self._contribs: Dict[Hashable, Tuple[float, int]] = {}
        self._departed: Dict[Hashable, float] = {}
        self._expiry_heap: List[Tuple[float, int, Hashable]] = []
        # Exact running sum of the tracked contributions; `_sum` caches
        # its correctly-rounded float image so hot-path reads (`value`)
        # stay a plain attribute load.  Every mutation refreshes the
        # cache; the auditor compares the two to detect bit-rot.
        self._acc = ExactSum()
        self._sum = 0.0
        self._tokens = itertools.count()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def value(self) -> float:
        """Current synthetic utilization (reserved baseline included)."""
        return self.reserved + max(self._sum, 0.0)

    @property
    def dynamic_value(self) -> float:
        """Utilization contributed by currently tracked tasks only."""
        return max(self._sum, 0.0)

    def contribution_of(self, task_id: Hashable) -> float:
        """Return the tracked contribution of ``task_id`` (0.0 if absent)."""
        entry = self._contribs.get(task_id)
        return entry[0] if entry is not None else 0.0

    def tracked_ids(self) -> FrozenSet[Hashable]:
        """Ids of every task currently holding a contribution here."""
        return frozenset(self._contribs)

    def departed_ids(self) -> FrozenSet[Hashable]:
        """Ids marked departed and awaiting the next idle reset."""
        return frozenset(self._departed)

    def is_departed(self, task_id: Hashable) -> bool:
        """Whether ``task_id`` is marked departed at this stage."""
        return task_id in self._departed

    def pending_idle_release(self) -> float:
        """Utilization :meth:`reset_on_idle` would release right now.

        Every departed entry is live by construction — ``remove``,
        ``expire_until``, ``reset_on_idle`` and ``clear`` all drop the
        departed mark together with the contribution — so no membership
        re-check against the tracked set is needed.
        """
        return math.fsum(self._departed.values())

    def audit_sums(self) -> Tuple[float, float]:
        """``(cached, exact)`` dynamic sums, without mutating state — O(1).

        The cached sum is the float total hot-path reads use; the exact
        sum is the accumulator's correctly-rounded value.  The invariant
        auditor compares the two to detect bit-rot in the cache (and
        separately cross-checks the accumulator against the tracked
        contributions via :meth:`fsum_contributions`).
        """
        return self._sum, self._acc.value()

    def fsum_contributions(self) -> float:
        """Fresh ``fsum`` over the tracked contributions — O(n).

        Ground-truth recompute for the auditor's deep drift check; the
        hot path never calls this.
        """
        return math.fsum(c for c, _ in self._contribs.values())

    def exact_state(self) -> Dict[str, Any]:
        """JSON-safe exact accumulator state (snapshot schema v2)."""
        return self._acc.state()

    def load_exact(self, state: Dict[str, Any]) -> None:
        """Adopt a serialized exact accumulator state (snapshot restore).

        Replaces the accumulator wholesale — including one rebuilt from
        re-added contributions — so a restored tracker reproduces the
        snapshotted total bit-for-bit even when the snapshot's lineage
        passed through the legacy rounded-sum format (:meth:`load_sum`).

        Raises:
            ValueError: If the state document is malformed.
        """
        self._acc = ExactSum.from_state(state)
        self._sum = self._acc.value()

    def __contains__(self, task_id: Hashable) -> bool:
        return task_id in self._contribs

    def __len__(self) -> int:
        return len(self._contribs)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add(self, task_id: Hashable, contribution: float, expiry: float) -> None:
        """Register a task's contribution ``C_ij / D_i`` until ``expiry``.

        Args:
            task_id: Unique task identifier.
            contribution: ``C_ij / D_i``; must be ``>= 0`` and finite.
            expiry: Absolute deadline ``A_i + D_i`` at which the
                contribution lapses.

        Raises:
            ValueError: If the task is already tracked or the
                contribution is invalid.
        """
        if task_id in self._contribs:
            raise ValueError(f"task {task_id!r} is already tracked at this stage")
        if contribution < 0 or not math.isfinite(contribution):
            raise ValueError(f"contribution must be finite and >= 0, got {contribution}")
        token = next(self._tokens)
        self._contribs[task_id] = (contribution, token)
        # ExactSum.add + .value(), inlined: admission installs call
        # this once per stage per admitted task, and the two method
        # dispatches cost as much as the bigint update they wrap.
        acc = self._acc
        n, d = contribution.as_integer_ratio()  # raises for inf/nan
        if n:
            acc._fixed += n << (_FIXED_SCALE - (d.bit_length() - 1))
        self._sum = _fixed_to_float(acc._fixed)
        heapq.heappush(self._expiry_heap, (expiry, token, task_id))

    def remove(self, task_id: Hashable) -> float:
        """Remove a task's contribution immediately (e.g. load shedding).

        Returns:
            The removed contribution, or 0.0 if the task was not tracked.
        """
        entry = self._contribs.pop(task_id, None)
        self._departed.pop(task_id, None)
        if entry is None:
            return 0.0
        # ExactSum.subtract + .value(), inlined (see add()).
        acc = self._acc
        contribution = entry[0]
        n, d = contribution.as_integer_ratio()
        if n:
            acc._fixed -= n << (_FIXED_SCALE - (d.bit_length() - 1))
        self._sum = _fixed_to_float(acc._fixed)
        return contribution

    def expire_until(self, now: float) -> float:
        """Drop all contributions whose deadline expired at or before ``now``.

        Returns:
            Total utilization released.
        """
        heap = self._expiry_heap
        if not heap or heap[0][0] > now:
            return 0.0
        contribs = self._contribs
        departed = self._departed
        acc = self._acc
        pop = heapq.heappop
        removed: List[float] = []
        append = removed.append
        while heap and heap[0][0] <= now:
            _, token, task_id = pop(heap)
            entry = contribs.get(task_id)
            if entry is None or entry[1] != token:
                continue  # stale entry: task removed (and possibly re-added)
            del contribs[task_id]
            departed.pop(task_id, None)
            # ExactSum.subtract, inlined (see add()).
            contribution = entry[0]
            n, d = contribution.as_integer_ratio()
            if n:
                acc._fixed -= n << (_FIXED_SCALE - (d.bit_length() - 1))
            append(contribution)
        if not removed:
            return 0.0
        self._sum = _fixed_to_float(acc._fixed)
        if len(removed) == 1:
            return removed[0]
        # fsum for the released amount: independent of the
        # (tie-dependent) heap pop order, like the accumulator itself.
        return math.fsum(removed)

    def next_expiry(self) -> float:
        """Earliest pending expiry time, or ``inf`` when nothing is tracked.

        Stale heap heads (from removed tasks) are pruned lazily.
        """
        while self._expiry_heap:
            expiry, token, task_id = self._expiry_heap[0]
            entry = self._contribs.get(task_id)
            if entry is not None and entry[1] == token:
                return expiry
            heapq.heappop(self._expiry_heap)
        return math.inf

    def mark_departed(self, task_id: Hashable) -> None:
        """Record that the task's subtask finished execution at this stage.

        The contribution stays counted until either the deadline expires
        or the stage next becomes idle (whichever comes first).
        """
        entry = self._contribs.get(task_id)
        if entry is not None:
            self._departed[task_id] = entry[0]

    def reset_on_idle(self) -> float:
        """Apply the idle-reset rule: drop contributions of departed tasks.

        Called when the stage's resource has no pending or running work.
        Departed tasks cannot affect the stage's future schedule, so
        their synthetic-utilization contribution is released (Section 4).
        The reserved baseline is retained.

        Returns:
            Total utilization released.
        """
        removed: List[float] = []
        for task_id, contribution in self._departed.items():
            # Departed entries are always still tracked (see
            # pending_idle_release), so this never misses.
            del self._contribs[task_id]
            self._acc.subtract(contribution)
            removed.append(contribution)
        self._departed.clear()
        if not removed:
            return 0.0
        self._sum = self._acc.value()
        # fsum for the released amount: independent of the departed
        # set's (path-dependent) insertion order.
        return math.fsum(removed)

    def clear(self) -> None:
        """Drop every tracked contribution, returning to the reserved baseline."""
        self._contribs.clear()
        self._departed.clear()
        self._expiry_heap.clear()
        self._acc.clear()
        self._sum = 0.0

    def load_sum(self, value: float) -> None:
        """Restore a legacy rounded running sum (schema-v1 snapshots).

        Old snapshots recorded only the rounded float total.  The
        accumulator adopts that value exactly (it is a finite double,
        hence exactly representable), so a v1-restored tracker carries
        the snapshotted total forward bit-for-bit; it can differ from
        the exact sum of the restored contributions by at most the
        rounding the legacy format already baked in — far below the
        auditor's drift tolerance.  New snapshots carry the exact
        accumulator state instead (:meth:`exact_state`).

        Raises:
            ValueError: If ``value`` is not finite.
        """
        self._acc.load_float(value)  # raises for non-finite values
        self._sum = value

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def recompute(self) -> float:
        """Rebuild the accumulator from the tracked contributions.

        The result equals the running total the incremental path
        maintains (both are the correctly-rounded exact sum of the
        same multiset); exposed for tests and corruption recovery.
        """
        self._acc.clear()
        for contribution, _ in self._contribs.values():
            self._acc.add(contribution)
        self._sum = self._acc.value()
        return self._sum
