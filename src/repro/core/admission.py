"""Utilization-based admission control for resource pipelines.

The feasible-region inequality yields an admission test that is
``O(N)`` in the number of stages and *independent of the number of
tasks in the system* (Section 1): a new task is admitted iff, after
tentatively adding its contribution ``C_ij / D_i`` to every stage it
uses, the system remains inside the region

    sum_j f(U_j) <= alpha (1 - sum_j beta_j).

Bookkeeping (Section 4): contributions are added when a task arrives at
the first stage, removed when its deadline expires, and — the key
anti-pessimism rule — when a stage becomes idle the contributions of
all tasks that already departed that stage are dropped.

Section 5 adds two mechanisms reproduced here:

- *reservations*: synthetic-utilization counters are initialized with
  reserved fractions for critical tasks, which are admitted against the
  reserved share rather than the dynamic one;
- *load shedding*: when an important arrival would leave the region,
  less important admitted tasks are shed in reverse order of semantic
  importance until the arrival fits.

Approximate admission control (Section 4.4) replaces the per-task
computation times with their means via a :class:`DemandModel`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..locking.bounds import PCPBlockingState
from ..locking.model import ResourceSpec
from .bounds import region_budget, stage_delay_factor
from .numeric import EPS, approx_eq, approx_ge, approx_le
from .synthetic import StageUtilizationTracker
from .task import PipelineTask

__all__ = [
    "DemandModel",
    "ExactDemand",
    "MeanDemand",
    "ScaledDemand",
    "AdmissionDecision",
    "ResyncReport",
    "PipelineAdmissionController",
]


class DemandModel:
    """Strategy mapping a task to the per-stage demand used by the test.

    Exact admission control uses the task's true computation times;
    approximate admission control (Section 4.4) substitutes the mean
    when actual execution demands are unknown at arrival.
    """

    def demand(self, task: PipelineTask) -> Tuple[float, ...]:
        """Per-stage computation times charged to the task."""
        raise NotImplementedError


class ExactDemand(DemandModel):
    """Charge each task its actual per-stage computation times."""

    def demand(self, task: PipelineTask) -> Tuple[float, ...]:
        return task.computation_times


class ScaledDemand(DemandModel):
    """Charge each task a scaled version of its actual demand.

    Robustness/failure-injection knob: with ``factor < 1`` the
    admission test systematically *under-charges* tasks — modeling
    optimistic WCET declarations or execution overruns (tasks run
    ``1 / factor`` times longer than admitted for).  The overrun
    ablation quantifies how the zero-miss guarantee degrades as the
    declared demand drifts from reality; ``factor > 1`` models
    conservative over-declaration (safe, wasteful).
    """

    def __init__(self, factor: float) -> None:
        """Args:
            factor: Multiplier applied to actual demands (> 0).
        """
        if factor <= 0 or not math.isfinite(factor):
            raise ValueError(f"factor must be finite and > 0, got {factor}")
        self.factor = factor

    def demand(self, task: PipelineTask) -> Tuple[float, ...]:
        return tuple(c * self.factor for c in task.computation_times)


class MeanDemand(DemandModel):
    """Charge every task the *mean* per-stage computation times.

    Models the Section-4.4 situation where the operator only knows the
    average demand.  With high task resolution, the law of large
    numbers makes this a good approximation; the price is a (small)
    possibility of deadline misses, quantified in Figure 7.
    """

    def __init__(self, mean_computation_times: Sequence[float]) -> None:
        """Args:
            mean_computation_times: Average ``C_j`` per stage.
        """
        means = tuple(float(c) for c in mean_computation_times)
        if any(c < 0 or not math.isfinite(c) for c in means):
            raise ValueError("mean computation times must be finite and >= 0")
        self.mean_computation_times = means

    def demand(self, task: PipelineTask) -> Tuple[float, ...]:
        if len(self.mean_computation_times) != task.num_stages:
            raise ValueError(
                f"mean demand has {len(self.mean_computation_times)} stages, "
                f"task has {task.num_stages}"
            )
        return self.mean_computation_times


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission request.

    Attributes:
        admitted: Whether the task was accepted.
        region_value: Left-hand side ``sum f(U_j)`` *after* the
            decision (with the task included when admitted).
        shed: Task ids shed to make room, empty unless shedding was
            requested and used.
    """

    admitted: bool
    region_value: float
    shed: Tuple[Hashable, ...] = ()


@dataclass(frozen=True)
class ResyncReport:
    """What :meth:`PipelineAdmissionController.resync` changed.

    Attributes:
        restored: Number of (stage, task) contributions re-installed.
        departures_marked: Contributions re-marked as departed from the
            ground-truth frontier (recovering lost departure
            notifications).
        dropped_orphans: Stage contributions removed because no admitted
            record justifies them.
        dropped_expired: Admitted records discarded because their
            deadline had passed.
    """

    restored: int
    departures_marked: int
    dropped_orphans: int
    dropped_expired: int


@dataclass
class _Admitted:
    """Internal record of an admitted task's live contributions.

    ``demand`` keeps the raw per-stage demand charged at admission time
    so a capacity rescale can re-derive contributions from first
    principles; ``None`` marks a record restored from a pre-v4 snapshot
    whose raw demand was never persisted (such records keep their
    original charges across rescales).  ``seq`` is the monotonically
    increasing admission sequence number — the deterministic tie-break
    when the degradation layer sacrifices tasks within an importance
    class.
    """

    contributions: Tuple[float, ...]
    expiry: float
    importance: int
    deadline: float = 0.0
    resources: Tuple[ResourceSpec, ...] = ()
    demand: Optional[Tuple[float, ...]] = None
    seq: int = 0


class PipelineAdmissionController:
    """O(N)-per-request admission controller over an N-stage pipeline.

    The controller owns one :class:`StageUtilizationTracker` per stage
    and implements the feasibility test, expiry, idle-reset, shedding,
    and reservation logic.  It is simulation-agnostic: a driving
    program (or the bundled simulator) calls the ``notify_*`` hooks.

    Attributes:
        num_stages: Pipeline length ``N``.
        alpha: Urgency-inversion parameter of the scheduling policy.
        betas: Optional per-stage normalized blocking terms.
        demand_model: Demand strategy (exact or mean-based).
        reset_on_idle: Whether the Section-4 idle-reset rule is active
            (disable only for ablation studies).
    """

    def __init__(
        self,
        num_stages: int,
        alpha: float = 1.0,
        betas: Optional[Sequence[float]] = None,
        reserved: Optional[Sequence[float]] = None,
        demand_model: Optional[DemandModel] = None,
        reset_on_idle: bool = True,
        locking: bool = False,
    ) -> None:
        """Create a controller.

        Args:
            num_stages: Number of pipeline stages (>= 1).
            alpha: Policy urgency-inversion parameter in ``(0, 1]``.
            betas: Per-stage blocking terms ``beta_j`` or ``None``.
            reserved: Per-stage reserved synthetic utilization for
                critical tasks (Section 5); counters are initialized
                with these values.
            demand_model: Defaults to :class:`ExactDemand`.
            reset_on_idle: Enable the idle-reset rule.
            locking: Derive ``beta_j`` online from the admitted tasks'
                :class:`~repro.locking.model.ResourceSpec` declarations
                under the priority-ceiling protocol instead of taking a
                static vector.  ``self.betas`` and ``self.budget`` then
                track the admitted set transactionally: an arrival
                whose critical sections would push ``sum_j beta_j``
                past the region is itself refused.  Mutually exclusive
                with a static ``betas`` vector.

        Raises:
            ValueError: On invalid dimensions or parameter ranges, or
                if the reserved vector itself violates the region.
        """
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        if betas is not None and len(betas) != num_stages:
            raise ValueError(f"betas length {len(betas)} != num_stages {num_stages}")
        if locking and betas is not None:
            raise ValueError(
                "locking derives the beta vector online; a static betas "
                "vector cannot be combined with it"
            )
        if reserved is None:
            reserved = [0.0] * num_stages
        if len(reserved) != num_stages:
            raise ValueError(f"reserved length {len(reserved)} != num_stages {num_stages}")
        self.num_stages = num_stages
        self.alpha = alpha
        self.locking = locking
        self._blocking: Optional[PCPBlockingState] = (
            PCPBlockingState(num_stages) if locking else None
        )
        if self._blocking is not None:
            self.betas: Optional[Tuple[float, ...]] = self._blocking.betas()
            self.budget = region_budget(alpha, self.betas)
        else:
            self.betas = None if betas is None else tuple(betas)
            self.budget = region_budget(alpha, betas)
        self.demand_model = demand_model if demand_model is not None else ExactDemand()
        self.reset_on_idle = reset_on_idle
        # Remaining processing capacity per stage, in [0, 1].  1.0 is
        # nominal; a degraded stage (graceful-degradation layer) serves
        # at a fraction of its speed, so admitted work must be charged
        # proportionally more synthetic utilization; 0.0 marks a full
        # outage, under which nothing new is admitted through the stage.
        self._capacities: List[float] = [1.0] * num_stages
        # True once rescale_stage_capacity() has re-charged the admitted
        # set: from then on every demand-bearing record's contributions
        # are a pure function of (demand, deadline, capacities), which
        # the auditor's capacity-drift invariant checks bitwise.
        self._charges_follow_capacity = False
        # Monotonic admission counter; each installed record takes the
        # next value.  Survives snapshots (schema v4) so sacrifice
        # tie-breaks are deterministic across crash recovery.
        self._admission_seq = 0
        self.trackers = [StageUtilizationTracker(r) for r in reserved]
        # Monotonic epoch covering everything _contributions /
        # _candidate_budget read besides the task itself: the blocking
        # state and the capacity vector.  would_admit caches its derived
        # (contributions, previewed budget) pair against this epoch so a
        # probe immediately followed by request() for the same task
        # object pays the derivation once, not twice.
        self._derivation_epoch = 0
        self._probe: Optional[
            Tuple[PipelineTask, int, Tuple[float, ...], Optional[float]]
        ] = None
        self._admitted: Dict[Hashable, _Admitted] = {}
        # Min-heap of (expiry, task_id) so expire() is amortized
        # O(log n) per admitted task instead of a full scan — the
        # O(N)-per-request complexity claim depends on it.
        self._expiry_heap: List[Tuple[float, Hashable]] = []
        reserved_value = sum(stage_delay_factor(r) for r in reserved)
        if not approx_le(reserved_value, self.budget):
            raise ValueError(
                f"reserved utilizations are infeasible: region value "
                f"{reserved_value:.4f} exceeds budget {self.budget:.4f}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def utilizations(self) -> Tuple[float, ...]:
        """Current synthetic utilization of every stage."""
        return tuple(t.value for t in self.trackers)

    def region_value(self) -> float:
        """Current left-hand side ``sum_j f(U_j)``."""
        return sum(stage_delay_factor(min(t.value, 1.0)) for t in self.trackers)

    def margin(self) -> float:
        """Remaining budget (negative would mean the region is violated)."""
        return self.budget - self.region_value()

    def is_admitted(self, task_id: Hashable) -> bool:
        """Whether the task currently holds live contributions."""
        return task_id in self._admitted

    @property
    def admitted_count(self) -> int:
        """Number of tasks with live contributions."""
        return len(self._admitted)

    def stage_capacities(self) -> Tuple[float, ...]:
        """Declared remaining capacity per stage (1.0 = nominal)."""
        return tuple(self._capacities)

    def admitted_expiry(self, task_id: Hashable) -> Optional[float]:
        """Absolute deadline of an admitted task (``None`` if not admitted)."""
        record = self._admitted.get(task_id)
        return None if record is None else record.expiry

    def admitted_snapshot(self) -> Dict[Hashable, Tuple[float, ...]]:
        """Contribution vectors of every admitted task (read-only copy)."""
        return {
            task_id: record.contributions
            for task_id, record in self._admitted.items()
        }

    def iter_admitted(
        self,
    ) -> List[
        Tuple[
            Hashable,
            Tuple[float, ...],
            float,
            int,
            float,
            Tuple[ResourceSpec, ...],
            Optional[Tuple[float, ...]],
            int,
        ]
    ]:
        """Full admitted records: ``(task_id, contributions, expiry,
        importance, deadline, resources, demand, seq)``.

        The contributions are the amounts charged at admission time;
        per-stage *live* amounts (after idle resets) must be read from
        the trackers.  ``deadline`` is the task's relative deadline
        ``D_i`` (0.0 for records restored from pre-locking snapshots
        that never persisted it) and ``resources`` its canonical
        shared-resource declarations — together they are what the
        blocking engine needs to rebuild ``B_ij`` from a snapshot.
        ``demand`` is the raw per-stage demand charged at admission
        (``None`` for pre-v4 restores) and ``seq`` the admission
        sequence number — what the degradation layer needs to rescale
        charges and break sacrifice ties deterministically.  Used by
        the serving layer's snapshot/restore.
        """
        return [
            (
                task_id,
                record.contributions,
                record.expiry,
                record.importance,
                record.deadline,
                record.resources,
                record.demand,
                record.seq,
            )
            for task_id, record in self._admitted.items()
        ]

    # ------------------------------------------------------------------
    # State restore (serving-layer snapshot support)
    # ------------------------------------------------------------------

    def load_admitted(
        self,
        task_id: Hashable,
        contributions: Sequence[float],
        expiry: float,
        importance: int = 0,
        live: Optional[Sequence[Optional[float]]] = None,
        departed_stages: Sequence[int] = (),
        deadline: float = 0.0,
        resources: Sequence[ResourceSpec] = (),
        demand: Optional[Sequence[float]] = None,
        seq: Optional[int] = None,
    ) -> None:
        """Re-install one admitted task's bookkeeping from a snapshot.

        The inverse of :meth:`iter_admitted` plus the trackers' live
        state: the admitted record keeps the originally charged
        ``contributions`` (so shedding rollback restores exactly what it
        removed), while the trackers only receive the ``live`` per-stage
        amounts — entries already released by idle resets stay released.

        Args:
            task_id: Task identifier (must not currently be admitted).
            contributions: Originally charged per-stage contributions.
            expiry: Absolute deadline of the task.
            importance: Semantic importance (shedding order).
            live: Per-stage amounts still counted by the trackers; a
                ``None`` entry marks a stage no longer tracking the
                task (its contribution was released by an idle reset —
                distinct from a tracked zero-cost contribution).
                Defaults to ``contributions`` (nothing released yet).
            departed_stages: Stages where the task already departed and
                awaits the next idle reset.
            deadline: The task's relative deadline ``D_i``; required
                (> 0) on a locking controller, where it feeds the
                blocking engine's priority key and normalization.
                Pre-locking snapshots never persisted it, so 0.0 marks
                "unknown" on non-locking controllers.
            resources: Canonical shared-resource declarations of the
                task; re-tracked by the blocking engine on a locking
                controller so ``beta_j`` and the budget are rebuilt
                bitwise.
            demand: Raw per-stage demand charged at admission time;
                ``None`` (pre-v4 snapshots) pins the record's charges
                across future capacity rescales.
            seq: Admission sequence number; ``None`` assigns the next
                counter value (legacy snapshots restore records in
                document order, so assignment stays deterministic).

        Raises:
            ValueError: If the task is already admitted or a vector has
                the wrong length.
        """
        if task_id in self._admitted:
            raise ValueError(f"task {task_id!r} is already admitted")
        charged = tuple(float(c) for c in contributions)
        amounts: Tuple[Optional[float], ...] = (
            charged
            if live is None
            else tuple(None if c is None else float(c) for c in live)
        )
        if len(charged) != self.num_stages or len(amounts) != self.num_stages:
            raise ValueError(
                f"contribution vectors must have {self.num_stages} entries"
            )
        raw: Optional[Tuple[float, ...]] = None
        if demand is not None:
            raw = tuple(float(c) for c in demand)
            if len(raw) != self.num_stages:
                raise ValueError(
                    f"demand vector must have {self.num_stages} entries"
                )
        specs = tuple(resources)
        self._locking_track(task_id, deadline, specs)
        departed = frozenset(departed_stages)
        for j, (tracker, amount) in enumerate(zip(self.trackers, amounts)):
            if amount is not None:
                tracker.add(task_id, amount, expiry)
                if j in departed:
                    tracker.mark_departed(task_id)
        if seq is None:
            self._admission_seq += 1
            seq = self._admission_seq
        else:
            seq = int(seq)
            if seq > self._admission_seq:
                self._admission_seq = seq
        self._admitted[task_id] = _Admitted(
            contributions=charged,
            expiry=expiry,
            importance=importance,
            deadline=float(deadline),
            resources=specs,
            demand=raw,
            seq=seq,
        )
        heapq.heappush(self._expiry_heap, (expiry, task_id))

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------

    def set_stage_capacity(self, stage: int, capacity: float) -> None:
        """Declare that ``stage`` now serves at ``capacity`` of nominal speed.

        Capacity-aware region rescaling: a stage running at capacity
        ``c`` needs ``C_ij / c`` time units to serve a demand of
        ``C_ij``, so future admission tests charge the inflated
        contribution ``C_ij / (c * D_i)``.  Contributions of already
        admitted tasks are left untouched — the test degrades gracefully
        rather than retroactively revoking admissions.

        ``capacity = 0.0`` marks a full outage: every admission through
        the stage is rejected until capacity is restored.

        Args:
            stage: Stage index.
            capacity: Fraction of nominal speed in ``[0, 1]``.

        Raises:
            ValueError: If ``capacity`` is outside ``[0, 1]`` or not
                finite.
        """
        if not math.isfinite(capacity) or not (0.0 <= capacity <= 1.0):
            raise ValueError(f"capacity must be in [0, 1], got {capacity}")
        self._capacities[stage] = capacity
        self._derivation_epoch += 1
        # Prospective-only changes break the charges == f(demand,
        # capacities) identity for the already-admitted set, so the
        # capacity-drift invariant stands down until the next rescale.
        self._charges_follow_capacity = False

    @property
    def charges_follow_capacity(self) -> bool:
        """Whether admitted charges are a pure function of the capacities.

        ``True`` after :meth:`rescale_stage_capacity` re-charged the
        admitted set; ``False`` after a prospective-only
        :meth:`set_stage_capacity`.  The auditor's ``capacity-drift``
        invariant only applies while this holds.
        """
        return self._charges_follow_capacity

    @property
    def admission_seq(self) -> int:
        """Monotonic admission counter (sacrifice tie-break order)."""
        return self._admission_seq

    def load_degradation_state(
        self, admission_seq: int, charges_follow_capacity: bool
    ) -> None:
        """Adopt snapshot-carried degradation bookkeeping (schema v4).

        Called by the serving layer's restore path *after* the admitted
        records are loaded; legacy snapshots (pre-v4) pass the counter
        value the restore loop assigned and ``False``.
        """
        if admission_seq < 0:
            raise ValueError(
                f"admission_seq must be >= 0, got {admission_seq}"
            )
        if admission_seq < self._admission_seq:
            raise ValueError(
                f"admission_seq {admission_seq} below the restored "
                f"records' maximum {self._admission_seq}"
            )
        self._admission_seq = int(admission_seq)
        self._charges_follow_capacity = bool(charges_follow_capacity)

    def rescale_stage_capacity(self, stage: int, capacity: float) -> None:
        """Authoritatively set ``stage``'s capacity and re-charge the admitted set.

        The online-degradation path: unlike the prospective
        :meth:`set_stage_capacity`, every admitted record carrying its
        raw demand is re-charged against the *full current* capacity
        vector using exactly the per-stage expression
        :meth:`_contributions` applies to fresh arrivals — so a
        controller that rescales and then admits is bitwise identical
        to a fresh controller built at the new capacities.  Tracker
        totals move through the exact accumulator (remove + add, both
        exact), preserving the canonical-per-multiset property crash
        recovery depends on.

        Stages at capacity 0.0 (outage) keep each record's previous
        charge — an infinite charge can never enter a tracker — and
        :meth:`repair_region` evicts demand-bearing tasks at outage
        stages instead.  Records restored from pre-v4 snapshots carry
        no raw demand and keep their charges unchanged.

        Args:
            stage: Stage index.
            capacity: Fraction of nominal speed in ``[0, 1]``.

        Raises:
            ValueError: If ``capacity`` is outside ``[0, 1]`` or not
                finite.
        """
        if not math.isfinite(capacity) or not (0.0 <= capacity <= 1.0):
            raise ValueError(f"capacity must be in [0, 1], got {capacity}")
        self._capacities[stage] = capacity
        self._derivation_epoch += 1
        self._charges_follow_capacity = True
        for task_id, record in self._admitted.items():
            if record.demand is None:
                continue
            charged = self._recharge(record)
            if charged == record.contributions:
                continue
            for tracker, old, new in zip(
                self.trackers, record.contributions, charged
            ):
                if new == old or task_id not in tracker:
                    # Bitwise-equal charge, or a stage that already
                    # released the task (idle reset): nothing to move.
                    continue
                departed = tracker.is_departed(task_id)
                tracker.remove(task_id)
                tracker.add(task_id, new, record.expiry)
                if departed:
                    tracker.mark_departed(task_id)
            record.contributions = charged

    def _recharge(self, record: _Admitted) -> Tuple[float, ...]:
        """Re-derive a record's charges from its raw demand.

        Mirrors :meth:`_contributions` stage by stage (same float
        expressions, same order) except at outage stages, where the
        record's existing charge is retained.
        """
        assert record.demand is not None
        contributions = []
        for j, (c, capacity) in enumerate(zip(record.demand, self._capacities)):
            if capacity == 1.0:
                contributions.append(c / record.deadline)
            elif capacity == 0.0:
                contributions.append(record.contributions[j])
            else:
                contributions.append(c / (capacity * record.deadline))
        return tuple(contributions)

    def region_ok(self) -> bool:
        """Whether the live admitted set satisfies Eq. 12/15 right now.

        Re-runs the region test over the *current* tracker state: every
        stage utilization strictly inside saturation and the summed
        delay factors within the (locking-aware) budget.  This is the
        post-repair feasibility check — fresh admissions are tested
        incrementally by :meth:`_fits`, but a capacity rescale moves
        already-charged utilization, which only this whole-set test
        catches.
        """
        if self.betas is not None and math.fsum(self.betas) >= 1.0:
            return False
        for tracker in self.trackers:
            if approx_ge(tracker.value, 1.0):
                return False
        return approx_le(self.region_value(), self.budget)

    def repair_region(self) -> List[Hashable]:
        """Evict admitted tasks until the feasible region holds again.

        The sacrifice loop of the degradation layer: victims are chosen
        in :class:`~repro.faults.degradation.BrownoutController` order —
        ascending importance class, ties broken by admission sequence
        (oldest first) — exactly the deterministic order replay needs.
        Two categories are evicted:

        1. every demand-bearing task using a stage in outage
           (capacity 0.0), unconditionally — the stage cannot serve
           them, and their retained charges would otherwise pin stale
           utilization; then
        2. further victims, lowest importance first, until
           :meth:`region_ok` passes.

        On a locking controller each eviction drops the victim's
        critical sections from the blocking state, so ``beta_j`` and
        the budget are re-previewed implicitly before the next
        :meth:`region_ok` evaluation — a repair plan is only accepted
        once both the utilization terms and the blocking budget fit.

        Returns:
            The evicted task ids, in eviction order.
        """
        sacrificed: List[Hashable] = []
        outage = [j for j, c in enumerate(self._capacities) if c == 0.0]
        if outage:
            doomed = [
                (record.importance, record.seq, task_id)
                for task_id, record in self._admitted.items()
                if record.demand is not None
                and any(record.demand[j] > 0.0 for j in outage)
            ]
            for _, _, task_id in sorted(doomed):
                self._evict(task_id)
                sacrificed.append(task_id)
        if self.region_ok():
            return sacrificed
        victims = sorted(
            (record.importance, record.seq, task_id)
            for task_id, record in self._admitted.items()
        )
        for _, _, task_id in victims:
            self._evict(task_id)
            sacrificed.append(task_id)
            if self.region_ok():
                break
        return sacrificed

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def would_admit(self, task: PipelineTask, now: float) -> bool:
        """Evaluate the O(N) test without committing the task.

        The derived (contributions, previewed-budget) pair is cached on
        the controller keyed by the task object and the derivation
        epoch, so a probe immediately followed by :meth:`request` for
        the same task pays the (locking-path) blocking preview and
        budget derivation once, not twice.
        """
        self.expire(now)
        contributions, budget = self._derive(task)
        return budget is not None and self._fits(contributions, budget)

    def request(self, task: PipelineTask, now: float) -> AdmissionDecision:
        """Run the admission test and commit the task when it passes.

        On a locking controller the test runs against the budget the
        controller *would* hold after admitting the task — including
        the blocking its own critical sections add — so an arrival that
        would push ``sum_j beta_j`` out of the region is refused even
        when the utilization terms alone still fit.

        Args:
            task: The arriving task (its pipeline length must match).
            now: Current time, used to lapse expired contributions
                first.

        Returns:
            An :class:`AdmissionDecision`; when admitted, the task's
            contributions are installed on every stage until
            ``task.absolute_deadline``.
        """
        self.expire(now)
        contributions, budget = self._derive(task)
        if budget is None or not self._fits(contributions, budget):
            return AdmissionDecision(admitted=False, region_value=self.region_value())
        self._install(task, contributions)
        return AdmissionDecision(admitted=True, region_value=self.region_value())

    def admit_many(
        self,
        tasks: Sequence[PipelineTask],
        times: Optional[Sequence[float]] = None,
        presorted: bool = False,
    ) -> List[AdmissionDecision]:
        """Batched admission: decide a time-ordered arrival sequence in one pass.

        The batched fast path amortizes the per-request bookkeeping of
        :meth:`request` — expiry processing is skipped for arrivals that
        share a timestamp (bursts), and the region value returned with
        each decision is served from a per-stage cache of
        ``f(min(U_j, 1))`` terms instead of being recomputed ``O(N)``
        per rejection.

        Correctness guarantee: the decisions (and the final tracker
        state) are *decision-for-decision identical* to calling
        :meth:`request` once per task at the same timestamps.  The test
        loop performs the exact same float operations in the exact same
        order as :meth:`_fits`, and cache entries are always recomputed
        from ``tracker.value`` with the same expression
        :meth:`region_value` uses — so not even the last ulp differs.

        The guarantee requires every task's expiry to lie strictly
        after its decision timestamp: the equal-timestamp expiry skip
        would otherwise keep an already-lapsed admission charged for
        the rest of its burst, where sequential :meth:`request` calls
        would have expired it.  Such a task is dead on arrival anyway
        (its deadline passed before it was decided), so the batch path
        rejects the input outright.  Default timestamps always satisfy
        this (``absolute_deadline > arrival_time`` for any valid task).

        Args:
            tasks: Arriving tasks, ordered by decision time.
            times: Decision timestamp per task; defaults to each task's
                ``arrival_time``.  Must be non-decreasing, and each must
                precede its task's ``absolute_deadline``.
            presorted: The caller vouches that both preconditions
                already hold, so the validation sweep is skipped.  The
                serving layer qualifies: its pipeline clock rejects any
                timestamp regression before queueing, and its wire
                validation only accepts ``deadline > 0`` (so every
                ``arrival_time``-timestamped decision strictly precedes
                the task's expiry).

        Returns:
            One :class:`AdmissionDecision` per task, in input order.

        Raises:
            ValueError: If ``times`` has the wrong length, the
                timestamps are not non-decreasing, or a task would be
                decided at or after its absolute deadline (the latter
                two only checked when ``presorted`` is false).
        """
        task_list = list(tasks)
        if times is None:
            time_list = [task.arrival_time for task in task_list]
        else:
            time_list = [float(t) for t in times]
            if len(time_list) != len(task_list):
                raise ValueError(
                    f"{len(time_list)} timestamps for {len(task_list)} tasks"
                )
        if not presorted:
            prev = -math.inf
            for task, now in zip(task_list, time_list):
                if now < prev:
                    raise ValueError(
                        f"batch timestamps must be non-decreasing, got {prev} "
                        f"then {now}"
                    )
                prev = now
                # Raw comparison on purpose: expiry uses raw `expiry <= now`
                # (StageUtilizationTracker.expire_until), so the divergence
                # this precondition excludes begins exactly at equality.
                if now >= task.absolute_deadline:  # repro: noqa[FLT002] — must mirror the raw `expiry <= now` expiry comparison exactly
                    raise ValueError(
                        f"task {task.task_id!r} decided at {now}, at or after "
                        f"its absolute deadline {task.absolute_deadline}; "
                        "sequential equivalence requires every decision to "
                        "precede the task's expiry"
                    )
        # A locking controller's budget moves with every install and
        # expiry, so each candidate must be tested against its own
        # previewed budget — the per-task reference loop.  Without
        # locking the vectorized loop hoists every batch-invariant read
        # (budget, tracker values, region cache) out of the iteration.
        if self._blocking is not None:
            return self._admit_many_scalar(task_list, time_list)
        return self._admit_many_fast(task_list, time_list)

    def _admit_many_scalar(
        self, task_list: List[PipelineTask], time_list: List[float]
    ) -> List[AdmissionDecision]:
        """Reference per-task decision loop (also the locking path).

        This is the loop the vectorized fast path must match bitwise;
        ``tests/test_vectorized_admission.py`` holds the two to
        decision-for-decision and fingerprint equality.
        """
        trackers = self.trackers
        # With locking off the budget is a constant and is hoisted out
        # of the loop; a locking controller's budget moves with every
        # install/expiry, and each candidate is tested against its own
        # previewed budget — exactly as sequential request() would.
        locking = self._blocking is not None
        budget = self.budget
        # f(min(U_j, 1)) per stage; kept exactly equal to the terms
        # region_value() would compute, so sum(cache) == region_value().
        cache = [stage_delay_factor(min(t.value, 1.0)) for t in trackers]
        decisions: List[AdmissionDecision] = []
        last_now: Optional[float] = None
        for task, now in zip(task_list, time_list):
            if last_now is None or now > last_now:
                self._expire_cached(now, cache)
                last_now = now
            contributions = self._contributions(task)
            row_budget = self._candidate_budget(task) if locking else budget
            # Inline of _fits, same float-op order (equivalence depends on it).
            value = 0.0
            fits = row_budget is not None
            if fits:
                for tracker, extra in zip(trackers, contributions):
                    u = tracker.value + extra
                    if approx_ge(u, 1.0):
                        fits = False
                        break
                    value += stage_delay_factor(u)
                    if not approx_le(value, row_budget):
                        fits = False
                        break
            if fits:
                self._install(task, contributions)
                for j, tracker in enumerate(trackers):
                    cache[j] = stage_delay_factor(min(tracker.value, 1.0))
            decisions.append(
                AdmissionDecision(admitted=fits, region_value=sum(cache))
            )
        return decisions

    def _admit_many_fast(
        self, task_list: List[PipelineTask], time_list: List[float]
    ) -> List[AdmissionDecision]:
        """Vectorized batch admission loop (non-locking controllers).

        Same decisions, same final state, same floats as
        :meth:`_admit_many_scalar` — DESIGN.md §16 maps each hoist to
        the same-ulp argument.  Per-task work is reduced to the
        irreducible float expressions:

        - the budget is a loop constant (no locking preview),
        - ``values`` mirrors each ``tracker.value`` float and is
          refreshed only when a tracker actually changes (install or
          expiry), so the region test reads a list instead of
          properties,
        - the contribution column is built into a preallocated row
          reused across tasks, with the all-nominal capacity vector
          pre-resolved to the plain ``c / D_i`` form,
        - expiry sweeps are skipped entirely while the controller
          expiry heap's head (a lower bound on every live tracker
          expiry, since tracker entries are pushed alongside a
          controller entry with the same expiry) lies in the future,
        - the cached region sum is reused across consecutive
          rejections, which also share one frozen decision object.

        The inequality chain inlines ``approx_ge(u, 1.0)``,
        ``stage_delay_factor(u)`` and ``approx_le(value, budget)`` with
        identical float expressions in identical order; the inlined
        ``approx_*`` reductions are exact because ``u >= 0`` always
        holds here and a NaN utilization raises exactly where
        ``stage_delay_factor`` would.
        """
        trackers = self.trackers
        num_stages = self.num_stages
        budget = self.budget
        demand_model = self.demand_model
        exact_demand = type(demand_model) is ExactDemand
        capacities = self._capacities
        nominal = True
        for capacity in capacities:
            if capacity != 1.0:
                nominal = False
                break
        heap = self._expiry_heap
        eps = EPS
        _sdf = stage_delay_factor
        values = [t.value for t in trackers]
        # f(min(U_j, 1)) per stage; kept exactly equal to the terms
        # region_value() would compute, so sum(cache) == region_value().
        cache = [_sdf(min(v, 1.0)) for v in values]
        region_total = sum(cache)
        row = [0.0] * num_stages
        # |budget|, hoisted for the inlined approx_eq tolerance term
        # max(1.0, |value|, |budget|): value >= 0 always (a sum of
        # non-negative region terms), so only the budget needs abs().
        abs_budget = budget if budget >= 0.0 else -budget  # repro: noqa[FLT002] — sign probe for the hoisted |budget|, not a boundary decision
        decision_cls = AdmissionDecision
        new_decision = decision_cls.__new__
        set_dict = object.__setattr__
        # _install, unrolled for the non-locking fast path: prebound
        # per-stage tracker adds, a locally carried admission sequence,
        # and direct record construction (this path never runs with a
        # blocking engine, so the _locking_track no-op call drops out).
        admitted_map = self._admitted
        tracker_adds = [t.add for t in trackers]
        record_cls = _Admitted
        new_record = record_cls.__new__
        push_expiry = heapq.heappush
        next_expiry = heap[0][0] if heap else math.inf
        reject: Optional[AdmissionDecision] = None
        decisions: List[AdmissionDecision] = []
        append = decisions.append
        last_now: Optional[float] = None
        for task, now in zip(task_list, time_list):
            if last_now is None or now > last_now:
                if next_expiry <= now:
                    if self._expire_batch(now, cache, values):
                        region_total = sum(cache)
                        reject = None
                    next_expiry = heap[0][0] if heap else math.inf
                last_now = now
            demand = (
                task.computation_times if exact_demand else demand_model.demand(task)
            )
            if len(demand) != num_stages:
                raise ValueError(
                    f"task {task.task_id} has {len(demand)} stages, controller has "
                    f"{num_stages}"
                )
            deadline = task.deadline
            # Inline of _fits at the hoisted budget: same expressions,
            # same order (equivalence depends on it).  The nominal
            # branch folds _contributions into the test loop — each
            # stage's ``c / deadline`` is computed where it is consumed,
            # so a task rejected at stage j never pays the remaining
            # divisions and no row is materialized; the install path
            # recomputes the same divisions (float division is
            # deterministic, so the installed tuple holds the exact
            # bits the row would have carried).
            value = 0.0
            fits = True
            if nominal:
                for v, c in zip(values, demand):
                    u = v + c / deadline
                    gap = 1.0 - u
                    # approx_ge(u, 1.0) specialized to u in [0, inf]: the
                    # tolerance term max(1.0, |u|, 1.0) is exactly 1.0 for
                    # u < 1.0, and |u - 1.0| is bitwise 1.0 - u there.
                    if u >= 1.0 or gap <= eps:
                        fits = False
                        break
                    if u != u:  # repro: noqa[FLT001] — NaN probe: request()'s isnan check without the call
                        raise ValueError(f"utilization must be finite, got {u}")
                    value += u * (1.0 - u / 2.0) / gap
                    # approx_le(value, budget): value <= budget
                    # short-circuits; past it, the inlined approx_eq
                    # complement (value and budget finite and unequal
                    # here, so the a == b / isinf / isnan prefixes all
                    # fall through to the tolerance test).
                    if value > budget:  # repro: noqa[FLT002] — inlined approx_le short-circuit, resolved by the tolerance test below
                        m = value if value > abs_budget else abs_budget  # repro: noqa[FLT002] — magnitude pick for the tolerance term, not an admission compare
                        if value - budget > eps * (m if m > 1.0 else 1.0):  # repro: noqa[FLT002] — inlined approx_eq complement, same tolerance expression
                            fits = False
                            break
                if fits:
                    contributions = tuple(c / deadline for c in demand)
            else:
                # Degraded capacities: _contributions stage by stage
                # into the preallocated row, then the identical test.
                for j, c in enumerate(demand):
                    capacity = capacities[j]
                    if capacity == 1.0:
                        row[j] = c / deadline
                    elif capacity == 0.0:
                        row[j] = math.inf
                    else:
                        row[j] = c / (capacity * deadline)
                for v, extra in zip(values, row):
                    u = v + extra
                    gap = 1.0 - u
                    if u >= 1.0 or gap <= eps:
                        fits = False
                        break
                    if u != u:  # repro: noqa[FLT001] — NaN probe: request()'s isnan check without the call
                        raise ValueError(f"utilization must be finite, got {u}")
                    value += u * (1.0 - u / 2.0) / gap
                    if value > budget:  # repro: noqa[FLT002] — inlined approx_le short-circuit, resolved by the tolerance test below
                        m = value if value > abs_budget else abs_budget  # repro: noqa[FLT002] — magnitude pick for the tolerance term, not an admission compare
                        if value - budget > eps * (m if m > 1.0 else 1.0):  # repro: noqa[FLT002] — inlined approx_eq complement, same tolerance expression
                            fits = False
                            break
                if fits:
                    contributions = tuple(row)
            if fits:
                # Install: per-stage tracker adds (the duplicate-id
                # guard lives in tracker.add), then the admitted record
                # built directly — same state _install produces, with
                # the sequence number written back immediately so an
                # add() raise mid-batch leaves it exact.
                expiry = task.arrival_time + deadline
                task_id = task.task_id
                for add, contribution in zip(tracker_adds, contributions):
                    add(task_id, contribution, expiry)
                self._admission_seq = seq = self._admission_seq + 1
                record = new_record(record_cls)
                record.__dict__ = {
                    "contributions": contributions,
                    "expiry": expiry,
                    "importance": task.importance,
                    "deadline": deadline,
                    "resources": task.resources,
                    "demand": tuple(demand),
                    "seq": seq,
                }
                admitted_map[task_id] = record
                push_expiry(heap, (expiry, task_id))
                if expiry < next_expiry:
                    next_expiry = expiry
                for j, tracker in enumerate(trackers):
                    v = tracker.value
                    values[j] = v
                    cache[j] = _sdf(min(v, 1.0))
                region_total = sum(cache)
                reject = None
                # Frozen-dataclass fast construction: __init__ +
                # frozen __setattr__ cost twice what the admit lane
                # can afford, and the field set is fixed.
                admitted = new_decision(decision_cls)
                set_dict(
                    admitted,
                    "__dict__",
                    {"admitted": True, "region_value": region_total, "shed": ()},
                )
                append(admitted)
            else:
                if reject is None:
                    # Frozen dataclass: consecutive rejections at an
                    # unchanged region share one decision object.
                    reject = AdmissionDecision(
                        admitted=False, region_value=region_total
                    )
                append(reject)
        return decisions

    def _expire_batch(
        self, now: float, cache: List[float], values: List[float]
    ) -> bool:
        """:meth:`_expire_cached`, also refreshing the hoisted value row.

        Returns ``True`` when any cached region term changed, so the
        batch loop re-derives its cached region sum.
        """
        changed = False
        for j, tracker in enumerate(self.trackers):
            # Same released-amount guard as _expire_cached: a release
            # of 0.0 cannot have moved the exact accumulator, so both
            # the cached term and the mirrored value stay valid.
            if tracker.expire_until(now):
                v = tracker.value
                values[j] = v
                cache[j] = stage_delay_factor(min(v, 1.0))
                changed = True
        heap = self._expiry_heap
        admitted = self._admitted
        pop = heapq.heappop
        # The batch path never runs with a blocking engine, so the
        # per-expiry _locking_discard no-op call is skipped wholesale.
        locking = self._blocking is not None
        while heap and heap[0][0] <= now:
            _, task_id = pop(heap)
            record = admitted.get(task_id)
            if record is not None and record.expiry <= now:
                del admitted[task_id]
                if locking:
                    self._locking_discard(task_id)
        return changed

    def _expire_cached(self, now: float, cache: List[float]) -> None:
        """:meth:`expire`, refreshing region-cache entries of touched stages."""
        for j, tracker in enumerate(self.trackers):
            # A released amount of 0.0 leaves the cached term valid: the
            # exact accumulator guarantees expiring zero-cost
            # contributions cannot move the running sum (an exact
            # subtraction of zero), so only stages that actually
            # released utilization need their f(min(U_j, 1)) term
            # re-derived.
            if tracker.expire_until(now):
                cache[j] = stage_delay_factor(min(tracker.value, 1.0))
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, task_id = heapq.heappop(self._expiry_heap)
            record = self._admitted.get(task_id)
            if record is not None and record.expiry <= now:
                del self._admitted[task_id]
                self._locking_discard(task_id)

    def request_with_shedding(
        self, task: PipelineTask, now: float
    ) -> AdmissionDecision:
        """Admit an important task, shedding less important load if needed.

        Implements the Section-5 overload architecture: if the arrival
        would leave the feasible region, admitted tasks of *strictly
        lower* importance are shed in increasing order of importance
        (FIFO within a class) until the arrival fits or no candidates
        remain.  Shedding is rolled back if the arrival still cannot be
        admitted.

        Returns:
            The decision; ``shed`` lists the removed task ids (callers
            must abort those tasks in the execution substrate).
        """
        self.expire(now)
        contributions, budget = self._derive(task)
        if budget is not None and self._fits(contributions, budget):
            self._install(task, contributions)
            return AdmissionDecision(admitted=True, region_value=self.region_value())

        candidates = sorted(
            (
                (record.importance, task_id)
                for task_id, record in self._admitted.items()
                if record.importance < task.importance
            ),
        )
        shed: List[Hashable] = []
        rollback: List[Tuple[Hashable, _Admitted, Tuple[float, ...]]] = []
        for _, victim_id in candidates:
            record = self._admitted[victim_id]
            if not any(t.contribution_of(victim_id) for t in self.trackers):
                # All of the victim's contributions already lapsed
                # (idle resets / expiry): shedding it frees nothing.
                # On a locking controller its blocking sections may
                # still be charged, but eviction of zero-contribution
                # blockers is handled by expiry, not shedding.
                continue
            removed = self._evict(victim_id)
            shed.append(victim_id)
            rollback.append((victim_id, record, removed))
            # Shedding a victim relaxes ceilings and drops sections, so
            # the previewed budget must be re-derived after each evict.
            budget = self._candidate_budget(task)
            if budget is not None and self._fits(contributions, budget):
                self._install(task, contributions)
                return AdmissionDecision(
                    admitted=True, region_value=self.region_value(), shed=tuple(shed)
                )
        # Not admissible even after shedding everything less important:
        # roll the victims back (exactly the amounts removed) and reject.
        for victim_id, record, removed in rollback:
            self._reinstall(victim_id, record, removed)
        return AdmissionDecision(admitted=False, region_value=self.region_value())

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------

    def expire(self, now: float) -> None:
        """Lapse contributions of tasks whose deadlines passed.

        On a locking controller an expired job also stops blocking:
        its critical sections leave the ``B_ij`` bound and the budget
        grows back accordingly.
        """
        for tracker in self.trackers:
            tracker.expire_until(now)
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, task_id = heapq.heappop(self._expiry_heap)
            record = self._admitted.get(task_id)
            if record is not None and record.expiry <= now:
                del self._admitted[task_id]
                self._locking_discard(task_id)

    def notify_subtask_departure(self, task_id: Hashable, stage: int) -> None:
        """Record that the task finished executing at ``stage``.

        The stage's tracker will drop the contribution at its next idle
        instant (if the idle-reset rule is enabled).
        """
        self.trackers[stage].mark_departed(task_id)

    def notify_stage_idle(self, stage: int) -> float:
        """Apply the idle-reset rule at ``stage``; returns released utilization."""
        if not self.reset_on_idle:
            return 0.0
        return self.trackers[stage].reset_on_idle()

    def withdraw(self, task_id: Hashable) -> None:
        """Remove a task's contributions everywhere (abort/shed support)."""
        self._evict(task_id)

    def next_expiry(self) -> float:
        """Earliest pending contribution expiry across stages (``inf`` if none)."""
        return min((t.next_expiry() for t in self.trackers), default=math.inf)

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------

    def resync(self, now: float, frontier: Dict[Hashable, int]) -> ResyncReport:
        """Rebuild tracker state from the ground-truth set of in-flight tasks.

        Recovery path for lost ``notify_subtask_departure`` /
        ``notify_stage_idle`` events (or any other bookkeeping
        corruption): the canonical synthetic-utilization state is a pure
        function of the admitted records and each task's execution
        frontier, so it can be reconstructed wholesale.

        For every unexpired admitted task the contribution vector is
        re-installed; stages the task has already departed (``stage <
        frontier``) are re-marked departed so the next idle instant
        releases them, per the Section-4 reset rule.  Contributions with
        no admitted record (orphans) and records past their deadline are
        dropped.

        Args:
            now: Current time (expired records are discarded first).
            frontier: Ground truth per live task: the stage index the
                task currently occupies (``num_stages`` once it has left
                the last stage).  Tasks absent from the mapping are
                treated as fully departed.

        Returns:
            A :class:`ResyncReport` summarizing the rebuild.
        """
        self.expire(now)
        expired = [
            task_id
            for task_id, record in self._admitted.items()
            if record.expiry <= now
        ]
        for task_id in expired:
            del self._admitted[task_id]
            self._locking_discard(task_id)
        live = set(self._admitted)
        orphans = sum(
            len(tracker.tracked_ids() - live) for tracker in self.trackers
        )
        for tracker in self.trackers:
            tracker.clear()
        self._expiry_heap = []
        restored = 0
        departures = 0
        for task_id, record in self._admitted.items():
            stage_frontier = frontier.get(task_id, self.num_stages)
            for j, (tracker, contribution) in enumerate(
                zip(self.trackers, record.contributions)
            ):
                tracker.add(task_id, contribution, record.expiry)
                restored += 1
                if j < stage_frontier:
                    tracker.mark_departed(task_id)
                    departures += 1
            heapq.heappush(self._expiry_heap, (record.expiry, task_id))
        return ResyncReport(
            restored=restored,
            departures_marked=departures,
            dropped_orphans=orphans,
            dropped_expired=len(expired),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _contributions(self, task: PipelineTask) -> Tuple[float, ...]:
        demand = self.demand_model.demand(task)
        if len(demand) != self.num_stages:
            raise ValueError(
                f"task {task.task_id} has {len(demand)} stages, controller has "
                f"{self.num_stages}"
            )
        contributions = []
        for c, capacity in zip(demand, self._capacities):
            if capacity == 1.0:
                contributions.append(c / task.deadline)
            elif capacity == 0.0:
                # Outage: an infinite charge can never fit, so the task
                # is rejected by _fits before anything is installed.
                contributions.append(math.inf)
            else:
                contributions.append(c / (capacity * task.deadline))
        return tuple(contributions)

    def _candidate_budget(self, task: PipelineTask) -> Optional[float]:
        """Region budget the controller would hold after admitting ``task``.

        Without locking this is the static :attr:`budget`.  With
        locking it is ``alpha (1 - sum_j beta_j)`` over the previewed
        blocking vector that *includes* the candidate's own critical
        sections (and the candidate as a blocking victim).  ``None``
        means the previewed blocking alone empties the region — the
        arrival is refused before any utilization term is examined.
        """
        if self._blocking is None:
            return self.budget
        betas = self._blocking.preview(task.task_id, task.deadline, task.resources)
        if math.fsum(betas) >= 1.0:
            return None
        return region_budget(self.alpha, betas)

    def _derive(self, task: PipelineTask) -> Tuple[Tuple[float, ...], Optional[float]]:
        """Derive (contributions, candidate budget), cached per probe.

        The cache is keyed by the task *object* and the derivation
        epoch (bumped by every blocking-state or capacity mutation), so
        a ``would_admit`` probe followed by ``request`` for the same
        task reuses the derivation instead of re-running the blocking
        preview.  Shipped demand models are pure functions of the task,
        which the reuse relies on.
        """
        probe = self._probe
        if (
            probe is not None
            and probe[0] is task
            and probe[1] == self._derivation_epoch
        ):
            return probe[2], probe[3]
        contributions = self._contributions(task)
        budget = self._candidate_budget(task)
        self._probe = (task, self._derivation_epoch, contributions, budget)
        return contributions, budget

    def _locking_track(
        self,
        task_id: Hashable,
        deadline: float,
        resources: Tuple[ResourceSpec, ...],
    ) -> None:
        """Commit a task to the blocking engine; betas/budget follow."""
        if self._blocking is None:
            return
        self.betas = self._blocking.add(task_id, deadline, resources)
        self.budget = region_budget(self.alpha, self.betas)
        self._derivation_epoch += 1

    def _locking_discard(self, task_id: Hashable) -> None:
        """Drop a task from the blocking engine; betas/budget follow.

        Removal can only relax the bound, so the refreshed budget never
        raises (``sum beta`` is monotonically non-increasing here).
        """
        if self._blocking is None or task_id not in self._blocking:
            return
        self.betas = self._blocking.remove(task_id)
        self.budget = region_budget(self.alpha, self.betas)
        self._derivation_epoch += 1

    def _fits(
        self, contributions: Tuple[float, ...], budget: Optional[float] = None
    ) -> bool:
        if budget is None:
            budget = self.budget
        value = 0.0
        for tracker, extra in zip(self.trackers, contributions):
            u = tracker.value + extra
            if approx_ge(u, 1.0):
                return False
            value += stage_delay_factor(u)
            if not approx_le(value, budget):
                return False
        return True

    def _install(
        self,
        task: PipelineTask,
        contributions: Tuple[float, ...],
        demand: Optional[Sequence[float]] = None,
    ) -> None:
        expiry = task.absolute_deadline
        for tracker, contribution in zip(self.trackers, contributions):
            tracker.add(task.task_id, contribution, expiry)
        self._admission_seq += 1
        self._admitted[task.task_id] = _Admitted(
            contributions=contributions,
            expiry=expiry,
            importance=task.importance,
            deadline=task.deadline,
            resources=task.resources,
            # Callers that already derived the demand pass it through;
            # shipped demand models are pure, so the value is identical
            # to re-deriving it here.
            demand=tuple(self.demand_model.demand(task) if demand is None else demand),
            seq=self._admission_seq,
        )
        self._locking_track(task.task_id, task.deadline, task.resources)
        heapq.heappush(self._expiry_heap, (expiry, task.task_id))

    def _evict(self, task_id: Hashable) -> Tuple[float, ...]:
        """Remove a task everywhere; returns what was actually removed.

        Contributions that already lapsed (deadline expiry or idle
        reset) come back as 0.0 so a later rollback restores exactly
        the pre-eviction state rather than resurrecting released
        utilization.
        """
        removed = tuple(tracker.remove(task_id) for tracker in self.trackers)
        self._admitted.pop(task_id, None)
        self._locking_discard(task_id)
        return removed

    def _reinstall(
        self, task_id: Hashable, record: _Admitted, removed: Tuple[float, ...]
    ) -> None:
        for tracker, contribution in zip(self.trackers, removed):
            if contribution:
                tracker.add(task_id, contribution, record.expiry)
        self._admitted[task_id] = record
        self._locking_track(task_id, record.deadline, record.resources)
        heapq.heappush(self._expiry_heap, (record.expiry, task_id))
