"""Scheduling policies: priority assignment for pipeline stages.

A *fixed-priority* policy (in the paper's aperiodic sense) assigns each
task a priority that is constant across stages and independent of its
arrival time.  Deadline-monotonic — the optimal uniprocessor
fixed-priority policy for aperiodic tasks, used throughout the paper's
evaluation — has urgency-inversion parameter ``alpha = 1``.

Priority keys sort ascending: *smaller key = higher priority*.  Keys
must be totally ordered; every policy appends the task id as the final
tie-breaker so schedules are deterministic.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from ..core.alpha import alpha_random_priority
from ..core.task import PipelineTask

__all__ = [
    "SchedulingPolicy",
    "DeadlineMonotonic",
    "EarliestDeadlineFirst",
    "FifoPolicy",
    "RandomPriority",
    "ImportanceFirst",
]

PriorityKey = Tuple[float, ...]


class SchedulingPolicy:
    """Base class mapping tasks to totally ordered priority keys."""

    #: Whether the policy is fixed-priority in the paper's sense
    #: (priority independent of arrival time and constant across stages).
    fixed_priority = True

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        """Return the task's priority key (smaller = higher priority)."""
        raise NotImplementedError

    def alpha(self, deadlines: Sequence[float]) -> float:
        """Urgency-inversion parameter for a deadline population.

        Policies that can invert urgency must override this; the
        default of 1.0 is correct only for urgency-consistent policies
        such as deadline-monotonic.
        """
        return 1.0


class DeadlineMonotonic(SchedulingPolicy):
    """Shorter relative deadline = higher priority (``alpha = 1``)."""

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        return (task.deadline, float(task.task_id))


class EarliestDeadlineFirst(SchedulingPolicy):
    """Earlier *absolute* deadline = higher priority.

    EDF is **not** a fixed-priority policy in the paper's sense: the
    priority ``A_i + D_i`` depends on the arrival time, so the feasible
    region of Section 3 does not apply to it.  It is provided as a
    simulation comparator only.
    """

    fixed_priority = False

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        return (task.absolute_deadline, float(task.task_id))


class FifoPolicy(SchedulingPolicy):
    """Earlier arrival = higher priority.

    Like EDF, FIFO priorities depend on arrival times, so it is not
    fixed-priority in the paper's sense; comparator only.
    """

    fixed_priority = False

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        return (task.arrival_time, float(task.task_id))


class RandomPriority(SchedulingPolicy):
    """Priorities drawn independently of urgency.

    The worst-case urgency-inversion parameter is
    ``alpha = D_least / D_most`` (Section 2).  The draw is a
    deterministic function of the task id and the policy seed, so the
    priority is fixed across stages and across repeated queries.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        # Deterministic per (seed, task_id): integer mixing, because
        # random.Random cannot be seeded with a tuple.
        mixed = (self._seed * 0x9E3779B97F4A7C15 + task.task_id * 0x2545F4914F6CDD1D) & (
            (1 << 64) - 1
        )
        draw = random.Random(mixed).random()
        return (draw, float(task.task_id))

    def alpha(self, deadlines: Sequence[float]) -> float:
        return alpha_random_priority(deadlines)


class ImportanceFirst(SchedulingPolicy):
    """Semantic importance first, deadline-monotonic within a class.

    Models the *suboptimal* alternative the Section-5 architecture
    argues against: encoding shedding order into scheduling priority.
    Its ``alpha`` is the worst deadline ratio across importance-ordered
    pairs; computing that requires the full population, so the
    conservative ``D_least / D_most`` is used here.
    """

    def priority_key(self, task: PipelineTask) -> PriorityKey:
        return (-float(task.importance), task.deadline, float(task.task_id))

    def alpha(self, deadlines: Sequence[float]) -> float:
        return alpha_random_priority(deadlines)
