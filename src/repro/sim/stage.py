"""A pipeline stage: preemptive fixed-priority resource with PCP locks.

Each stage models one independent resource (a CPU).  Jobs — subtask
instances — are enqueued with a priority key (smaller = higher
priority) and executed preemptively: an arriving higher-priority job
immediately preempts the running one.  Jobs may contain critical-
section *segments* guarded by PCP locks (:mod:`repro.sim.locks`);
priority inheritance is applied while a holder blocks higher-priority
work.

The stage keeps exact busy-time accounting (for real-utilization
measurements) and fires callbacks on job departure and on idle
transitions — the hooks the admission controller's bookkeeping rules
need (Section 4).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..core.numeric import ExactSum
from ..core.task import PipelineTask
from .engine import Simulator
from .locks import LockManager

__all__ = ["Segment", "Job", "Stage"]

PriorityKey = Tuple[float, ...]

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


@dataclass(frozen=True)
class Segment:
    """A contiguous piece of a subtask's execution.

    Attributes:
        duration: Execution time of the segment (>= 0).
        lock: Lock id guarding the segment (a critical section), or
            ``None`` for preemptible open code.
    """

    duration: float
    lock: Optional[Hashable] = None


class Job:
    """One subtask instance at one stage.

    Attributes:
        task: The owning pipeline task.
        stage_index: Stage this job executes on.
        base_key: Policy-assigned priority key.
        effective_key: Current key after priority inheritance.
        enqueued_at: Time the job entered the stage's ready queue.
        started_at: First time the job got the CPU (None until then).
        finished_at: Completion time (None until done).
        blocking_time: Total time spent blocked on PCP acquisitions.
        preemptions: Number of times the job was preempted.
    """

    __slots__ = (
        "task",
        "stage_index",
        "base_key",
        "effective_key",
        "segments",
        "segment_index",
        "segment_remaining",
        "state",
        "enqueued_at",
        "started_at",
        "finished_at",
        "blocking_time",
        "blocked_since",
        "preemptions",
        "_heap_version",
        "_seq",
    )

    def __init__(
        self,
        task: PipelineTask,
        stage_index: int,
        base_key: PriorityKey,
        segments: Sequence[Segment],
        seq: int,
    ) -> None:
        self.task = task
        self.stage_index = stage_index
        self.base_key = base_key
        self.effective_key = base_key
        self.segments = list(segments)
        self.segment_index = 0
        self.segment_remaining = self.segments[0].duration if self.segments else 0.0
        self.state = _READY
        self.enqueued_at = math.nan
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.blocking_time = 0.0
        self.blocked_since = math.nan
        self.preemptions = 0
        self._heap_version = 0
        self._seq = seq

    @property
    def total_duration(self) -> float:
        """Total execution demand across segments."""
        return sum(s.duration for s in self.segments)

    @property
    def current_segment(self) -> Optional[Segment]:
        """Segment the job is executing (or about to), ``None`` when done."""
        if self.segment_index >= len(self.segments):
            return None
        return self.segments[self.segment_index]

    def __repr__(self) -> str:
        return (
            f"<Job task={self.task.task_id} stage={self.stage_index} "
            f"state={self.state} key={self.effective_key}>"
        )


class Stage:
    """A preemptive fixed-priority resource executing jobs.

    Args:
        sim: The owning simulator.
        index: Stage position in the pipeline (0-based).
        name: Human-readable name, defaults to ``"stage<index>"``.

    Callbacks (all optional, set as attributes or via constructor):
        on_job_complete: ``fn(job)`` — after a job's last segment ends.
        on_idle: ``fn(stage)`` — when the stage transitions to idle
            (no ready, running, or blocked work).
    """

    def __init__(
        self,
        sim: Simulator,
        index: int,
        name: Optional[str] = None,
        on_job_complete: Optional[Callable[[Job], None]] = None,
        on_idle: Optional[Callable[["Stage"], None]] = None,
    ) -> None:
        self.sim = sim
        self.index = index
        self.name = name if name is not None else f"stage{index}"
        self.on_job_complete = on_job_complete
        self.on_idle = on_idle
        self.locks = LockManager()
        self._ready: List[Tuple[PriorityKey, int, int, Job]] = []
        self._running: Optional[Job] = None
        self._run_started = 0.0
        self._segment_event = None
        # Busy-time accounting uses the exact accumulator: utilization
        # statistics over millions of short segments must not drift, and
        # the total stays independent of segment interleaving order.
        self._busy_total = ExactSum()
        self._seq = itertools.count()
        self._jobs_completed = 0
        self._idle = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def running(self) -> Optional[Job]:
        """Currently executing job, if any."""
        return self._running

    @property
    def is_idle(self) -> bool:
        """True when no job is ready, running, or blocked here."""
        return (
            self._running is None
            and not self._any_ready()
            and not self.locks.blocked_jobs()
        )

    @property
    def jobs_completed(self) -> int:
        """Number of jobs that finished at this stage."""
        return self._jobs_completed

    def busy_time(self, now: Optional[float] = None) -> float:
        """Cumulative busy time up to ``now`` (defaults to the sim clock)."""
        t = self.sim.now if now is None else now
        total = self._busy_total.value()
        if self._running is not None:
            total += t - self._run_started
        return total

    def queue_length(self) -> int:
        """Number of ready (not running, not blocked) jobs."""
        self._prune_ready()
        return sum(
            1 for _, _, version, job in self._ready
            if job.state == _READY and version == job._heap_version
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        task: PipelineTask,
        priority_key: PriorityKey,
        duration: Optional[float] = None,
        segments: Optional[Sequence[Segment]] = None,
    ) -> Job:
        """Enqueue a subtask of ``task`` for execution.

        Args:
            task: The owning task.
            priority_key: Policy key (smaller = higher priority).
            duration: Simple single-segment execution time; mutually
                exclusive with ``segments``.
            segments: Explicit segment list for jobs with critical
                sections.

        Returns:
            The created job.

        Raises:
            ValueError: If both or neither of duration/segments given,
                or a duration is negative.
        """
        if (duration is None) == (segments is None):
            raise ValueError("provide exactly one of duration or segments")
        if segments is None:
            if duration < 0:
                raise ValueError(f"duration must be >= 0, got {duration}")
            segments = [Segment(duration)]
        else:
            segments = list(segments)
            if not segments:
                raise ValueError("segments must be non-empty")
            if any(s.duration < 0 for s in segments):
                raise ValueError("segment durations must be >= 0")
        job = Job(task, self.index, tuple(priority_key), segments, next(self._seq))
        job.enqueued_at = self.sim.now
        for segment in segments:
            if segment.lock is not None:
                self.locks.register_user(segment.lock, job.base_key)
        self._push_ready(job)
        self._reschedule()
        return job

    def abort(self, job: Job) -> None:
        """Remove a job from the stage (load shedding / task abort).

        Works in any state: a running job is stopped (its busy time so
        far still counts — the processor really was busy), a ready job
        is invalidated in place, a blocked job is removed from the lock
        wait set.  Any locks the job holds are released, waking blocked
        jobs per PCP.
        """
        if job.state == _DONE:
            return
        if job is self._running:
            self._stop_running_clock()
            if self._segment_event is not None:
                self._segment_event.cancel()
                self._segment_event = None
            self._running = None
        elif job.state == _BLOCKED:
            self.locks.unblock(job)
        # Ready jobs: state change invalidates their heap entries.
        job.state = _DONE
        job.finished_at = None
        for lock_id in list(self.locks.locks_held_by(job)):
            self._release(job, lock_id)
        self._reschedule()

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------

    def _push_ready(self, job: Job) -> None:
        job.state = _READY
        job._heap_version += 1
        heapq.heappush(
            self._ready, (job.effective_key, job._seq, job._heap_version, job)
        )

    def _prune_ready(self) -> None:
        while self._ready:
            _, _, version, job = self._ready[0]
            if job.state == _READY and version == job._heap_version:
                return
            heapq.heappop(self._ready)

    def _any_ready(self) -> bool:
        self._prune_ready()
        return bool(self._ready)

    def _peek_ready(self) -> Optional[Job]:
        self._prune_ready()
        return self._ready[0][3] if self._ready else None

    def _pop_ready(self) -> Optional[Job]:
        self._prune_ready()
        if not self._ready:
            return None
        return heapq.heappop(self._ready)[3]

    def _reschedule(self) -> None:
        """Enforce the priority order; start/preempt/idle as needed."""
        head = self._peek_ready()
        if self._running is None:
            if head is not None:
                self._start(self._pop_ready())
            else:
                self._maybe_fire_idle()
            return
        if head is not None and head.effective_key < self._running.effective_key:
            if self._preempt(self._running):
                self._start(self._pop_ready())

    def _start(self, job: Job) -> None:
        self._idle = False
        job.state = _RUNNING
        if job.started_at is None:
            job.started_at = self.sim.now
        self._running = job
        self._run_started = self.sim.now
        segment = job.current_segment
        if segment is not None and segment.lock is not None and not self._holds(job, segment.lock):
            # Entering a critical section: acquire before consuming time.
            if not self._acquire_or_block(job, segment.lock):
                return
        self._segment_event = self.sim.after(job.segment_remaining, self._segment_end, job)

    def _holds(self, job: Job, lock_id: Hashable) -> bool:
        return lock_id in self.locks.locks_held_by(job)

    def _preempt(self, job: Job) -> bool:
        """Preempt the running job; returns True if it was requeued.

        When the preemption instant coincides with the end of the
        job's current segment (its pending end event carries the same
        timestamp but a later sequence number than the arrival that
        triggered the preemption), the segment is *complete*: process
        the segment end instead of requeueing finished work, and
        return False — the completion path has already dispatched.
        """
        elapsed = self.sim.now - self._run_started
        if elapsed >= job.segment_remaining:
            if self._segment_event is not None:
                self._segment_event.cancel()
            self._segment_end(job)
            return False
        self._stop_running_clock()
        job.segment_remaining -= elapsed
        job.preemptions += 1
        if self._segment_event is not None:
            self._segment_event.cancel()
            self._segment_event = None
        self._running = None
        self._push_ready(job)
        return True

    def _stop_running_clock(self) -> None:
        self._busy_total.add(self.sim.now - self._run_started)
        self._run_started = self.sim.now

    def _segment_end(self, job: Job) -> None:
        """The running job finished its current segment."""
        assert job is self._running, "segment event for a non-running job"
        self._stop_running_clock()
        self._segment_event = None
        segment = job.segments[job.segment_index]
        if segment.lock is not None:
            self._release(job, segment.lock)
        job.segment_index += 1
        nxt = job.current_segment
        if nxt is None:
            self._finish(job)
            return
        job.segment_remaining = nxt.duration
        if nxt.lock is not None:
            if not self._acquire_or_block(job, nxt.lock):
                return
        # Keep the CPU only while still the highest priority job.
        head = self._peek_ready()
        if head is not None and head.effective_key < job.effective_key:
            if self._preempt(job):
                self._start(self._pop_ready())
        else:
            self._segment_event = self.sim.after(job.segment_remaining, self._segment_end, job)

    def _finish(self, job: Job) -> None:
        job.state = _DONE
        job.finished_at = self.sim.now
        self._running = None
        self._jobs_completed += 1
        if self.on_job_complete is not None:
            self.on_job_complete(job)
        self._reschedule()

    # ------------------------------------------------------------------
    # PCP integration
    # ------------------------------------------------------------------

    def _acquire_or_block(self, job: Job, lock_id: Hashable) -> bool:
        """Try to take ``lock_id`` for the running job.

        Returns True when acquired (the caller continues the segment);
        on failure the job is suspended, the blocker inherits its
        priority, and the next ready job is dispatched.
        """
        acquired, blocker = self.locks.acquire(job, lock_id)
        if acquired:
            return True
        job.state = _BLOCKED
        job.blocked_since = self.sim.now
        self._running = None
        if blocker is not None and job.effective_key < blocker.effective_key:
            self._boost(blocker, job.effective_key)
        self._reschedule()
        return False

    def _boost(self, job: Job, key: PriorityKey) -> None:
        """Apply priority inheritance: raise ``job`` to ``key``."""
        if not (key < job.effective_key):
            return
        job.effective_key = key
        if job.state == _READY:
            self._push_ready(job)  # re-queue at the inherited priority

    def _release(self, job: Job, lock_id: Hashable) -> None:
        """Release a critical section and wake eligible blocked jobs.

        Pure bookkeeping: woken waiters are pushed to the ready queue
        but dispatching is left to the caller (``_segment_end`` decides
        whether the releasing job keeps the CPU, ``abort`` reschedules
        itself) — rescheduling here would preempt a job whose segment
        transition is still being processed.
        """
        retry = self.locks.release(job, lock_id)
        inherited = self.locks.inherited_key_for(job)
        job.effective_key = (
            job.base_key if inherited is None or not (inherited < job.base_key) else inherited
        )
        for waiter in retry:
            if waiter.state != _BLOCKED:
                continue
            segment = waiter.current_segment
            assert segment is not None and segment.lock is not None
            acquired, blocker = self.locks.retry_acquire(waiter, segment.lock)
            if acquired:
                waiter.blocking_time += self.sim.now - waiter.blocked_since
                self._push_ready(waiter)
            elif blocker is not None and waiter.effective_key < blocker.effective_key:
                self._boost(blocker, waiter.effective_key)

    # ------------------------------------------------------------------
    # Idle bookkeeping
    # ------------------------------------------------------------------

    def _maybe_fire_idle(self) -> None:
        if self._idle:
            return
        if self.is_idle:
            self._idle = True
            if self.on_idle is not None:
                self.on_idle(self)
