"""Discrete-event simulation substrate.

Everything the evaluation needs to execute pipelines and task graphs:

- :mod:`repro.sim.engine` / :mod:`repro.sim.events` — the DES core;
- :mod:`repro.sim.stage` — preemptive fixed-priority resources;
- :mod:`repro.sim.locks` — priority-ceiling-protocol critical sections;
- :mod:`repro.sim.policies` — DM, EDF, FIFO, random, importance-first;
- :mod:`repro.sim.workload` — the Section-4 stochastic workloads;
- :mod:`repro.sim.pipeline` — pipeline + admission-control wiring;
- :mod:`repro.sim.graphrun` — DAG-structured task execution;
- :mod:`repro.sim.metrics` — reports (real utilization, miss ratios).
"""

from .engine import SimulationError, Simulator
from .events import EventHandle, EventQueue
from .graphrun import GraphPipelineSimulation, GraphTask
from .graphworkload import GraphTemplate, GraphWorkload, run_graph_simulation
from .locks import Lock, LockManager
from .metrics import (
    SimulationReport,
    StageUsage,
    TaskRecord,
    mean_confidence_interval,
)
from .pipeline import PipelineSimulation, run_pipeline_simulation
from .policies import (
    DeadlineMonotonic,
    EarliestDeadlineFirst,
    FifoPolicy,
    ImportanceFirst,
    RandomPriority,
    SchedulingPolicy,
)
from .stage import Job, Segment, Stage
from .workload import (
    PipelineWorkload,
    balanced_workload,
    imbalanced_two_stage_workload,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "EventHandle",
    "EventQueue",
    "Stage",
    "Job",
    "Segment",
    "Lock",
    "LockManager",
    "SchedulingPolicy",
    "DeadlineMonotonic",
    "EarliestDeadlineFirst",
    "FifoPolicy",
    "RandomPriority",
    "ImportanceFirst",
    "PipelineWorkload",
    "balanced_workload",
    "imbalanced_two_stage_workload",
    "PipelineSimulation",
    "run_pipeline_simulation",
    "GraphPipelineSimulation",
    "GraphTask",
    "GraphTemplate",
    "GraphWorkload",
    "run_graph_simulation",
    "SimulationReport",
    "StageUsage",
    "TaskRecord",
    "mean_confidence_interval",
]
