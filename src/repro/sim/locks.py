"""Critical sections under the Priority Ceiling Protocol (PCP).

Section 3.2 allows subtasks to block on lower-priority tasks holding
shared resources; with PCP at each node, a task blocks at most once per
stage, for at most the longest critical section of a lower-priority
task sharing a resource with it.  That bound is what the ``beta_j``
terms of Eq. 15 normalize.

The implementation follows the classic uniprocessor PCP:

- each lock has a *ceiling*: the highest priority (smallest key) of
  any job that may ever acquire it;
- a job may acquire a lock only if its priority is strictly higher
  than the ceilings of all locks currently held by *other* jobs
  (locks the job itself holds do not constrain it);
- on a failed acquisition the job blocks and the offending holder
  inherits the blocked job's priority until release.

Priority keys sort ascending (smaller = higher priority), matching
:mod:`repro.sim.policies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stage import Job

__all__ = ["Lock", "LockManager"]

PriorityKey = Tuple[float, ...]


@dataclass
class Lock:
    """A shared resource protected by PCP.

    Attributes:
        lock_id: Identifier.
        ceiling: Highest priority key (smallest tuple) among registered
            users; ``None`` until the first registration.
        holder: Job currently inside the critical section, if any.
    """

    lock_id: Hashable
    ceiling: Optional[PriorityKey] = None
    holder: Optional["Job"] = None

    def register_user(self, key: PriorityKey) -> None:
        """Raise the ceiling to cover a (potential) user with priority ``key``."""
        if self.ceiling is None or key < self.ceiling:
            self.ceiling = key


class LockManager:
    """Per-stage PCP lock table with priority inheritance.

    The manager does not run jobs itself; the owning
    :class:`~repro.sim.stage.Stage` calls :meth:`acquire` when a job
    reaches a critical-section segment and :meth:`release` when the
    segment ends, and applies the returned priority adjustments.
    """

    def __init__(self) -> None:
        self._locks: Dict[Hashable, Lock] = {}
        self._held: Dict["Job", Set[Hashable]] = {}
        self._blocked: List["Job"] = []  # jobs waiting for a failed acquisition

    # ------------------------------------------------------------------
    # Registration / queries
    # ------------------------------------------------------------------

    def lock(self, lock_id: Hashable) -> Lock:
        """Get or create the lock object for ``lock_id``."""
        if lock_id not in self._locks:
            self._locks[lock_id] = Lock(lock_id)
        return self._locks[lock_id]

    def register_user(self, lock_id: Hashable, key: PriorityKey) -> None:
        """Declare that jobs with priority ``key`` may use ``lock_id``.

        Ceilings should cover every potential user *before* execution
        starts; the stage auto-registers each job's locks when the job
        is submitted, which is sound as long as jobs are submitted no
        later than their arrival.
        """
        self.lock(lock_id).register_user(key)

    def locks_held_by(self, job: "Job") -> Set[Hashable]:
        """Lock ids currently held by ``job``."""
        return set(self._held.get(job, ()))

    def blocked_jobs(self) -> List["Job"]:
        """Jobs currently blocked on an acquisition, unordered."""
        return list(self._blocked)

    def system_ceiling(self, exclude: "Job") -> Tuple[Optional[PriorityKey], Optional["Job"]]:
        """Highest ceiling among locks held by jobs other than ``exclude``.

        Returns:
            ``(ceiling_key, holder)`` of the constraining lock, or
            ``(None, None)`` when no other job holds a lock.
        """
        best_key: Optional[PriorityKey] = None
        best_holder: Optional["Job"] = None
        for lock in self._locks.values():
            if lock.holder is None or lock.holder is exclude:
                continue
            if lock.ceiling is not None and (best_key is None or lock.ceiling < best_key):
                best_key = lock.ceiling
                best_holder = lock.holder
        return best_key, best_holder

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def acquire(self, job: "Job", lock_id: Hashable) -> Tuple[bool, Optional["Job"]]:
        """Attempt a PCP acquisition.

        Args:
            job: The requesting job (must be the stage's running job).
            lock_id: Lock to acquire.

        Returns:
            ``(True, None)`` on success.  ``(False, blocker)`` when the
            job must block; ``blocker`` is the job that should inherit
            the requester's priority (the holder of the requested lock,
            or of the system-ceiling lock).
        """
        lock = self.lock(lock_id)
        lock.register_user(job.effective_key)
        if lock.holder is job:
            raise ValueError(f"job {job!r} already holds lock {lock_id!r}")
        if lock.holder is not None:
            self._blocked.append(job)
            return False, lock.holder
        ceiling, ceiling_holder = self.system_ceiling(exclude=job)
        if ceiling is not None and not (job.effective_key < ceiling):
            self._blocked.append(job)
            return False, ceiling_holder
        lock.holder = job
        self._held.setdefault(job, set()).add(lock_id)
        return True, None

    def release(self, job: "Job", lock_id: Hashable) -> List["Job"]:
        """Release a lock and return the blocked jobs that may now retry.

        The caller (the stage) re-attempts acquisition for the returned
        jobs in priority order and restores the releaser's priority via
        :meth:`inherited_key_for`.

        Raises:
            ValueError: If ``job`` does not hold ``lock_id``.
        """
        lock = self.lock(lock_id)
        if lock.holder is not job:
            raise ValueError(f"job {job!r} does not hold lock {lock_id!r}")
        lock.holder = None
        held = self._held.get(job)
        if held:
            held.discard(lock_id)
            if not held:
                del self._held[job]
        retry = sorted(self._blocked, key=lambda j: j.effective_key)
        return retry

    def retry_acquire(self, job: "Job", lock_id: Hashable) -> Tuple[bool, Optional["Job"]]:
        """Re-attempt acquisition for a currently *blocked* job.

        On success the job is removed from the blocked set and holds
        the lock; on failure it stays blocked and the (possibly new)
        blocker is returned for priority inheritance.
        """
        lock = self.lock(lock_id)
        if lock.holder is not None:
            return False, lock.holder
        ceiling, ceiling_holder = self.system_ceiling(exclude=job)
        if ceiling is not None and not (job.effective_key < ceiling):
            return False, ceiling_holder
        self._blocked.remove(job)
        lock.holder = job
        self._held.setdefault(job, set()).add(lock_id)
        return True, None

    def unblock(self, job: "Job") -> None:
        """Remove a job from the blocked set (its retry succeeded)."""
        self._blocked.remove(job)

    def inherited_key_for(self, job: "Job") -> Optional[PriorityKey]:
        """Highest priority ``job`` must inherit from jobs it still blocks.

        A job that holds locks inherits the priority of the
        highest-priority job currently blocked (directly or via the
        system ceiling) because of those locks.  Returns ``None`` when
        no inheritance applies.
        """
        if job not in self._held:
            return None
        best: Optional[PriorityKey] = None
        for blocked in self._blocked:
            if best is None or blocked.base_key < best:
                best = blocked.base_key
        return best
