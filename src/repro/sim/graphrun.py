"""Execution of DAG-structured tasks over independent resources.

Section 3.3 generalizes the pipeline to tasks given by a directed
acyclic graph of subtasks, each allocated to a resource.  This module
simulates such systems and performs Theorem-2 admission control:

- a task's contribution to resource ``k`` is the *sum* of the costs of
  its subtasks on ``k`` divided by its end-to-end deadline (subtasks
  sharing a processor share its synthetic utilization — the paper's
  remark below Theorem 2);
- an arrival is admitted iff, with its contributions tentatively added,
  the Theorem-2 inequality holds for the arriving task's graph *and*
  for every graph shape currently in the system;
- subtasks become ready when all their predecessors complete; ready
  subtasks are scheduled preemptively by fixed priority on their
  resource.

The idle-reset rule applies per resource: a task is *departed* from a
resource once all its subtasks there have finished.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..core.dag import TaskGraph
from ..core.synthetic import StageUtilizationTracker
from .engine import Simulator
from .metrics import SimulationReport, StageUsage, TaskRecord
from .policies import DeadlineMonotonic, SchedulingPolicy
from .stage import Job, Stage

__all__ = ["GraphTask", "GraphPipelineSimulation"]

_graph_task_ids = itertools.count()


@dataclass(frozen=True)
class GraphTask:
    """An aperiodic task structured as a DAG of subtasks.

    Duck-type compatible with :class:`~repro.core.task.PipelineTask`
    for the scheduling policies (``deadline``, ``arrival_time``,
    ``importance``, ``task_id``).

    Attributes:
        task_id: Unique id.
        arrival_time: Arrival of the task (its source subtasks become
            ready immediately).
        deadline: Relative end-to-end deadline.
        graph: Subtask DAG with resource assignments.
        costs: Computation time of each subtask (keys = graph nodes).
        importance: Semantic importance.
    """

    task_id: int
    arrival_time: float
    deadline: float
    graph: TaskGraph
    costs: Mapping[Hashable, float]
    importance: int = 0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        missing = set(self.graph.resource_of) - set(self.costs)
        if missing:
            raise ValueError(f"costs missing for subtasks {sorted(map(str, missing))}")
        if any(c < 0 for c in self.costs.values()):
            raise ValueError("subtask costs must be >= 0")

    @property
    def absolute_deadline(self) -> float:
        return self.arrival_time + self.deadline

    def resource_contributions(self) -> Dict[Hashable, float]:
        """Synthetic-utilization contribution per resource.

        Subtasks allocated to the same resource *add up* — the shared
        resource has a single utilization dimension.
        """
        totals: Dict[Hashable, float] = {}
        for node, resource in self.graph.resource_of.items():
            totals[resource] = totals.get(resource, 0.0) + self.costs[node]
        return {r: c / self.deadline for r, c in totals.items()}

    @classmethod
    def create(
        cls,
        arrival_time: float,
        deadline: float,
        graph: TaskGraph,
        costs: Mapping[Hashable, float],
        importance: int = 0,
    ) -> "GraphTask":
        """Build with an auto-assigned id."""
        return cls(
            task_id=next(_graph_task_ids),
            arrival_time=arrival_time,
            deadline=deadline,
            graph=graph,
            costs=dict(costs),
            importance=importance,
        )


class _ActiveShapes:
    """Reference-counted set of distinct task-graph shapes in the system."""

    def __init__(self) -> None:
        self._shapes: Dict[int, Tuple[TaskGraph, int]] = {}

    @staticmethod
    def _key(graph: TaskGraph) -> int:
        return id(graph)

    def add(self, graph: TaskGraph) -> None:
        key = self._key(graph)
        existing = self._shapes.get(key)
        self._shapes[key] = (graph, existing[1] + 1 if existing else 1)

    def discard(self, graph: TaskGraph) -> None:
        key = self._key(graph)
        existing = self._shapes.get(key)
        if existing is None:
            return
        if existing[1] <= 1:
            del self._shapes[key]
        else:
            self._shapes[key] = (graph, existing[1] - 1)

    def graphs(self) -> List[TaskGraph]:
        return [g for g, _ in self._shapes.values()]


class GraphPipelineSimulation:
    """Simulates DAG tasks over named resources with Theorem-2 admission.

    Args:
        resources: Resource identifiers (one preemptive CPU each).
        policy: Fixed-priority policy shared by all resources.
        alpha: Urgency-inversion parameter of the policy.
        betas: Optional per-resource normalized blocking terms.
        reset_on_idle: Apply the idle-reset rule per resource.
    """

    def __init__(
        self,
        resources: Iterable[Hashable],
        policy: Optional[SchedulingPolicy] = None,
        alpha: float = 1.0,
        betas: Optional[Mapping[Hashable, float]] = None,
        reset_on_idle: bool = True,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.sim = Simulator()
        self.policy = policy if policy is not None else DeadlineMonotonic()
        self.alpha = alpha
        self.betas = dict(betas) if betas else {}
        self.reset_on_idle = reset_on_idle
        self.resource_ids: List[Hashable] = list(resources)
        if not self.resource_ids:
            raise ValueError("at least one resource is required")
        if len(set(self.resource_ids)) != len(self.resource_ids):
            raise ValueError("resource ids must be unique")
        self.stages: Dict[Hashable, Stage] = {}
        self.trackers: Dict[Hashable, StageUtilizationTracker] = {}
        for index, rid in enumerate(self.resource_ids):
            stage = Stage(
                self.sim,
                index=index,
                name=str(rid),
                on_job_complete=self._subtask_complete,
                on_idle=self._resource_idle,
            )
            self.stages[rid] = stage
            self.trackers[rid] = StageUtilizationTracker()
        self._stage_resource: Dict[int, Hashable] = {
            stage.index: rid for rid, stage in self.stages.items()
        }
        self.records: Dict[int, TaskRecord] = {}
        self._record_order: List[TaskRecord] = []
        self._shapes = _ActiveShapes()
        # Per task: remaining indegree per subtask, unfinished count per resource.
        self._pending_preds: Dict[int, Dict[Hashable, int]] = {}
        self._unfinished_on: Dict[int, Dict[Hashable, int]] = {}
        self._tasks: Dict[int, GraphTask] = {}
        self._node_of_job: Dict[int, Tuple[int, Hashable]] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def utilizations(self) -> Dict[Hashable, float]:
        """Current synthetic utilization per resource."""
        return {rid: tracker.value for rid, tracker in self.trackers.items()}

    def _expire(self) -> None:
        for tracker in self.trackers.values():
            tracker.expire_until(self.sim.now)

    def _feasible_with(self, extra: Mapping[Hashable, float], graphs: List[TaskGraph]) -> bool:
        utils = {
            rid: tracker.value + extra.get(rid, 0.0)
            for rid, tracker in self.trackers.items()
        }
        if any(u >= 1.0 for u in utils.values()):
            return False
        for graph in graphs:
            if graph.region_value(utils, self.betas) > self.alpha:
                return False
        return True

    def offer_at(self, task: GraphTask) -> None:
        """Schedule the task's arrival."""
        unknown = set(task.graph.resources()) - set(self.stages)
        if unknown:
            raise ValueError(f"task uses unknown resources {sorted(map(str, unknown))}")
        self.sim.at(task.arrival_time, self._arrive, task)

    def _arrive(self, task: GraphTask) -> None:
        record = TaskRecord(
            task_id=task.task_id,
            arrival_time=task.arrival_time,
            deadline=task.deadline,
            importance=task.importance,
        )
        self.records[task.task_id] = record
        self._record_order.append(record)
        self._expire()
        contributions = task.resource_contributions()
        graphs = self._shapes.graphs()
        if task.graph not in graphs:
            graphs.append(task.graph)
        if not self._feasible_with(contributions, graphs):
            return  # rejected
        record.admitted = True
        record.admitted_at = self.sim.now
        for rid, contribution in contributions.items():
            self.trackers[rid].add(task.task_id, contribution, task.absolute_deadline)
        self._shapes.add(task.graph)
        self._launch(task)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _launch(self, task: GraphTask) -> None:
        indegree: Dict[Hashable, int] = {n: 0 for n in task.graph.resource_of}
        for _, v in task.graph.edges:
            indegree[v] += 1
        unfinished: Dict[Hashable, int] = {}
        for node, resource in task.graph.resource_of.items():
            unfinished[resource] = unfinished.get(resource, 0) + 1
        self._pending_preds[task.task_id] = indegree
        self._unfinished_on[task.task_id] = unfinished
        self._tasks[task.task_id] = task
        for node, degree in indegree.items():
            if degree == 0:
                self._submit_node(task, node)

    def _submit_node(self, task: GraphTask, node: Hashable) -> None:
        resource = task.graph.resource_of[node]
        stage = self.stages[resource]
        key = self.policy.priority_key(task)
        job = stage.submit(task, key, duration=task.costs[node])
        # Stash the node on the job's task association via a side table.
        self._node_of_job[id(job)] = (task.task_id, node)

    def _subtask_complete(self, job: Job) -> None:
        task_id, node = self._node_of_job.pop(id(job))
        task = self._tasks[task_id]
        resource = task.graph.resource_of[node]
        unfinished = self._unfinished_on[task_id]
        unfinished[resource] -= 1
        if unfinished[resource] == 0:
            self.trackers[resource].mark_departed(task_id)
        indegree = self._pending_preds[task_id]
        done_all = all(
            count == 0 for count in unfinished.values()
        )
        for u, v in task.graph.edges:
            if u == node:
                indegree[v] -= 1
                if indegree[v] == 0:
                    self._submit_node(task, v)
        if done_all:
            record = self.records[task_id]
            record.completed_at = self.sim.now
            self._shapes.discard(task.graph)
            del self._pending_preds[task_id]
            del self._unfinished_on[task_id]
            del self._tasks[task_id]

    def _resource_idle(self, stage: Stage) -> None:
        if not self.reset_on_idle:
            return
        rid = self._stage_resource[stage.index]
        self.trackers[rid].reset_on_idle()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, horizon: float, warmup: float = 0.0) -> SimulationReport:
        """Execute until ``horizon`` and report (see pipeline analogue)."""
        if not (0.0 <= warmup <= horizon):
            raise ValueError(f"need 0 <= warmup <= horizon, got {warmup}, {horizon}")
        busy_at_warmup = {rid: 0.0 for rid in self.resource_ids}

        def snapshot() -> None:
            for rid, stage in self.stages.items():
                busy_at_warmup[rid] = stage.busy_time()

        if warmup > 0:
            self.sim.at(warmup, snapshot)
        self.sim.run(until=horizon)
        window = horizon - warmup
        usage = [
            StageUsage(
                stage=index,
                busy_time=self.stages[rid].busy_time(horizon) - busy_at_warmup[rid],
                window=window,
            )
            for index, rid in enumerate(self.resource_ids)
        ]
        return SimulationReport(
            horizon=horizon,
            warmup=warmup,
            stage_usage=usage,
            tasks=list(self._record_order),
        )
