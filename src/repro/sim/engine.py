"""Discrete-event simulation engine.

A small, fast, dependency-free DES core: a clock plus an event heap.
Components schedule callbacks with :meth:`Simulator.at` (absolute time)
or :meth:`Simulator.after` (relative delay) and may cancel them via the
returned handle.  Time never moves backwards; scheduling in the past
raises.

The engine is deliberately minimal — processes, resources, and
scheduling policies are modeled in :mod:`repro.sim.stage` and above,
keeping this layer reusable for any event-driven model.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from .events import EventHandle, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling into the past)."""


class Simulator:
    """The simulation clock and event loop.

    Attributes:
        now: Current simulation time.  Starts at 0.0.
        events_processed: Number of callbacks executed so far.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0
        self._queue = EventQueue()
        self._running = False
        self._trace_hooks: List[Callable[[float, EventHandle], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Raises:
            SimulationError: If ``time`` precedes the current clock or
                is NaN.
        """
        if math.isnan(time) or time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self.now})"
            )
        return self._queue.push(time, callback, args)

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` time units.

        Raises:
            SimulationError: If ``delay`` is negative or NaN.
        """
        if math.isnan(delay) or delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self.now + delay, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            True if an event was executed, False when the queue is empty.
        """
        handle = self._queue.pop()
        if handle is None:
            return False
        self.now = handle.time
        for hook in self._trace_hooks:
            hook(self.now, handle)
        handle.callback(*handle.args)
        self.events_processed += 1
        return True

    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Args:
            until: Stop once the next event would fire strictly after
                this time; the clock is advanced to ``until`` (when
                finite) so utilization accounting covers the full
                horizon.
            max_events: Optional hard cap on the number of callbacks to
                execute (guards against runaway models).

        Raises:
            SimulationError: If called re-entrantly from a callback.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        try:
            executed = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
            if math.isfinite(until) and until > self.now:
                self.now = until
        finally:
            self._running = False

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None``."""
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[float, EventHandle], None]) -> None:
        """Register a hook invoked before each event executes.

        Hooks receive ``(time, handle)``; used by
        :mod:`repro.sim.trace` to record event logs for debugging and
        by tests to assert orderings.
        """
        self._trace_hooks.append(hook)
