"""End-to-end pipeline simulation with utilization-based admission control.

Wires together the DES engine, preemptive stages, scheduling policy,
and the O(N) admission controller, reproducing the Section-4 setup:

- an admission controller at the first stage updates the synthetic
  utilization of *all* stages upon task arrival;
- contributions are decremented at task deadlines;
- when a stage becomes idle, contributions of departed tasks are
  removed (reset rule);
- optionally, arrivals that cannot be admitted immediately wait up to
  ``max_admission_wait`` at the controller and are retried whenever
  synthetic utilization decreases (Section 5 uses 200 ms);
- reserved (critical) tasks execute against pre-initialized reserved
  counters and are never charged dynamically.

Deadline misses are *soft*: late tasks run to completion and are
counted in the miss ratio (the regime of Figures 4–7).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from ..core.admission import DemandModel, PipelineAdmissionController
from ..core.task import PeriodicTaskSpec, PipelineTask
from .engine import Simulator
from .metrics import SimulationReport, StageUsage, TaskRecord
from .policies import DeadlineMonotonic, SchedulingPolicy
from .stage import Job, Stage
from .workload import PipelineWorkload

__all__ = ["PipelineSimulation", "run_pipeline_simulation"]


class PipelineSimulation:
    """A complete N-stage pipeline with admission control.

    Args:
        num_stages: Pipeline length.
        policy: Scheduling policy at every stage (defaults to
            deadline-monotonic, the paper's evaluation policy).
        controller: Pre-built admission controller; when ``None`` one
            is constructed from the keyword parameters below.
        alpha: Urgency-inversion parameter for the default controller.
        betas: Per-stage blocking terms for the default controller.
        reserved: Per-stage reserved synthetic utilization.
        demand_model: Exact (default) or mean-based demand.
        reset_on_idle: Enable the Section-4 idle-reset rule (disable
            only for ablations).
        max_admission_wait: How long a rejected arrival may wait at the
            admission controller before being finally rejected.
        admit_with_shedding: Admit via the Section-5 shedding path
            (important arrivals push out less important load).
        segment_builder: Optional hook ``fn(task, stage_index) ->
            Sequence[Segment] | None`` turning a subtask into explicit
            execution segments (used to inject PCP critical sections);
            ``None`` keeps the plain single-segment execution.
    """

    def __init__(
        self,
        num_stages: int,
        policy: Optional[SchedulingPolicy] = None,
        controller: Optional[PipelineAdmissionController] = None,
        alpha: float = 1.0,
        betas: Optional[Sequence[float]] = None,
        reserved: Optional[Sequence[float]] = None,
        demand_model: Optional[DemandModel] = None,
        reset_on_idle: bool = True,
        max_admission_wait: float = 0.0,
        admit_with_shedding: bool = False,
        segment_builder=None,
    ) -> None:
        if max_admission_wait < 0:
            raise ValueError(f"max_admission_wait must be >= 0, got {max_admission_wait}")
        self.sim = Simulator()
        self.policy = policy if policy is not None else DeadlineMonotonic()
        if controller is None:
            controller = PipelineAdmissionController(
                num_stages,
                alpha=alpha,
                betas=betas,
                reserved=reserved,
                demand_model=demand_model,
                reset_on_idle=reset_on_idle,
            )
        if controller.num_stages != num_stages:
            raise ValueError(
                f"controller has {controller.num_stages} stages, pipeline has {num_stages}"
            )
        self.controller = controller
        self.max_admission_wait = max_admission_wait
        self.admit_with_shedding = admit_with_shedding
        self.segment_builder = segment_builder
        self.stages: List[Stage] = [
            Stage(
                self.sim,
                index=j,
                on_job_complete=self._job_complete,
                on_idle=self._stage_idle,
            )
            for j in range(num_stages)
        ]
        self.records: Dict[int, TaskRecord] = {}
        self._record_order: List[TaskRecord] = []
        self._live_jobs: Dict[int, Job] = {}
        self._pending: Deque[PipelineTask] = deque()
        self._pending_timeout: Dict[int, float] = {}
        self._expiry_retry_event = None

    # ------------------------------------------------------------------
    # Offering work
    # ------------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def offer_at(self, task: PipelineTask) -> None:
        """Schedule the task's arrival at its ``arrival_time``."""
        self.sim.at(task.arrival_time, self._arrive, task)

    def offer_stream(self, tasks: Iterable[PipelineTask]) -> int:
        """Schedule a whole arrival stream; returns the number offered."""
        count = 0
        for task in tasks:
            self.offer_at(task)
            count += 1
        return count

    def submit_reserved(self, spec: PeriodicTaskSpec, until: float) -> int:
        """Schedule a critical stream executing against reserved capacity.

        Reserved tasks bypass the dynamic admission test — their
        synthetic utilization is the reserved baseline the controller's
        counters were initialized with (Section 5).  They still compete
        for the processors under the scheduling policy and are tracked
        in the report.

        Returns:
            The number of invocations scheduled before ``until``.
        """
        count = 0
        for task in spec.invocations(until):
            self.sim.at(task.arrival_time, self._arrive_reserved, task)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Arrival handling
    # ------------------------------------------------------------------

    def _record(self, task: PipelineTask) -> TaskRecord:
        record = TaskRecord(
            task_id=task.task_id,
            arrival_time=task.arrival_time,
            deadline=task.deadline,
            importance=task.importance,
            stream_id=task.stream_id,
        )
        self.records[task.task_id] = record
        self._record_order.append(record)
        return record

    def _arrive(self, task: PipelineTask) -> None:
        record = self._record(task)
        # Strict FIFO: while earlier arrivals wait for admission, a
        # newcomer may not overtake them even if it would fit.
        if not self._pending and self._try_admit(task, record):
            return
        if self.max_admission_wait > 0:
            self._pending.append(task)
            self._pending_timeout[task.task_id] = self.sim.now + self.max_admission_wait
            self.sim.after(self.max_admission_wait, self._pending_timed_out, task.task_id)
            self._arm_expiry_retry()
        # else: finally rejected; record.admitted stays False

    def _arrive_reserved(self, task: PipelineTask) -> None:
        record = self._record(task)
        record.admitted = True
        record.admitted_at = self.sim.now
        self._start_task(task)

    def _try_admit(self, task: PipelineTask, record: TaskRecord) -> bool:
        if self.admit_with_shedding:
            decision = self.controller.request_with_shedding(task, self.sim.now)
            for victim_id in decision.shed:
                self._abort_task(victim_id)
        else:
            decision = self.controller.request(task, self.sim.now)
        if not decision.admitted:
            return False
        record.admitted = True
        record.admitted_at = self.sim.now
        self._start_task(task)
        return True

    def _pending_timed_out(self, task_id: int) -> None:
        """Final rejection of a task whose admission wait expired."""
        if task_id not in self._pending_timeout:
            return
        del self._pending_timeout[task_id]
        # Lazily removed from the deque during retries.

    def _retry_pending(self) -> None:
        """Re-run the admission test for waiting arrivals, FIFO order.

        The queue has head-of-line semantics: retries stop at the first
        arrival that still does not fit, so each retry pass is O(1) per
        failed admission regardless of queue depth.
        """
        while self._pending:
            task = self._pending[0]
            timeout_at = self._pending_timeout.get(task.task_id)
            if timeout_at is None or timeout_at < self.sim.now:
                self._pending.popleft()
                self._pending_timeout.pop(task.task_id, None)
                continue  # timed out: stays rejected
            record = self.records[task.task_id]
            if self._try_admit(task, record):
                self._pending.popleft()
                del self._pending_timeout[task.task_id]
            else:
                break
        self._arm_expiry_retry()

    def _arm_expiry_retry(self) -> None:
        """Schedule a retry at the next contribution-expiry instant.

        Idle resets trigger retries via the stage-idle hook; deadline
        expirations are only observed lazily, so when arrivals are
        waiting we schedule an explicit wake-up at the next expiry.
        """
        if self._expiry_retry_event is not None:
            self._expiry_retry_event.cancel()
            self._expiry_retry_event = None
        if not self._pending:
            return
        next_expiry = self.controller.next_expiry()
        if next_expiry <= self.sim.now:
            next_expiry = self.sim.now
        if math.isinf(next_expiry):
            return
        self._expiry_retry_event = self.sim.at(next_expiry, self._expiry_retry)

    def _expiry_retry(self) -> None:
        self._expiry_retry_event = None
        self.controller.expire(self.sim.now)
        self._retry_pending()

    # ------------------------------------------------------------------
    # Ground truth (for auditing / state resync)
    # ------------------------------------------------------------------

    def frontier(self) -> Dict[int, int]:
        """Ground-truth execution frontier of every admitted, live task.

        Maps each task id to the stage index the task currently
        occupies; tasks that already left the last stage map to
        ``num_stages``.  Shed and rejected tasks are excluded.  This is
        the reference state :class:`~repro.core.audit.ControllerAuditor`
        and :meth:`~repro.core.admission.PipelineAdmissionController.resync`
        compare the controller's bookkeeping against.
        """
        result: Dict[int, int] = {}
        for record in self._record_order:
            if not record.admitted or record.shed:
                continue
            job = self._live_jobs.get(record.task_id)
            if job is not None:
                result[record.task_id] = job.stage_index
            elif record.completed_at is not None:
                result[record.task_id] = self.num_stages
        return result

    def idle_stages(self) -> List[int]:
        """Indices of stages with no ready, running, or blocked work."""
        return [j for j, stage in enumerate(self.stages) if stage.is_idle]

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------

    def _start_task(self, task: PipelineTask) -> None:
        self._submit_subtask(task, stage_index=0)

    def _submit_subtask(self, task: PipelineTask, stage_index: int) -> None:
        key = self.policy.priority_key(task)
        segments = (
            self.segment_builder(task, stage_index)
            if self.segment_builder is not None
            else None
        )
        if segments is None:
            job = self.stages[stage_index].submit(
                task, key, duration=task.computation_times[stage_index]
            )
        else:
            job = self.stages[stage_index].submit(task, key, segments=segments)
        self._live_jobs[task.task_id] = job

    def _job_complete(self, job: Job) -> None:
        task = job.task
        stage_index = job.stage_index
        record = self.records.get(task.task_id)
        if record is not None and record.shed:
            return  # shed while in flight; drop silently
        self.controller.notify_subtask_departure(task.task_id, stage_index)
        if stage_index + 1 < self.num_stages:
            self._submit_subtask(task, stage_index + 1)
            return
        self._live_jobs.pop(task.task_id, None)
        if record is not None:
            record.completed_at = self.sim.now

    def _stage_idle(self, stage: Stage) -> None:
        released = self.controller.notify_stage_idle(stage.index)
        if released or self._pending:
            self._retry_pending()

    def _abort_task(self, task_id: int) -> None:
        """Remove a shed task from the execution substrate."""
        job = self._live_jobs.pop(task_id, None)
        if job is not None:
            self.stages[job.stage_index].abort(job)
        record = self.records.get(task_id)
        if record is not None:
            record.shed = True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, horizon: float, warmup: float = 0.0) -> SimulationReport:
        """Execute until ``horizon`` and build the report.

        Args:
            horizon: Simulation end time.
            warmup: Busy-time measurements cover ``[warmup, horizon]``;
                tasks arriving during warmup still count in accept and
                miss statistics (their transient effect on utilization
                is what warmup excludes).

        Raises:
            ValueError: If ``warmup`` is negative or exceeds the horizon.
        """
        if not (0.0 <= warmup <= horizon):
            raise ValueError(f"need 0 <= warmup <= horizon, got {warmup}, {horizon}")
        busy_at_warmup = [0.0] * self.num_stages

        def snapshot() -> None:
            for j, stage in enumerate(self.stages):
                busy_at_warmup[j] = stage.busy_time()

        if warmup > 0:
            self.sim.at(warmup, snapshot)
        self.sim.run(until=horizon)
        window = horizon - warmup
        usage = [
            StageUsage(
                stage=j,
                busy_time=stage.busy_time(horizon) - busy_at_warmup[j],
                window=window,
            )
            for j, stage in enumerate(self.stages)
        ]
        return SimulationReport(
            horizon=horizon,
            warmup=warmup,
            stage_usage=usage,
            tasks=list(self._record_order),
        )


def run_pipeline_simulation(
    workload: PipelineWorkload,
    horizon: float,
    seed: int = 0,
    warmup_fraction: float = 0.05,
    policy: Optional[SchedulingPolicy] = None,
    demand_model: Optional[DemandModel] = None,
    reset_on_idle: bool = True,
    max_admission_wait: float = 0.0,
    alpha: float = 1.0,
    betas: Optional[Sequence[float]] = None,
) -> SimulationReport:
    """Generate a workload, simulate it, and report (one experiment point).

    Args:
        workload: The stochastic workload description.
        horizon: Simulated time span.
        seed: RNG seed (fixes the exact arrival sequence).
        warmup_fraction: Fraction of the horizon excluded from
            utilization measurement.
        policy: Scheduling policy (deadline-monotonic by default).
        demand_model: Admission demand model (exact by default).
        reset_on_idle: Idle-reset rule toggle (ablation knob).
        max_admission_wait: Admission-queue wait budget.
        alpha: Policy urgency-inversion parameter for the region test.
        betas: Optional per-stage blocking terms.

    Returns:
        The simulation report.
    """
    if not (0.0 <= warmup_fraction < 1.0):
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    sim = PipelineSimulation(
        num_stages=workload.num_stages,
        policy=policy,
        demand_model=demand_model,
        reset_on_idle=reset_on_idle,
        max_admission_wait=max_admission_wait,
        alpha=alpha,
        betas=betas,
    )
    rng = random.Random(seed)
    sim.offer_stream(workload.tasks(horizon, rng))
    return sim.run(horizon, warmup=horizon * warmup_fraction)
