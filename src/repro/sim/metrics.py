"""Measurement collection for pipeline simulations.

The evaluation reports *real* utilization (fraction of time a stage's
processor is busy — distinct from the synthetic utilization used by the
admission test), task accept/reject counts, deadline-miss ratios among
admitted tasks, and end-to-end response times.  Warmup trimming and
simple batch-mean confidence intervals are provided so experiment
sweeps can report stable numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.numeric import approx_le

__all__ = [
    "TaskRecord",
    "StageUsage",
    "SimulationReport",
    "StreamSummary",
    "mean_confidence_interval",
]


@dataclass
class TaskRecord:
    """Per-task outcome.

    Attributes:
        task_id: Task identifier.
        arrival_time: Arrival at the first stage.
        deadline: Relative end-to-end deadline.
        admitted: Whether admission control accepted the task.
        admitted_at: When it was admitted (>= arrival when it waited in
            the admission queue), or None.
        completed_at: Departure from the last stage, or None.
        shed: True if the task was admitted but later shed.
        importance: Semantic importance.
        stream_id: Periodic stream id, if any.
    """

    task_id: int
    arrival_time: float
    deadline: float
    admitted: bool = False
    admitted_at: Optional[float] = None
    completed_at: Optional[float] = None
    shed: bool = False
    importance: int = 0
    stream_id: Optional[int] = None

    @property
    def absolute_deadline(self) -> float:
        return self.arrival_time + self.deadline

    @property
    def missed(self) -> bool:
        """True when the task completed after its absolute deadline.

        Incomplete tasks are judged by the caller against the horizon;
        see :meth:`SimulationReport.miss_ratio`.
        """
        return self.completed_at is not None and not approx_le(
            self.completed_at, self.absolute_deadline
        )

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end response time (arrival to final departure)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time


@dataclass(frozen=True)
class StageUsage:
    """Busy-time snapshot of one stage over a measurement window."""

    stage: int
    busy_time: float
    window: float

    @property
    def utilization(self) -> float:
        """Real utilization: busy fraction of the window."""
        if self.window <= 0:
            return 0.0
        return self.busy_time / self.window


@dataclass
class SimulationReport:
    """Aggregated results of one simulation run.

    Attributes:
        horizon: Simulated time span.
        warmup: Initial span excluded from utilization measurements.
        stage_usage: Per-stage busy-time over ``[warmup, horizon]``.
        tasks: Per-task records (generation order).
    """

    horizon: float
    warmup: float
    stage_usage: List[StageUsage] = field(default_factory=list)
    tasks: List[TaskRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------

    @property
    def generated(self) -> int:
        """Number of tasks offered to the system."""
        return len(self.tasks)

    @property
    def admitted(self) -> int:
        """Number of tasks accepted by admission control."""
        return sum(1 for t in self.tasks if t.admitted)

    @property
    def rejected(self) -> int:
        """Number of tasks rejected (including admission-wait timeouts)."""
        return sum(1 for t in self.tasks if not t.admitted)

    @property
    def completed(self) -> int:
        """Admitted tasks that left the last stage within the horizon."""
        return sum(1 for t in self.tasks if t.completed_at is not None)

    @property
    def shed_count(self) -> int:
        """Admitted tasks later removed by load shedding."""
        return sum(1 for t in self.tasks if t.shed)

    # ------------------------------------------------------------------
    # Ratios
    # ------------------------------------------------------------------

    @property
    def accept_ratio(self) -> float:
        """Fraction of offered tasks that were admitted."""
        return self.admitted / self.generated if self.generated else 0.0

    def miss_ratio(self, settled_before: Optional[float] = None) -> float:
        """Deadline-miss ratio among admitted, non-shed tasks.

        A task counts as missed when it completed after its absolute
        deadline, or when it never completed although its deadline
        fell inside the horizon.  Tasks whose deadline lies beyond
        ``settled_before`` (default: the horizon) are excluded — their
        outcome is right-censored.

        Args:
            settled_before: Only judge tasks with absolute deadline at
                or before this time.
        """
        cutoff = self.horizon if settled_before is None else settled_before
        judged = 0
        missed = 0
        for t in self.tasks:
            if not t.admitted or t.shed:
                continue
            if not approx_le(t.absolute_deadline, cutoff):
                continue
            judged += 1
            if t.missed or t.completed_at is None:
                missed += 1
        return missed / judged if judged else 0.0

    # ------------------------------------------------------------------
    # Utilization
    # ------------------------------------------------------------------

    def utilization(self, stage: int) -> float:
        """Real utilization of one stage over the measurement window."""
        return self.stage_usage[stage].utilization

    def utilizations(self) -> Tuple[float, ...]:
        """Real utilization of every stage."""
        return tuple(u.utilization for u in self.stage_usage)

    def average_utilization(self) -> float:
        """Mean real utilization across stages (Fig. 4/5 y-axis)."""
        if not self.stage_usage:
            return 0.0
        return sum(self.utilizations()) / len(self.stage_usage)

    def bottleneck_utilization(self) -> float:
        """Highest per-stage real utilization (Fig. 6 y-axis)."""
        return max(self.utilizations(), default=0.0)

    # ------------------------------------------------------------------
    # Response times
    # ------------------------------------------------------------------

    def response_times(self) -> List[float]:
        """End-to-end response times of completed tasks."""
        return [t.response_time for t in self.tasks if t.response_time is not None]

    def mean_response_time(self) -> float:
        """Average end-to-end response time (0.0 when nothing completed)."""
        times = self.response_times()
        return sum(times) / len(times) if times else 0.0

    def response_time_percentile(self, q: float) -> float:
        """Response-time percentile (nearest-rank) among completed tasks.

        Args:
            q: Percentile in ``[0, 100]`` (e.g. 99.0 for the tail).

        Returns:
            0.0 when nothing completed.

        Raises:
            ValueError: If ``q`` is outside ``[0, 100]``.
        """
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        times = sorted(self.response_times())
        if not times:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(times)))
        return times[rank - 1]

    def per_stream_summary(self) -> Dict[Optional[int], "StreamSummary"]:
        """Aggregate outcomes per periodic stream.

        Pure aperiodic tasks (``stream_id is None``) are grouped under
        the ``None`` key.
        """
        groups: Dict[Optional[int], List[TaskRecord]] = {}
        for record in self.tasks:
            groups.setdefault(record.stream_id, []).append(record)
        summaries: Dict[Optional[int], StreamSummary] = {}
        for stream_id, records in groups.items():
            admitted = [r for r in records if r.admitted]
            responses = [r.response_time for r in admitted if r.response_time is not None]
            missed = sum(
                1
                for r in admitted
                if not r.shed
                and approx_le(r.absolute_deadline, self.horizon)
                and (r.missed or r.completed_at is None)
            )
            summaries[stream_id] = StreamSummary(
                stream_id=stream_id,
                offered=len(records),
                admitted=len(admitted),
                missed=missed,
                worst_response=max(responses) if responses else 0.0,
            )
        return summaries


@dataclass(frozen=True)
class StreamSummary:
    """Per-stream aggregate outcome.

    Attributes:
        stream_id: Stream identifier (``None`` = pure aperiodics).
        offered: Invocations offered.
        admitted: Invocations admitted.
        missed: Deadline misses among admitted, settled invocations.
        worst_response: Largest end-to-end response time observed.
    """

    stream_id: Optional[int]
    offered: int
    admitted: int
    missed: int
    worst_response: float

    @property
    def accept_ratio(self) -> float:
        return self.admitted / self.offered if self.offered else 0.0


def mean_confidence_interval(
    samples: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Mean and normal-approximation half-width for replication sets.

    Args:
        samples: Independent replication results (>= 1 value).
        z: Normal quantile (1.96 for ~95%).

    Returns:
        ``(mean, half_width)``; half-width is 0.0 for fewer than two
        samples.

    Raises:
        ValueError: If ``samples`` is empty.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("at least one sample is required")
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return mean, z * math.sqrt(var / n)
