"""Stochastic workloads of DAG-structured tasks (Section 3.3 regime).

Mirrors :mod:`repro.sim.workload` for the task-graph case: Poisson
arrivals, exponential per-subtask computation times, uniform end-to-end
deadlines — with the task *shape* drawn from a weighted set of
template graphs (systems typically run a few dataflow topologies, e.g.
the TSCE sensor-processing flows with "possible branching and
rejoining").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Mapping, Optional, Tuple

from ..core.dag import TaskGraph
from .graphrun import GraphPipelineSimulation, GraphTask
from .metrics import SimulationReport
from .policies import SchedulingPolicy

__all__ = ["GraphTemplate", "GraphWorkload", "run_graph_simulation"]


@dataclass(frozen=True)
class GraphTemplate:
    """One task topology with per-subtask mean demands.

    Attributes:
        name: Template name (for reporting).
        graph: The subtask DAG with resource assignments.
        mean_costs: Mean exponential computation time per subtask.
        weight: Relative arrival share of this shape.
    """

    name: str
    graph: TaskGraph
    mean_costs: Mapping[Hashable, float]
    weight: float = 1.0

    def __post_init__(self) -> None:
        missing = set(self.graph.resource_of) - set(self.mean_costs)
        if missing:
            raise ValueError(
                f"template {self.name!r}: mean costs missing for "
                f"{sorted(map(str, missing))}"
            )
        if any(c < 0 for c in self.mean_costs.values()):
            raise ValueError(f"template {self.name!r}: mean costs must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"template {self.name!r}: weight must be > 0")

    @property
    def mean_total_cost(self) -> float:
        """Mean summed demand of one task of this shape."""
        return sum(self.mean_costs.values())


@dataclass(frozen=True)
class GraphWorkload:
    """A Poisson mixture of DAG task templates.

    Attributes:
        templates: The shape set (non-empty).
        arrival_rate: Total Poisson arrival rate.
        deadline_range: Uniform end-to-end deadline range ``(lo, hi)``.
    """

    templates: Tuple[GraphTemplate, ...]
    arrival_rate: float
    deadline_range: Tuple[float, float]

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("at least one template is required")
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {self.arrival_rate}")
        lo, hi = self.deadline_range
        if not (0 < lo <= hi):
            raise ValueError(
                f"deadline range must satisfy 0 < lo <= hi, got {self.deadline_range}"
            )

    def resources(self) -> List[Hashable]:
        """Union of resources across templates, first-appearance order."""
        seen: List[Hashable] = []
        for template in self.templates:
            for rid in template.graph.resources():
                if rid not in seen:
                    seen.append(rid)
        return seen

    def tasks(self, horizon: float, rng: random.Random) -> Iterator[GraphTask]:
        """Generate the arrival stream over ``[0, horizon)``."""
        weights = [t.weight for t in self.templates]
        t = rng.expovariate(self.arrival_rate)
        lo, hi = self.deadline_range
        while t < horizon:
            template = rng.choices(self.templates, weights=weights, k=1)[0]
            costs = {
                node: (rng.expovariate(1.0 / mean) if mean > 0 else 0.0)
                for node, mean in template.mean_costs.items()
            }
            yield GraphTask.create(
                arrival_time=t,
                deadline=rng.uniform(lo, hi),
                graph=template.graph,
                costs=costs,
            )
            t += rng.expovariate(self.arrival_rate)


def run_graph_simulation(
    workload: GraphWorkload,
    horizon: float,
    seed: int = 0,
    warmup_fraction: float = 0.05,
    policy: Optional[SchedulingPolicy] = None,
    alpha: float = 1.0,
    betas: Optional[Mapping[Hashable, float]] = None,
    reset_on_idle: bool = True,
) -> SimulationReport:
    """Generate, simulate, and report one DAG-workload experiment point.

    Args:
        workload: The stochastic DAG workload.
        horizon: Simulated time span.
        seed: RNG seed (fixes the exact task sequence).
        warmup_fraction: Fraction of the horizon excluded from
            utilization measurement.
        policy: Scheduling policy (deadline-monotonic by default).
        alpha: Policy urgency-inversion parameter.
        betas: Optional per-resource blocking terms.
        reset_on_idle: Idle-reset rule toggle.

    Returns:
        The simulation report.
    """
    if not (0.0 <= warmup_fraction < 1.0):
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    sim = GraphPipelineSimulation(
        resources=workload.resources(),
        policy=policy,
        alpha=alpha,
        betas=betas,
        reset_on_idle=reset_on_idle,
    )
    rng = random.Random(seed)
    for task in workload.tasks(horizon, rng):
        sim.offer_at(task)
    return sim.run(horizon, warmup=horizon * warmup_fraction)
