"""Workload generation for the evaluation experiments (Section 4).

The paper's simulation setup: independent tasks with exponentially
distributed per-stage computation times (independent across stages),
end-to-end deadlines chosen uniformly from a range that grows linearly
with the number of stages, and Poisson arrivals.  The knobs that the
four experiments turn:

- *input load* (Fig. 4): arrival rate as a fraction of stage capacity,
  ``load = lambda * mean_stage_cost``;
- *pipeline length* (Fig. 4): number of stages, deadlines scaled with it;
- *task resolution* (Fig. 5/7): average end-to-end deadline over
  average total computation time;
- *load imbalance* (Fig. 6): ratio of mean computation time across
  stages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..core.task import PipelineTask, make_task

__all__ = [
    "PipelineWorkload",
    "balanced_workload",
    "imbalanced_two_stage_workload",
]


@dataclass(frozen=True)
class PipelineWorkload:
    """A stochastic aperiodic pipeline workload.

    Attributes:
        mean_stage_costs: Mean exponential computation time per stage;
            the tuple length is the pipeline length.
        arrival_rate: Poisson arrival rate (tasks per time unit).
        deadline_range: ``(lo, hi)`` of the uniform end-to-end deadline
            distribution.
        importance: Semantic importance stamped on generated tasks.
    """

    mean_stage_costs: Tuple[float, ...]
    arrival_rate: float
    deadline_range: Tuple[float, float]
    importance: int = 0

    def __post_init__(self) -> None:
        if not self.mean_stage_costs:
            raise ValueError("at least one stage is required")
        if any(c <= 0 for c in self.mean_stage_costs):
            raise ValueError("mean stage costs must be > 0")
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {self.arrival_rate}")
        lo, hi = self.deadline_range
        if not (0 < lo <= hi):
            raise ValueError(f"deadline range must satisfy 0 < lo <= hi, got {self.deadline_range}")

    @property
    def num_stages(self) -> int:
        """Pipeline length."""
        return len(self.mean_stage_costs)

    @property
    def mean_deadline(self) -> float:
        """Average end-to-end deadline."""
        lo, hi = self.deadline_range
        return (lo + hi) / 2.0

    @property
    def mean_total_cost(self) -> float:
        """Average total computation time across all stages."""
        return sum(self.mean_stage_costs)

    @property
    def task_resolution(self) -> float:
        """Average deadline over average total computation (Section 4.2)."""
        return self.mean_deadline / self.mean_total_cost

    def offered_load(self, stage: int) -> float:
        """Offered load of one stage: ``lambda * mean_cost_j``."""
        return self.arrival_rate * self.mean_stage_costs[stage]

    @property
    def bottleneck_load(self) -> float:
        """Largest per-stage offered load."""
        return self.arrival_rate * max(self.mean_stage_costs)

    def tasks(self, horizon: float, rng: random.Random) -> Iterator[PipelineTask]:
        """Generate the Poisson arrival stream over ``[0, horizon)``.

        Args:
            horizon: Generation stops at this time.
            rng: Seeded random source; a fixed seed reproduces the
                exact task sequence.

        Yields:
            Tasks in arrival order.
        """
        lo, hi = self.deadline_range
        t = rng.expovariate(self.arrival_rate)
        while t < horizon:
            costs = [rng.expovariate(1.0 / mean) for mean in self.mean_stage_costs]
            deadline = rng.uniform(lo, hi)
            yield make_task(
                arrival_time=t,
                deadline=deadline,
                computation_times=costs,
                importance=self.importance,
            )
            t += rng.expovariate(self.arrival_rate)


def balanced_workload(
    num_stages: int,
    load: float,
    mean_stage_cost: float = 1.0,
    resolution: float = 100.0,
    deadline_spread: float = 0.5,
) -> PipelineWorkload:
    """Workload matching the Fig. 4/5/7 setup.

    All stages draw computation times from the same exponential
    distribution, keeping the average stage load equal.  The average
    end-to-end deadline is ``resolution * num_stages * mean_stage_cost``
    — the deadline range grows linearly with the number of stages, and
    the average total computation stays at ``1/resolution`` of the
    average deadline (the paper's Fig. 4 uses resolution ~ 100).

    Args:
        num_stages: Pipeline length.
        load: Input load as a fraction of stage capacity (1.0 = 100%);
            the Fig. 4 sweep spans 0.6 .. 2.0.
        mean_stage_cost: Mean per-stage computation time (time scale).
        resolution: Task resolution (avg deadline / avg total cost).
        deadline_spread: Deadlines are uniform in
            ``mean_deadline * (1 -/+ spread)``.

    Raises:
        ValueError: On out-of-range parameters.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if load <= 0:
        raise ValueError(f"load must be > 0, got {load}")
    if resolution <= 0:
        raise ValueError(f"resolution must be > 0, got {resolution}")
    if not (0 <= deadline_spread < 1):
        raise ValueError(f"deadline_spread must be in [0, 1), got {deadline_spread}")
    mean_deadline = resolution * num_stages * mean_stage_cost
    lo = mean_deadline * (1 - deadline_spread)
    hi = mean_deadline * (1 + deadline_spread)
    return PipelineWorkload(
        mean_stage_costs=(mean_stage_cost,) * num_stages,
        arrival_rate=load / mean_stage_cost,
        deadline_range=(lo, hi),
    )


def imbalanced_two_stage_workload(
    cost_ratio: float,
    bottleneck_load: float,
    total_mean_cost: float = 2.0,
    resolution: float = 100.0,
    deadline_spread: float = 0.5,
) -> PipelineWorkload:
    """Two-stage workload with a load imbalance knob (Fig. 6 setup).

    The two mean stage costs are ``(c1, c2)`` with ``c1 / c2 =
    cost_ratio`` and ``c1 + c2 = total_mean_cost``; the arrival rate is
    set so the *bottleneck* stage sees the requested offered load.  The
    balanced midpoint is ``cost_ratio = 1``.

    Args:
        cost_ratio: Mean-computation-time ratio across the two stages
            (> 0); values and their reciprocals are symmetric cases.
        bottleneck_load: Offered load at the slower stage (1.0 = 100%).
        total_mean_cost: ``c1 + c2``; fixes the time scale.
        resolution: Average deadline over average total computation.
        deadline_spread: Uniform deadline half-width (relative).
    """
    if cost_ratio <= 0:
        raise ValueError(f"cost_ratio must be > 0, got {cost_ratio}")
    if bottleneck_load <= 0:
        raise ValueError(f"bottleneck_load must be > 0, got {bottleneck_load}")
    c2 = total_mean_cost / (1.0 + cost_ratio)
    c1 = total_mean_cost - c2
    bottleneck_cost = max(c1, c2)
    arrival_rate = bottleneck_load / bottleneck_cost
    mean_deadline = resolution * total_mean_cost
    lo = mean_deadline * (1 - deadline_spread)
    hi = mean_deadline * (1 + deadline_spread)
    return PipelineWorkload(
        mean_stage_costs=(c1, c2),
        arrival_rate=arrival_rate,
        deadline_range=(lo, hi),
    )
