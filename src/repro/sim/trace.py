"""Event tracing for debugging and test assertions.

Attaches to :meth:`repro.sim.engine.Simulator.add_trace_hook` and
records a bounded log of executed events.  Used by tests to assert
orderings and by users to debug unexpected schedules; the recorder is
deliberately simple (no I/O) so it adds negligible overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from .engine import Simulator
from .events import EventHandle

__all__ = ["TraceEntry", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEntry:
    """One executed event.

    Attributes:
        time: Execution time.
        callback_name: ``__name__`` of the callback (or its repr).
        args_repr: Repr of the callback arguments, truncated.
    """

    time: float
    callback_name: str
    args_repr: str


class TraceRecorder:
    """Bounded in-memory recorder of executed simulator events.

    Args:
        sim: Simulator to attach to.
        capacity: Maximum retained entries (oldest evicted first).
        predicate: Optional filter ``fn(time, handle) -> bool``; only
            matching events are recorded.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 10_000,
        predicate: Optional[Callable[[float, EventHandle], bool]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self._predicate = predicate
        sim.add_trace_hook(self._record)

    def _record(self, time: float, handle: EventHandle) -> None:
        if self._predicate is not None and not self._predicate(time, handle):
            return
        name = getattr(handle.callback, "__name__", repr(handle.callback))
        args = repr(handle.args)
        if len(args) > 120:
            args = args[:117] + "..."
        self.entries.append(TraceEntry(time=time, callback_name=name, args_repr=args))

    def times(self) -> List[float]:
        """Execution times of the recorded events, in order."""
        return [e.time for e in self.entries]

    def names(self) -> List[str]:
        """Callback names of the recorded events, in order."""
        return [e.callback_name for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
