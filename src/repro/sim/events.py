"""Event primitives for the discrete-event simulation engine.

The engine executes callbacks in timestamp order; ties are broken by
scheduling order (FIFO among simultaneous events), which keeps runs
deterministic for a fixed seed.  Events are cancellable: cancellation
is O(1) (a flag) and the heap entry is discarded lazily when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventHandle", "EventQueue"]


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Attributes:
        time: Absolute simulation time at which the callback fires.
        callback: Zero-or-more-argument callable invoked at ``time``.
        args: Positional arguments passed to the callback.
        cancelled: True once :meth:`cancel` has been called.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        # heapq compares handles when (time, seq) tie — seq is unique,
        # so this ordering is total.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle t={self.time:.6g} {name} {state}>"


class EventQueue:
    """A min-heap of :class:`EventHandle` ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._seq = 0

    def push(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]) -> EventHandle:
        """Schedule ``callback(*args)`` at ``time`` and return its handle."""
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def pop(self) -> Optional[EventHandle]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                return handle
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        # Includes cancelled-but-unpopped entries; used only as a
        # rough size signal.
        return len(self._heap)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
