"""Online priority-ceiling blocking bounds ``B_ij`` / ``beta_j`` (Eq. 15).

Under the priority-ceiling protocol a job of task ``T_i`` is blocked at
most once per stage, and only for the duration of a single critical
section of some *lower-priority* task on a resource whose priority
ceiling is at least ``T_i``'s priority (Sha, Rajkumar & Lehoczky; the
per-task bound schedcat's ``locking/bounds.py`` computes).  Stage ``j``
therefore charges

    B_ij = max { L_kr : prio(T_k) < prio(T_i),
                 ceiling(r, j) >= prio(T_i) }

and the region's right-hand side shrinks by the normalized vector

    beta_j = max_i B_ij / D_i        (Eq. 15).

:class:`PCPBlockingState` maintains these quantities *online* over the
currently admitted set: every arrival and departure recomputes the
exact bound from the per-task :class:`~repro.locking.model.ResourceSpec`
declarations.  The computation is a pure function of the entry set —
max/min reductions over canonically ordered inputs — so the derived
``beta_j`` vector is bitwise identical regardless of the order tasks
were added or removed.  That property is what lets crash recovery
rebuild blocking state from replayed admissions and land on the exact
same region budget.

Priorities are deadline-monotonic (the paper's ``alpha = 1`` policy):
a smaller relative deadline means higher priority, with ``repr`` of the
task id as a deterministic tie-break.

The per-stage reduction is a sweep over priority space rather than the
naive ``O(tasks x sections)`` double loop: a section of task ``T_k``
on resource ``r`` blocks exactly the victims whose priority key lies
in ``[ceiling(r, j), key(T_k))``, so per stage we sort section
intervals and victim keys once and answer every ``B_ij`` with a
heap-backed stabbing-max — ``O((S + T) log (S + T))`` per recompute.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .model import ResourceSpec, canonical_resources

__all__ = [
    "PCPBlockingState",
    "compute_betas",
]

#: Priority key: (relative deadline, repr(task_id)).  Smaller sorts
#: first = higher priority; the repr tie-break keeps mixed-type task
#: ids totally ordered and the sweep deterministic.
_Key = Tuple[float, str]

#: One critical section at a stage: (ceiling key, owner key, length).
_Section = Tuple[_Key, _Key, float]


def _priority_key(task_id: Hashable, deadline: float) -> _Key:
    return (deadline, repr(task_id))


def _stage_blocking(
    victims: Sequence[Tuple[_Key, float]],
    sections: Sequence[_Section],
    per_victim: Optional[List[float]] = None,
) -> float:
    """Normalized blocking ``beta_j = max_i B_ij / D_i`` for one stage.

    ``victims`` must be sorted ascending by key.  A section blocks the
    victims whose key lies in ``[ceiling, owner)``; sweeping victims in
    key order, sections activate once the ceiling is reached and retire
    at the owner's own key (a task is never blocked by its own section,
    nor by an equal-or-higher-priority one).  The active multiset is a
    lazy-deletion max-heap, so each ``B_ij`` is the current stabbing
    max.

    When ``per_victim`` is given, the raw ``B_ij`` of every victim is
    appended to it in sweep (key) order.
    """
    if not sections:
        if per_victim is not None:
            per_victim.extend(0.0 for _ in victims)
        return 0.0
    activate = sorted(sections)
    retire = sorted(sections, key=lambda s: s[1])
    ai = ri = 0
    active: Dict[float, int] = {}
    heap: List[float] = []
    beta = 0.0
    for key, deadline in victims:
        while ai < len(activate) and activate[ai][0] <= key:
            length = activate[ai][2]
            active[length] = active.get(length, 0) + 1
            heapq.heappush(heap, -length)
            ai += 1
        while ri < len(retire) and retire[ri][1] <= key:
            active[retire[ri][2]] -= 1
            ri += 1
        while heap and active.get(-heap[0], 0) <= 0:
            heapq.heappop(heap)
        blocking = -heap[0] if heap else 0.0
        if per_victim is not None:
            per_victim.append(blocking)
        normalized = blocking / deadline
        if normalized > beta:
            beta = normalized
    return beta


def compute_betas(
    entries: Iterable[Tuple[Hashable, float, Sequence[ResourceSpec]]],
    num_stages: int,
) -> Tuple[float, ...]:
    """Pure ``beta_j`` vector for an arbitrary ``(id, deadline, specs)`` set.

    Ground-truth recomputation used by the auditor and by static
    worst-case bounds (feed it the whole anticipated population instead
    of the admitted set).  Independent of iteration order.
    """
    state = PCPBlockingState(num_stages)
    state.load(entries)
    return state.betas()


class PCPBlockingState:
    """Online ``B_ij`` / ``beta_j`` bookkeeping over the admitted set.

    Every mutation (:meth:`add`, :meth:`remove`) recomputes the exact
    blocking vector; :meth:`preview` evaluates a tentative arrival
    without committing it, which is how the admission controller
    refuses an admit whose own critical sections would push
    ``sum_j beta_j`` out of the region.

    Args:
        num_stages: Pipeline length; every spec's ``stage`` must be
            below it.
    """

    def __init__(self, num_stages: int) -> None:
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        self.num_stages = num_stages
        self._tasks: Dict[Hashable, Tuple[float, Tuple[ResourceSpec, ...]]] = {}
        self._sections = 0
        self._betas: Tuple[float, ...] = (0.0,) * num_stages

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, task_id: Hashable) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def betas(self) -> Tuple[float, ...]:
        """Current normalized blocking vector ``(beta_1, ..., beta_N)``."""
        return self._betas

    def beta_sum(self) -> float:
        """``sum_j beta_j`` accumulated exactly (order-independent)."""
        return math.fsum(self._betas)

    def resources_of(self, task_id: Hashable) -> Tuple[ResourceSpec, ...]:
        """Canonical resource declarations of one tracked task."""
        return self._tasks[task_id][1]

    def entries(self) -> List[Tuple[Hashable, float, Tuple[ResourceSpec, ...]]]:
        """All ``(task_id, deadline, resources)`` entries, canonically ordered."""
        return [
            (task_id, deadline, resources)
            for task_id, (deadline, resources) in sorted(
                self._tasks.items(), key=lambda item: repr(item[0])
            )
        ]

    def recompute(self) -> Tuple[float, ...]:
        """Ground-truth ``beta_j`` recomputed from scratch.

        The cached vector maintained across mutations must equal this
        bitwise at all times; :class:`repro.core.audit.ControllerAuditor`
        enforces exactly that.
        """
        return self._compute(self._tasks)

    def blocking_matrix(self) -> Dict[Hashable, Tuple[float, ...]]:
        """Raw ``B_ij`` per tracked task (diagnostics / audit detail)."""
        victims, by_stage = self._prepare(self._tasks)
        order = [task_id for _, task_id in sorted(
            ((key, task_id) for task_id, (key, _) in victims.items())
        )]
        sorted_victims = [
            (victims[task_id][0], victims[task_id][1]) for task_id in order
        ]
        columns: List[List[float]] = []
        for j in range(self.num_stages):
            column: List[float] = []
            _stage_blocking(sorted_victims, by_stage[j], per_victim=column)
            columns.append(column)
        return {
            task_id: tuple(columns[j][i] for j in range(self.num_stages))
            for i, task_id in enumerate(order)
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(
        self,
        task_id: Hashable,
        deadline: float,
        resources: Sequence[ResourceSpec] = (),
    ) -> Tuple[float, ...]:
        """Track an admitted task; returns the updated ``beta_j`` vector.

        Raises:
            ValueError: If the task is already tracked, the deadline is
                not positive and finite, or a spec's stage is out of
                range.
        """
        if task_id in self._tasks:
            raise ValueError(f"task {task_id!r} already tracked")
        entry = self._validated(task_id, deadline, resources)
        self._tasks[task_id] = entry
        self._sections += len(entry[1])
        self._betas = self._compute(self._tasks)
        return self._betas

    def load(
        self,
        entries: Iterable[Tuple[Hashable, float, Sequence[ResourceSpec]]],
    ) -> Tuple[float, ...]:
        """Track many tasks with a single recompute at the end.

        Equivalent to calling :meth:`add` per entry — the vector is a
        pure function of the entry set — but with one recompute at the
        end instead of one per insertion, which is what keeps a static
        population bound over 10k tasks (:func:`compute_betas`)
        near-linear rather than quadratic.
        """
        staged: Dict[Hashable, Tuple[float, Tuple[ResourceSpec, ...]]] = {}
        for task_id, deadline, resources in entries:
            if task_id in self._tasks or task_id in staged:
                raise ValueError(f"task {task_id!r} already tracked")
            staged[task_id] = self._validated(task_id, deadline, resources)
        for task_id, entry in staged.items():
            self._tasks[task_id] = entry
            self._sections += len(entry[1])
        self._betas = self._compute(self._tasks)
        return self._betas

    def remove(self, task_id: Hashable) -> Tuple[float, ...]:
        """Drop a departed/expired task; unknown ids are a no-op.

        Removal can only shrink (or preserve) every ``beta_j``: the
        task's sections disappear, its ceilings relax, and it leaves
        the victim max — so a departure always restores a budget at
        least as large as before the matching arrival.
        """
        entry = self._tasks.pop(task_id, None)
        if entry is not None:
            self._sections -= len(entry[1])
            self._betas = self._compute(self._tasks)
        return self._betas

    def preview(
        self,
        task_id: Hashable,
        deadline: float,
        resources: Sequence[ResourceSpec] = (),
    ) -> Tuple[float, ...]:
        """``beta_j`` vector *if* the task were admitted; no mutation.

        Bitwise identical to what :meth:`add` with the same arguments
        would cache — the admission test evaluates the exact budget the
        controller will hold after committing.  A task id that is
        already tracked is overlaid (what-if re-admission); duplicate
        detection stays with the caller's install path.
        """
        entry = self._validated(task_id, deadline, resources)
        overlay = dict(self._tasks)
        overlay[task_id] = entry
        return self._compute(overlay)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validated(
        self,
        task_id: Hashable,
        deadline: float,
        resources: Sequence[ResourceSpec],
    ) -> Tuple[float, Tuple[ResourceSpec, ...]]:
        if not math.isfinite(deadline) or deadline <= 0:
            raise ValueError(
                f"task {task_id!r}: deadline must be finite and > 0, got {deadline}"
            )
        specs = canonical_resources(resources)
        for spec in specs:
            if spec.stage >= self.num_stages:
                raise ValueError(
                    f"task {task_id!r}: resource {spec.resource!r} declared at "
                    f"stage {spec.stage}, pipeline has {self.num_stages} stages"
                )
        return (float(deadline), specs)

    def _prepare(
        self,
        tasks: Dict[Hashable, Tuple[float, Tuple[ResourceSpec, ...]]],
    ) -> Tuple[
        Dict[Hashable, Tuple[_Key, float]],
        List[List[_Section]],
    ]:
        """Victim keys and per-stage section intervals for the sweep."""
        victims: Dict[Hashable, Tuple[_Key, float]] = {}
        ceilings: Dict[Tuple[int, str], _Key] = {}
        raw: List[Tuple[int, str, _Key, float]] = []
        for task_id, (deadline, resources) in tasks.items():
            key = _priority_key(task_id, deadline)
            victims[task_id] = (key, deadline)
            for spec in resources:
                anchor = (spec.stage, spec.resource)
                ceiling = ceilings.get(anchor)
                if ceiling is None or key < ceiling:
                    ceilings[anchor] = key
                raw.append((spec.stage, spec.resource, key, spec.max_length))
        by_stage: List[List[_Section]] = [[] for _ in range(self.num_stages)]
        for stage, resource, owner, length in raw:
            by_stage[stage].append((ceilings[(stage, resource)], owner, length))
        return victims, by_stage

    def _compute(
        self,
        tasks: Dict[Hashable, Tuple[float, Tuple[ResourceSpec, ...]]],
    ) -> Tuple[float, ...]:
        if not tasks or (self._sections == 0 and tasks is self._tasks):
            return (0.0,) * self.num_stages
        victims, by_stage = self._prepare(tasks)
        if all(not sections for sections in by_stage):
            return (0.0,) * self.num_stages
        sorted_victims = sorted(victims.values())
        return tuple(
            _stage_blocking(sorted_victims, by_stage[j])
            for j in range(self.num_stages)
        )
