"""Per-resource request model for tasks sharing serially-reusable resources.

Section 3.2 of the paper extends the feasible region to tasks that are
*not* independent: subtasks may enter critical sections guarded by the
priority-ceiling protocol, and the region's right-hand side shrinks by
the normalized worst-case blocking ``sum_j beta_j``.  The repo
historically folded that entire half of the model into a static
``betas`` knob; this module makes the resources themselves explicit so
the blocking terms can be *derived* from the admitted set instead of
declared up front.

The request-model shape mirrors schedcat's ``locking/bounds.py``: each
task declares, per resource it touches, how many times one job may
request it and the longest critical section it holds.  A declaration is
anchored to the pipeline stage where the critical section executes,
because Eq. 15's ``B_ij`` is a per-stage quantity.

:class:`ResourceSpec` is deliberately dependency-free (stdlib only) so
the task model, the admission controller, and the wire protocol can all
import it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "ResourceSpec",
    "canonical_resources",
    "resources_to_wire",
    "resources_from_wire",
]


@dataclass(frozen=True, order=True)
class ResourceSpec:
    """One task's worst-case use of one shared resource at one stage.

    Attributes:
        stage: Pipeline stage index at which the critical section runs
            (``B_ij`` charges blocking to this stage's delay term).
        resource: Identifier of the serially-reusable resource.
        max_length: Longest critical section one job holds on the
            resource at this stage (same time unit as computation
            times).  Zero-length sections are legal — they contribute
            no blocking but still raise the resource's priority
            ceiling.
        max_requests: Maximum number of requests one job issues for the
            resource at this stage.  Under PCP a job blocks at most
            once regardless, so the bound uses only ``max_length``;
            the count is kept for the schedcat-compatible request
            model (and sum-based protocols a later analysis may add).
    """

    stage: int
    resource: str
    max_length: float
    max_requests: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.stage, int) or isinstance(self.stage, bool):
            raise ValueError(f"resource stage must be an int, got {self.stage!r}")
        if self.stage < 0:
            raise ValueError(f"resource stage must be >= 0, got {self.stage}")
        if not isinstance(self.resource, str) or not self.resource:
            raise ValueError(
                f"resource id must be a non-empty string, got {self.resource!r}"
            )
        if not isinstance(self.max_requests, int) or isinstance(self.max_requests, bool):
            raise ValueError(f"max_requests must be an int, got {self.max_requests!r}")
        if self.max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {self.max_requests}")
        length = self.max_length
        if not isinstance(length, (int, float)) or isinstance(length, bool):
            raise ValueError(f"max_length must be a number, got {length!r}")
        if not math.isfinite(length) or length < 0:
            raise ValueError(f"max_length must be finite and >= 0, got {length}")
        object.__setattr__(self, "max_length", float(length))

    def to_wire(self) -> Dict[str, Any]:
        """Canonical wire/JSON form of the spec."""
        return {
            "stage": self.stage,
            "resource": self.resource,
            "max_length": self.max_length,
            "max_requests": self.max_requests,
        }

    @classmethod
    def from_wire(cls, doc: Any) -> "ResourceSpec":
        """Parse a wire document, rejecting unknown fields."""
        if not isinstance(doc, dict):
            raise ValueError(f"resource spec must be an object, got {doc!r}")
        unknown = set(doc) - {"stage", "resource", "max_length", "max_requests"}
        if unknown:
            raise ValueError(f"unknown resource spec fields: {sorted(unknown)}")
        if "stage" not in doc or "resource" not in doc or "max_length" not in doc:
            raise ValueError(
                "resource spec requires 'stage', 'resource' and 'max_length'"
            )
        return cls(
            stage=doc["stage"],
            resource=doc["resource"],
            max_length=doc["max_length"],
            max_requests=doc.get("max_requests", 1),
        )


def canonical_resources(specs: Iterable[ResourceSpec]) -> Tuple[ResourceSpec, ...]:
    """Sort specs into the canonical ``(stage, resource)`` order.

    Canonical ordering makes every derived artifact — wire encodings,
    snapshot records, blocking-state fingerprints — independent of the
    order the caller listed the specs in.  A task may request the same
    resource at several *different* stages, but two declarations for
    the same ``(stage, resource)`` pair are ambiguous (which length is
    the worst case?) and rejected.

    Raises:
        ValueError: On duplicate ``(stage, resource)`` declarations.
    """
    ordered = tuple(sorted(specs))
    seen = set()
    for spec in ordered:
        key = (spec.stage, spec.resource)
        if key in seen:
            raise ValueError(
                f"duplicate resource declaration for {spec.resource!r} at "
                f"stage {spec.stage}"
            )
        seen.add(key)
    return ordered


def resources_to_wire(specs: Sequence[ResourceSpec]) -> List[Dict[str, Any]]:
    """Wire form of a spec sequence, in canonical order."""
    return [spec.to_wire() for spec in canonical_resources(specs)]


def resources_from_wire(docs: Any) -> Tuple[ResourceSpec, ...]:
    """Parse and canonicalize a wire-encoded spec list."""
    if not isinstance(docs, list):
        raise ValueError(f"resources must be a list, got {docs!r}")
    return canonical_resources(ResourceSpec.from_wire(doc) for doc in docs)
