"""Per-resource blocking model and online PCP bounds (paper Eq. 15).

The package splits into a dependency-free request model and the bound
engine the admission controller drives:

- :mod:`repro.locking.model` — :class:`~repro.locking.model.ResourceSpec`
  declarations (resource id, stage, max requests, max critical-section
  length) with canonical ordering and wire encoding;
- :mod:`repro.locking.bounds` —
  :class:`~repro.locking.bounds.PCPBlockingState`, the online
  ``B_ij`` / ``beta_j`` derivation under the priority-ceiling protocol,
  recomputed exactly as tasks arrive and depart.
"""

from .bounds import PCPBlockingState, compute_betas
from .model import (
    ResourceSpec,
    canonical_resources,
    resources_from_wire,
    resources_to_wire,
)

__all__ = [
    "ResourceSpec",
    "PCPBlockingState",
    "compute_betas",
    "canonical_resources",
    "resources_from_wire",
    "resources_to_wire",
]
