"""Response-time analysis baselines for periodic pipelines.

The introduction contrasts the paper's end-to-end aperiodic approach
with the traditional tools for periodic resource pipelines: introducing
intermediate per-stage deadlines and analyzing each stage separately,
or offline *holistic* response-time analysis that iterates response
times and jitter across stages.  This module implements both so
examples and ablation benches can compare:

- :func:`response_time_analysis` — exact worst-case response time for
  independent periodic tasks under preemptive fixed priority on one
  resource (Joseph & Pandya recurrence, with blocking and jitter).
- :func:`holistic_pipeline_analysis` — the classical iteration for a
  pipeline of stages: the output jitter of stage ``j`` feeds the input
  jitter of stage ``j + 1`` until a fixed point is reached.

These analyses require the *periodic/sporadic* model (known minimum
inter-arrival times); they are exactly what the aperiodic feasible
region dispenses with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.numeric import approx_eq, approx_le

__all__ = [
    "PeriodicStageTask",
    "response_time_analysis",
    "holistic_pipeline_analysis",
    "HolisticResult",
]


@dataclass(frozen=True)
class PeriodicStageTask:
    """A periodic task as seen by one stage.

    Attributes:
        name: Task name.
        period: Minimum inter-arrival time ``P`` (> 0).
        wcet: Worst-case execution time ``C`` at this stage (>= 0).
        deadline: Relative deadline at this stage (defaults to period).
        jitter: Release jitter ``J`` (>= 0).
        blocking: Blocking term ``B`` from lower-priority critical
            sections (>= 0).
        priority: Numeric priority; *lower values = higher priority*
            (deadline-monotonic order can be produced by sorting on
            deadline).
    """

    name: str
    period: float
    wcet: float
    deadline: Optional[float] = None
    jitter: float = 0.0
    blocking: float = 0.0
    priority: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be > 0")
        if self.wcet < 0:
            raise ValueError(f"{self.name}: wcet must be >= 0")
        if self.jitter < 0 or self.blocking < 0:
            raise ValueError(f"{self.name}: jitter and blocking must be >= 0")

    @property
    def effective_deadline(self) -> float:
        return self.period if self.deadline is None else self.deadline

    @property
    def effective_priority(self) -> float:
        return self.effective_deadline if self.priority is None else self.priority


def response_time_analysis(
    tasks: Sequence[PeriodicStageTask],
    max_iterations: int = 10_000,
) -> List[Optional[float]]:
    """Worst-case response times under preemptive fixed priority.

    Solves, for each task ``i``, the recurrence

        R_i = C_i + B_i + sum_{j in hp(i)} ceil((R_i + J_j) / P_j) C_j

    by fixed-point iteration.  Divergence (response time exceeding the
    deadline while still growing, or iteration budget exhausted) yields
    ``None`` for that task — unschedulable at this stage.

    Args:
        tasks: The stage's task set.
        max_iterations: Safety cap per task.

    Returns:
        Worst-case response time per task (same order), ``None`` where
        unschedulable.
    """
    results: List[Optional[float]] = []
    for i, task in enumerate(tasks):
        higher = [
            t
            for k, t in enumerate(tasks)
            if k != i and (t.effective_priority, k) < (task.effective_priority, i)
        ]
        r = task.wcet + task.blocking
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                math.ceil((r + h.jitter) / h.period) * h.wcet for h in higher
            )
            r_next = task.wcet + task.blocking + interference
            if approx_eq(r_next, r):
                converged = True
                break
            r = r_next
            # Early exit: response time already exceeds any bound of
            # interest by far (divergent under overload).
            if r > 1e6 * max(task.effective_deadline, task.period):  # repro: noqa[FLT002] — coarse divergence guard, not a boundary decision
                break
        results.append(r if converged else None)
    return results


def _responses_differ(a: Optional[float], b: Optional[float]) -> bool:
    """Change detection for the holistic fixed point, ``None``-aware.

    ``None`` (divergent) only equals ``None``; finite values compare
    through :func:`approx_eq` so sub-EPS numeric drift cannot keep the
    outer iteration spinning.
    """
    if a is None or b is None:
        return (a is None) != (b is None)
    return not approx_eq(a, b)


@dataclass(frozen=True)
class HolisticResult:
    """Outcome of holistic pipeline analysis.

    Attributes:
        response_times: Per-task per-stage worst-case response times
            (``response_times[i][j]``), ``None`` where divergent.
        end_to_end: Per-task worst-case end-to-end response time
            (sum across stages), ``None`` if any stage diverged.
        schedulable: Per-task verdict against the end-to-end deadline.
        iterations: Number of outer fixed-point iterations performed.
    """

    response_times: List[List[Optional[float]]]
    end_to_end: List[Optional[float]]
    schedulable: List[bool]
    iterations: int


def holistic_pipeline_analysis(
    periods: Sequence[float],
    stage_wcets: Sequence[Sequence[float]],
    end_to_end_deadlines: Sequence[float],
    max_outer_iterations: int = 200,
) -> HolisticResult:
    """Holistic response-time analysis of a periodic task pipeline.

    Tasks visit stages in order; the release jitter of task ``i`` at
    stage ``j + 1`` equals its worst-case response time at stage ``j``
    (minus its best case, conservatively taken as 0).  The analysis
    iterates stage-level RTA until jitters stabilize.  Priorities are
    deadline-monotonic on the *end-to-end* deadline, fixed across
    stages — mirroring the paper's fixed-priority setting.

    Args:
        periods: Task periods.
        stage_wcets: ``stage_wcets[i][j]`` = WCET of task ``i`` at
            stage ``j``; all rows must have equal length.
        end_to_end_deadlines: Per-task end-to-end deadlines.
        max_outer_iterations: Outer fixed-point budget.

    Returns:
        A :class:`HolisticResult`.

    Raises:
        ValueError: On inconsistent dimensions.
    """
    n = len(periods)
    if len(stage_wcets) != n or len(end_to_end_deadlines) != n:
        raise ValueError("periods, stage_wcets, end_to_end_deadlines must align")
    if n == 0:
        return HolisticResult([], [], [], 0)
    num_stages = len(stage_wcets[0])
    if any(len(row) != num_stages for row in stage_wcets):
        raise ValueError("all tasks must visit the same number of stages")

    jitter = [[0.0] * num_stages for _ in range(n)]
    response: List[List[Optional[float]]] = [[None] * num_stages for _ in range(n)]
    iterations = 0
    for iterations in range(1, max_outer_iterations + 1):
        changed = False
        for j in range(num_stages):
            stage_tasks = [
                PeriodicStageTask(
                    name=f"task{i}",
                    period=periods[i],
                    wcet=stage_wcets[i][j],
                    deadline=end_to_end_deadlines[i],
                    jitter=jitter[i][j],
                )
                for i in range(n)
            ]
            stage_response = response_time_analysis(stage_tasks)
            for i in range(n):
                if _responses_differ(response[i][j], stage_response[i]):
                    changed = True
                response[i][j] = stage_response[i]
        # Propagate jitter: response at stage j feeds stage j+1.
        for i in range(n):
            for j in range(num_stages - 1):
                r = response[i][j]
                new_jitter = math.inf if r is None else r
                if not approx_eq(new_jitter, jitter[i][j + 1]):
                    jitter[i][j + 1] = min(new_jitter, 1e12)
                    changed = True
        if not changed:
            break

    end_to_end: List[Optional[float]] = []
    schedulable: List[bool] = []
    for i in range(n):
        if any(r is None for r in response[i]):
            end_to_end.append(None)
            schedulable.append(False)
        else:
            total = sum(response[i])  # type: ignore[arg-type]
            end_to_end.append(total)
            schedulable.append(approx_le(total, end_to_end_deadlines[i]))
    return HolisticResult(
        response_times=response,
        end_to_end=end_to_end,
        schedulable=schedulable,
        iterations=iterations,
    )
