"""Classic periodic-model utilization bounds (related-work comparators).

Section 6 situates the paper among extensions of the Liu & Layland
bound, all confined to variations of the *periodic* task model.  This
module implements the main comparators so examples and benchmarks can
contrast them with the aperiodic feasible region:

- Liu & Layland (1973): ``U <= n (2^{1/n} - 1)`` for rate-monotonic
  scheduling of ``n`` periodic tasks; the limit is ``ln 2 ~ 0.693``.
- Hyperbolic bound (Bini, Buttazzo & Buttazzo 2001):
  ``prod_i (U_i + 1) <= 2`` — provably less pessimistic than L&L.
- Harmonic-chain bound (Kuo & Mok 1991): L&L with ``n`` replaced by
  the number of harmonic chains.

Since periodic arrivals are a special case of aperiodic ones, the
paper's feasible region also admits periodic workloads — pessimistic
relative to dedicated periodic tests but valid, which is exactly what
the Section-5 reservation scheme exploits.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.numeric import EPS, approx_eq

__all__ = [
    "liu_layland_bound",
    "is_liu_layland_schedulable",
    "hyperbolic_bound_holds",
    "harmonic_chain_count",
    "harmonic_chain_bound",
    "rate_monotonic_priorities",
]


def liu_layland_bound(num_tasks: int) -> float:
    """The Liu & Layland rate-monotonic utilization bound ``n (2^{1/n} - 1)``.

    Args:
        num_tasks: Number of periodic tasks ``n >= 1``.

    Raises:
        ValueError: If ``n < 1``.
    """
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    n = float(num_tasks)
    return n * (2.0 ** (1.0 / n) - 1.0)


def is_liu_layland_schedulable(utilizations: Sequence[float]) -> bool:
    """Sufficient RM test: total utilization within the L&L bound.

    Args:
        utilizations: Per-task utilizations ``C_i / P_i``.
    """
    if any(u < 0 for u in utilizations):
        raise ValueError("utilizations must be >= 0")
    if not utilizations:
        return True
    return sum(utilizations) <= liu_layland_bound(len(utilizations))


def hyperbolic_bound_holds(utilizations: Sequence[float]) -> bool:
    """The hyperbolic bound: ``prod (U_i + 1) <= 2``.

    Strictly dominates the L&L test (admits every set L&L admits, and
    more); verified by a property test in the suite.
    """
    if any(u < 0 for u in utilizations):
        raise ValueError("utilizations must be >= 0")
    product = 1.0
    for u in utilizations:
        product *= u + 1.0
    return product <= 2.0


def _is_harmonic(base: float, period: float, tolerance: float = EPS) -> bool:
    """Whether ``period`` is an integer multiple of ``base``."""
    ratio = period / base
    return approx_eq(ratio, round(ratio), tol=tolerance)


def harmonic_chain_count(periods: Sequence[float]) -> int:
    """Partition periods into the minimum number of harmonic chains.

    A chain is a set of periods in which every pair is harmonically
    related (each divides the other).  Kuo & Mok showed the RM bound
    depends on the number of such chains rather than the task count.
    Uses greedy chaining over sorted periods — optimal for the chain
    structure induced by divisibility.

    Args:
        periods: Task periods (> 0).

    Raises:
        ValueError: On non-positive periods.
    """
    for p in periods:
        if p <= 0:
            raise ValueError(f"periods must be > 0, got {p}")
    remaining: List[float] = sorted(periods)
    chains = 0
    while remaining:
        chains += 1
        base = remaining[0]
        chain_top = base
        rest: List[float] = []
        for p in remaining[1:]:
            if _is_harmonic(chain_top, p):
                chain_top = p
            else:
                rest.append(p)
        remaining = rest
    return chains


def harmonic_chain_bound(periods: Sequence[float]) -> float:
    """Kuo & Mok's bound: L&L with ``n`` = number of harmonic chains."""
    if not periods:
        return 1.0
    return liu_layland_bound(harmonic_chain_count(periods))


def rate_monotonic_priorities(periods: Sequence[float]) -> List[int]:
    """Priority order under rate-monotonic scheduling.

    Returns:
        A list of task indices sorted from highest priority (shortest
        period) to lowest; ties broken by index.
    """
    for p in periods:
        if p <= 0:
            raise ValueError(f"periods must be > 0, got {p}")
    return sorted(range(len(periods)), key=lambda i: (periods[i], i))
