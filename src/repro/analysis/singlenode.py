"""Uniprocessor aperiodic utilization bounds (Abdelzaher & Lu lineage).

The feasible region of this paper reduces, for a single resource, to
the uniprocessor aperiodic bounds of the authors' earlier work:

- deadline-monotonic: ``U <= 1 / (1 + sqrt(1/2)) = 2 - sqrt(2)``;
- arbitrary fixed-priority with urgency-inversion parameter ``alpha``
  and normalized blocking ``beta``: ``f(U) <= alpha (1 - beta)``.

These are exposed both for direct use (single-server admission
control) and as cross-checks that the pipeline region degenerates
correctly (tested in ``tests/test_singlenode.py``).
"""

from __future__ import annotations

from ..core.bounds import (
    inverse_stage_delay_factor,
    region_budget,
    stage_delay_factor,
)
from ..core.numeric import approx_le

__all__ = [
    "uniprocessor_bound",
    "is_uniprocessor_feasible",
    "max_admissible_contribution",
]


def uniprocessor_bound(alpha: float = 1.0, beta: float = 0.0) -> float:
    """The single-resource synthetic utilization bound.

    Solves ``f(U) = alpha (1 - beta)``; with ``alpha = 1``, ``beta = 0``
    this is ``2 - sqrt(2) ~ 0.5858``, the optimal fixed-priority
    aperiodic bound (deadline-monotonic).

    Args:
        alpha: Urgency-inversion parameter of the scheduling policy.
        beta: Normalized worst-case blocking ``max_i B_i / D_i``.
    """
    betas = [beta] if beta else None
    return inverse_stage_delay_factor(region_budget(alpha, betas))


def is_uniprocessor_feasible(
    utilization: float, alpha: float = 1.0, beta: float = 0.0
) -> bool:
    """Check the scalar bound: all deadlines met while ``U(t)`` stays below it."""
    if utilization >= 1.0:
        return False
    betas = [beta] if beta else None
    return approx_le(stage_delay_factor(utilization), region_budget(alpha, betas))


def max_admissible_contribution(
    current_utilization: float, alpha: float = 1.0, beta: float = 0.0
) -> float:
    """Largest extra ``C/D`` a single resource can accept right now.

    Args:
        current_utilization: Present synthetic utilization.

    Returns:
        Headroom up to the bound (0.0 when already at or above it).
    """
    bound = uniprocessor_bound(alpha, beta)
    return max(0.0, bound - current_utilization)
