"""Side-by-side admission tests for periodic task sets.

Section 1: "The analysis presented in the paper, while geared towards
aperiodic tasks, also provides sufficient (albeit pessimistic)
feasibility conditions for periodic workloads, since periodic arrivals
are a special case of aperiodic ones."  This module makes that
trade-off inspectable: given a periodic task set on a single resource,
run every admission test the repository implements and report which
accept it.

The expected ordering of power (each test accepts a superset of the
previous one's task sets, for implicit-deadline sets):

    aperiodic region  ⊆  Liu & Layland  ⊆  hyperbolic  ⊆  exact RTA

— the aperiodic region is the most pessimistic (it assumes nothing
about inter-arrival times, so it must tolerate coincident bursts) and
response-time analysis is exact for fixed-priority scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.bounds import stage_delay_factor
from ..core.numeric import approx_eq, approx_le
from .periodic import hyperbolic_bound_holds, is_liu_layland_schedulable
from .responsetime import PeriodicStageTask, response_time_analysis
from .singlenode import is_uniprocessor_feasible

__all__ = ["PeriodicTaskParams", "AdmissionComparison", "compare_periodic_admission"]


@dataclass(frozen=True)
class PeriodicTaskParams:
    """One periodic task on a single resource.

    Attributes:
        period: Minimum inter-arrival time ``P`` (> 0).
        wcet: Worst-case execution time ``C`` (>= 0, <= deadline).
        deadline: Relative deadline; defaults to the period.
    """

    period: float
    wcet: float
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.wcet < 0:
            raise ValueError(f"wcet must be >= 0, got {self.wcet}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    @property
    def effective_deadline(self) -> float:
        return self.period if self.deadline is None else self.deadline

    @property
    def utilization(self) -> float:
        """Long-run utilization ``C / P``."""
        return self.wcet / self.period

    @property
    def synthetic_contribution(self) -> float:
        """Instantaneous synthetic-utilization contribution ``C / D``."""
        return self.wcet / self.effective_deadline


@dataclass(frozen=True)
class AdmissionComparison:
    """Verdicts of every admission test on one periodic task set.

    All verdicts are *sufficient* conditions except ``rta``, which is
    exact for independent fixed-priority tasks on one resource.

    Attributes:
        aperiodic_region: The paper's synthetic-utilization test at the
            worst instant (all tasks released together):
            ``sum C_i / D_i <= 2 - sqrt(2)``.
        liu_layland: ``sum C_i / P_i <= n (2^{1/n} - 1)``.
        hyperbolic: ``prod (C_i / P_i + 1) <= 2``.
        rta: Deadline-monotonic response-time analysis.
        total_utilization: ``sum C_i / P_i``.
        synthetic_peak: ``sum C_i / D_i`` (the aperiodic test's input).
        worst_response_times: Per-task WCRT from RTA (``None`` where
            divergent).
    """

    aperiodic_region: bool
    liu_layland: bool
    hyperbolic: bool
    rta: bool
    total_utilization: float
    synthetic_peak: float
    worst_response_times: Tuple[Optional[float], ...]

    def accepted_by(self) -> List[str]:
        """Names of the tests that accept the set."""
        names = []
        if self.aperiodic_region:
            names.append("aperiodic-region")
        if self.liu_layland:
            names.append("liu-layland")
        if self.hyperbolic:
            names.append("hyperbolic")
        if self.rta:
            names.append("rta")
        return names


def compare_periodic_admission(
    tasks: Sequence[PeriodicTaskParams],
) -> AdmissionComparison:
    """Run every single-resource admission test on a periodic set.

    The aperiodic-region verdict charges each task its synthetic
    contribution ``C_i / D_i`` simultaneously — the coincident-release
    worst case an aperiodic controller must survive, since it makes no
    minimum-inter-arrival assumption.  The periodic tests exploit the
    known periods and are correspondingly less pessimistic; RTA is
    exact.  L&L and the hyperbolic bound are evaluated only for
    implicit-deadline tasks (``D = P``); for constrained deadlines they
    report ``False`` (not applicable) while RTA still decides exactly.

    Args:
        tasks: The periodic set (may be empty: everything accepts it).
    """
    if not tasks:
        return AdmissionComparison(
            aperiodic_region=True,
            liu_layland=True,
            hyperbolic=True,
            rta=True,
            total_utilization=0.0,
            synthetic_peak=0.0,
            worst_response_times=(),
        )
    synthetic_peak = sum(t.synthetic_contribution for t in tasks)
    total_utilization = sum(t.utilization for t in tasks)
    aperiodic_ok = synthetic_peak < 1.0 and is_uniprocessor_feasible(synthetic_peak)

    implicit = all(
        t.deadline is None or approx_eq(t.deadline, t.period) for t in tasks
    )
    utilizations = [t.utilization for t in tasks]
    ll_ok = implicit and is_liu_layland_schedulable(utilizations)
    hb_ok = implicit and hyperbolic_bound_holds(utilizations)

    rta_tasks = [
        PeriodicStageTask(
            name=f"task{i}",
            period=t.period,
            wcet=t.wcet,
            deadline=t.effective_deadline,
        )
        for i, t in enumerate(tasks)
    ]
    responses = response_time_analysis(rta_tasks)
    rta_ok = all(
        r is not None and approx_le(r, t.effective_deadline)
        for r, t in zip(responses, tasks)
    )
    return AdmissionComparison(
        aperiodic_region=aperiodic_ok,
        liu_layland=ll_ok,
        hyperbolic=hb_ok,
        rta=rta_ok,
        total_utilization=total_utilization,
        synthetic_peak=synthetic_peak,
        worst_response_times=tuple(responses),
    )
