"""Analytical baselines and reductions.

- :mod:`repro.analysis.singlenode` — uniprocessor aperiodic bounds
  (the paper's single-resource degenerate case);
- :mod:`repro.analysis.periodic` — Liu & Layland, hyperbolic, and
  harmonic-chain bounds (the periodic-model related work);
- :mod:`repro.analysis.responsetime` — fixed-priority response-time
  analysis and holistic pipeline analysis (the traditional alternative
  to end-to-end aperiodic regions);
- :mod:`repro.analysis.comparison` — every single-resource admission
  test side by side on a periodic task set (the Section-1
  "sufficient albeit pessimistic" claim made inspectable).
"""

from .comparison import (
    AdmissionComparison,
    PeriodicTaskParams,
    compare_periodic_admission,
)
from .periodic import (
    harmonic_chain_bound,
    harmonic_chain_count,
    hyperbolic_bound_holds,
    is_liu_layland_schedulable,
    liu_layland_bound,
    rate_monotonic_priorities,
)
from .responsetime import (
    HolisticResult,
    PeriodicStageTask,
    holistic_pipeline_analysis,
    response_time_analysis,
)
from .singlenode import (
    is_uniprocessor_feasible,
    max_admissible_contribution,
    uniprocessor_bound,
)

__all__ = [
    "PeriodicTaskParams",
    "AdmissionComparison",
    "compare_periodic_admission",
    "uniprocessor_bound",
    "is_uniprocessor_feasible",
    "max_admissible_contribution",
    "liu_layland_bound",
    "is_liu_layland_schedulable",
    "hyperbolic_bound_holds",
    "harmonic_chain_count",
    "harmonic_chain_bound",
    "rate_monotonic_priorities",
    "PeriodicStageTask",
    "response_time_analysis",
    "holistic_pipeline_analysis",
    "HolisticResult",
]
