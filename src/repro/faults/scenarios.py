"""Named chaos scenarios: miss ratio among admitted vs. fault intensity.

Each scenario replays the *same* seeded workload under a sweep of fault
intensities (and, where relevant, with a mitigation toggled on and
off), so the emitted points isolate the effect of the fault and of the
degradation mechanism.  Every number in a scenario result is a pure
function of the seed — the chaos CLI relies on this to produce
byte-identical reports across runs.

Scenario catalog (``python -m repro.faults --list``):

==================  ===================================================
``baseline``        No faults; the auditor must stay silent.
``slowdown``        Stage capacity loss, with/without region rescaling.
``outage``          Full stage outages, with/without region rescaling.
``overrun``         Optimistic WCET declarations (execution overruns).
``lost_departures`` Dropped departure notifications; detection/healing.
``lost_idle``       Dropped idle notifications; detection/healing.
``burst``           Arrival bursts the admission test must absorb.
``backoff``         Overload, plain admission vs. bounded backoff retry.
``brownout``        Web-server overload, brownout shedding on/off.
``serve_crash``     Gateway kill/recover cycles; exactly-once admission.
``serve_locking``   Contention bursts against online PCP blocking bounds.
==================  ===================================================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..apps.webserver import WebServerModel
from ..sim.metrics import SimulationReport
from ..sim.pipeline import PipelineSimulation
from ..sim.workload import balanced_workload
from .degradation import BackoffAdmission, BackoffPolicy, BrownoutConfig
from .injector import FaultInjector
from .schedule import (
    ArrivalBurst,
    DropNotification,
    ExecutionOverrun,
    FaultSchedule,
    StageOutage,
    StageSlowdown,
)

__all__ = ["SCENARIOS", "run_scenario", "run_scenarios", "scenario_names"]

#: Default chaos-run geometry: a 3-stage pipeline at moderate task
#: resolution, long enough for faults to bite but fast enough that the
#: whole suite runs in seconds (the ``make chaos`` budget).
NUM_STAGES = 3
HORIZON = 240.0
RESOLUTION = 20.0

_Result = Dict[str, object]
_ScenarioFn = Callable[[int], _Result]

SCENARIOS: Dict[str, _ScenarioFn] = {}


def _scenario(name: str) -> Callable[[_ScenarioFn], _ScenarioFn]:
    def register(fn: _ScenarioFn) -> _ScenarioFn:
        SCENARIOS[name] = fn
        return fn

    return register


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------


def _pipeline(seed: int, load: float = 0.9) -> PipelineSimulation:
    """A fresh pipeline with the scenario's seeded arrival stream."""
    workload = balanced_workload(NUM_STAGES, load, resolution=RESOLUTION)
    pipeline = PipelineSimulation(num_stages=NUM_STAGES)
    pipeline.offer_stream(workload.tasks(HORIZON, random.Random(seed)))
    return pipeline


def _chaos_run(
    pipeline: PipelineSimulation,
    schedule: FaultSchedule,
    seed: int,
    rescale: bool = False,
    heal: bool = False,
    audit_period: Optional[float] = None,
):
    injector = FaultInjector(
        pipeline,
        schedule,
        seed=seed + 1,  # decouple fault randomness from the workload
        rescale_admission=rescale,
        audit_period=audit_period,
        heal=heal,
    ).install()
    report = pipeline.run(HORIZON)
    injector.final_audit()
    return report, injector


def _point(report: SimulationReport, injector: FaultInjector, **extra) -> _Result:
    point: _Result = {
        "offered": report.generated,
        "admitted": report.admitted,
        "accept_ratio": round(report.accept_ratio, 6),
        "miss_ratio_admitted": round(report.miss_ratio(), 6),
    }
    point.update(injector.summary())
    point.update(extra)
    return point


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


@_scenario("baseline")
def baseline(seed: int) -> _Result:
    """Fault-free control run: periodic audits must find nothing."""
    report, injector = _chaos_run(
        _pipeline(seed), FaultSchedule(), seed, audit_period=20.0
    )
    return {
        "description": "fault-free control run with periodic audits",
        "points": [_point(report, injector, intensity=0.0)],
    }


@_scenario("slowdown")
def slowdown(seed: int) -> _Result:
    """One stage loses capacity mid-run; rescaling shifts misses to rejects."""
    points: List[_Result] = []
    for factor in (0.75, 0.5, 0.25):
        for rescale in (False, True):
            schedule = FaultSchedule(
                slowdowns=(
                    StageSlowdown(
                        stage=1, start=HORIZON / 4, end=3 * HORIZON / 4, factor=factor
                    ),
                )
            )
            report, injector = _chaos_run(
                _pipeline(seed), schedule, seed, rescale=rescale, audit_period=20.0
            )
            points.append(
                _point(
                    report,
                    injector,
                    intensity=round(1.0 - factor, 6),
                    factor=factor,
                    rescale_admission=rescale,
                )
            )
    return {
        "description": "stage-1 capacity loss for the middle half of the run",
        "points": points,
    }


@_scenario("outage")
def outage(seed: int) -> _Result:
    """A stage goes fully down; rescaling closes admission during the hole."""
    points: List[_Result] = []
    for duration in (10.0, 25.0, 50.0):
        for rescale in (False, True):
            start = HORIZON / 3
            schedule = FaultSchedule(
                outages=(StageOutage(stage=1, start=start, end=start + duration),)
            )
            report, injector = _chaos_run(
                _pipeline(seed), schedule, seed, rescale=rescale, audit_period=20.0
            )
            points.append(
                _point(
                    report,
                    injector,
                    intensity=round(duration / HORIZON, 6),
                    outage_duration=duration,
                    rescale_admission=rescale,
                )
            )
    return {
        "description": "full stage-1 outage of growing duration",
        "points": points,
    }


@_scenario("overrun")
def overrun(seed: int) -> _Result:
    """Tasks exceed declared demand; the region was computed from a lie."""
    points: List[_Result] = []
    for factor in (1.5, 2.0, 3.0):
        schedule = FaultSchedule(
            overruns=(ExecutionOverrun(factor=factor, probability=0.5),)
        )
        report, injector = _chaos_run(
            _pipeline(seed), schedule, seed, audit_period=20.0
        )
        points.append(
            _point(
                report,
                injector,
                intensity=round((factor - 1.0) * 0.5, 6),
                overrun_factor=factor,
                overrun_probability=0.5,
            )
        )
    return {
        "description": "half of all tasks execute factor x their declared demand",
        "points": points,
    }


@_scenario("lost_departures")
def lost_departures(seed: int) -> _Result:
    """Departure notifications vanish; the auditor must catch every one."""
    points: List[_Result] = []
    for probability in (0.25, 1.0):
        for heal in (False, True):
            schedule = FaultSchedule(
                drops=(
                    DropNotification(
                        kind="departure",
                        probability=probability,
                        start=HORIZON / 4,
                        end=3 * HORIZON / 4,
                    ),
                )
            )
            report, injector = _chaos_run(
                _pipeline(seed), schedule, seed, heal=heal
            )
            points.append(
                _point(
                    report,
                    injector,
                    intensity=probability,
                    drop_probability=probability,
                    heal=heal,
                )
            )
    return {
        "description": "lost notify_subtask_departure in the middle half of the run",
        "points": points,
    }


@_scenario("lost_idle")
def lost_idle(seed: int) -> _Result:
    """Idle notifications vanish; departed utilization is never released."""
    points: List[_Result] = []
    for probability in (0.5, 1.0):
        for heal in (False, True):
            schedule = FaultSchedule(
                drops=(
                    DropNotification(
                        kind="idle",
                        probability=probability,
                        start=HORIZON / 4,
                        end=3 * HORIZON / 4,
                    ),
                )
            )
            report, injector = _chaos_run(
                _pipeline(seed), schedule, seed, heal=heal
            )
            points.append(
                _point(
                    report,
                    injector,
                    intensity=probability,
                    drop_probability=probability,
                    heal=heal,
                )
            )
    return {
        "description": "lost notify_stage_idle in the middle half of the run",
        "points": points,
    }


@_scenario("burst")
def burst(seed: int) -> _Result:
    """A tight-deadline arrival burst slams into the admission test."""
    points: List[_Result] = []
    for count in (25, 50, 100):
        schedule = FaultSchedule(
            bursts=(
                ArrivalBurst(
                    time=HORIZON / 3,
                    count=count,
                    deadline=30.0,
                    mean_costs=(1.0,) * NUM_STAGES,
                ),
            )
        )
        report, injector = _chaos_run(
            _pipeline(seed), schedule, seed, audit_period=20.0
        )
        points.append(
            _point(report, injector, intensity=count, burst_count=count)
        )
    return {
        "description": "simultaneous tight-deadline arrivals at one instant",
        "points": points,
    }


@_scenario("backoff")
def backoff(seed: int) -> _Result:
    """Overload: first-contact rejection vs. deadline-aware backoff retry."""
    points: List[_Result] = []
    for load in (1.2, 1.6):
        plain = _pipeline(seed, load=load)
        plain_report, plain_injector = _chaos_run(plain, FaultSchedule(), seed)
        points.append(
            _point(
                plain_report,
                plain_injector,
                intensity=load,
                load=load,
                policy="reject-on-first-contact",
            )
        )

        workload = balanced_workload(NUM_STAGES, load, resolution=RESOLUTION)
        pipeline = PipelineSimulation(num_stages=NUM_STAGES)
        retry = BackoffAdmission(
            pipeline, BackoffPolicy(base_delay=2.0, multiplier=2.0, max_attempts=5)
        )
        retry.offer_stream(workload.tasks(HORIZON, random.Random(seed)))
        injector = FaultInjector(pipeline, FaultSchedule(), seed=seed + 1).install()
        report = pipeline.run(HORIZON)
        injector.final_audit()
        points.append(
            _point(
                report,
                injector,
                intensity=load,
                load=load,
                policy="bounded-backoff",
                admitted_first_try=retry.admitted_first_try,
                admitted_after_retry=retry.admitted_after_retry,
                abandoned=retry.abandoned,
            )
        )
    return {
        "description": "sustained overload, with and without admission retry",
        "points": points,
    }


@_scenario("brownout")
def brownout(seed: int) -> _Result:
    """Web-server overload: FCFS rejection vs. importance-ordered shedding."""
    points: List[_Result] = []
    horizon = 20.0
    # The idle-reset rule keeps synthetic utilization near the in-flight
    # backlog, so admission only pushes back near *real* saturation —
    # 4x the mean-feasible rate puts the bottleneck tier at ~1.3 load.
    overload = 4.0
    base = WebServerModel()
    rate = base.max_arrival_rate_within_region() * overload
    model = WebServerModel(arrival_rate=rate)
    config = BrownoutConfig(
        max_level=2,
        window=2.0,
        evaluation_period=0.25,
        enter_reject_ratio=0.1,
        exit_reject_ratio=0.02,
        min_samples=30,
    )

    plain_report = model.simulate(horizon=horizon, seed=seed)
    points.append(
        {
            "mode": "plain",
            "intensity": overload,
            "offered": plain_report.generated,
            "admitted": plain_report.admitted,
            "accept_ratio": round(plain_report.accept_ratio, 6),
            "miss_ratio_admitted": round(plain_report.miss_ratio(), 6),
            "per_class_accept": {
                name: round(ratio, 6)
                for name, ratio in model.per_class_accept_ratios(plain_report).items()
            },
        }
    )

    shed_report, controller = model.simulate_brownout(
        horizon=horizon, seed=seed, config=config
    )
    points.append(
        {
            "mode": "brownout",
            "intensity": overload,
            "offered": shed_report.generated,
            "admitted": shed_report.admitted,
            "accept_ratio": round(shed_report.accept_ratio, 6),
            "miss_ratio_admitted": round(shed_report.miss_ratio(), 6),
            "per_class_accept": {
                name: round(ratio, 6)
                for name, ratio in model.per_class_accept_ratios(shed_report).items()
            },
            "browned_out": controller.browned_out,
            "browned_out_by_importance": {
                str(k): v
                for k, v in sorted(controller.browned_out_by_importance.items())
            },
            "final_level": controller.level,
            "level_changes": len(controller.level_history),
        }
    )
    return {
        "description": "three-tier web server at 4x the feasible mean rate",
        "points": points,
    }


@_scenario("serve_crash")
def serve_crash(seed: int) -> _Result:
    """Gateway crash/recovery chaos: kill the serving process mid-batch.

    Sweeps the number of crash/recover cycles driven by the serve
    layer's durability harness (``repro.serve.recovery``): every cycle
    journals live traffic, crashes the gateway at a random operation
    (including between the write-ahead record and the state mutation,
    and mid-record with a torn tail), recovers from snapshot + journal,
    and replays client retries through the idempotency window.  The
    gate: zero admissions lost, zero duplicated, and every recovered
    gateway bitwise identical to the pre-crash shadow.
    """
    # Imported lazily: repro.serve imports from repro.faults, so a
    # module-level import here would be a cycle.
    from ..serve.recovery import run_crash_chaos

    points: List[_Result] = []
    for cycles in (6, 12, 24):
        report = run_crash_chaos(seed=seed, cycles=cycles)
        admissions = report["admissions"]
        equivalence = report["equivalence"]
        points.append(
            {
                "intensity": cycles,
                "crashes": report["crashes"],
                "crashes_with_pending_batch": report["crashes_with_pending_batch"],
                "recoveries": report["recoveries"]["count"],
                "snapshot_loads": report["recoveries"]["snapshot_loads"],
                "replayed": report["recoveries"]["replayed"],
                "torn_bytes": report["recoveries"]["truncated_bytes"],
                "acked_admitted": admissions["acked_admitted"],
                "lost": admissions["lost"],
                "duplicated": admissions["duplicated"],
                "decision_mismatches": admissions["decision_mismatches"],
                "bitwise_identical": (
                    equivalence["fingerprint_mismatches"] == 0
                    and equivalence["final_identical"]
                ),
            }
        )
    return {
        "description": "gateway kill/recover cycles; journal + dedup must "
        "preserve every admission exactly once",
        "points": points,
    }


@_scenario("serve_locking")
def serve_locking(seed: int) -> _Result:
    """Deterministic contention bursts against a locking gateway pipeline.

    Sweeps the burst size: each wave offers ``burst`` tasks that all
    declare a critical section on one shared resource, mixing one
    tight-deadline victim with longer-deadline holders, so the online
    ``beta_j`` derivation (PCP bounds over the admitted set) visibly
    shrinks the region budget while the contention is live.  Between
    waves every deadline lapses; the budget must return *bitwise* to
    its idle value — departures restore the exact prior blocking state.
    """
    # Imported lazily: repro.serve imports from repro.faults, so a
    # module-level import here would be a cycle.
    from ..core.task import make_task
    from ..locking import ResourceSpec
    from ..serve.client import GatewayClient, InProcessTransport
    from ..serve.gateway import AdmissionGateway

    del seed  # the burst schedule is fully deterministic
    waves = 6
    points: List[_Result] = []
    for burst in (4, 8, 16):
        client = GatewayClient(InProcessTransport(AdmissionGateway()))
        client.register(
            "locked", {"num_stages": 2, "alpha": 0.9, "locking": True}
        )

        def budget() -> float:
            return client.stats("locked")["stats"]["locked"]["region_budget"]

        idle_budget = budget()
        admitted = rejected = 0
        min_budget = idle_budget
        task_id = 0
        for wave in range(waves):
            now = round(wave * 4.0, 6)
            for i in range(burst):
                task_id += 1
                deadline = 0.5 if i == 0 else round(1.5 + 0.25 * (i % 4), 6)
                task = make_task(
                    arrival_time=round(now + i * 1e-3, 6),
                    deadline=deadline,
                    computation_times=(0.05, 0.05),
                    resources=(
                        ResourceSpec(0, "hot", round(0.02 + 0.015 * (i % 3), 6)),
                    ),
                    task_id=task_id,
                )
                if client.admit("locked", task)["admitted"]:
                    admitted += 1
                else:
                    rejected += 1
            min_budget = min(min_budget, budget())
            # Every deadline in the wave lapses before the next one.
            client.call("expire", pipeline="locked", now=round(now + 3.9, 6))
        restored = budget() == idle_budget
        client.close()
        points.append(
            {
                "intensity": burst,
                "burst": burst,
                "waves": waves,
                "offered": burst * waves,
                "admitted": admitted,
                "rejected": rejected,
                "idle_budget": round(idle_budget, 6),
                "min_budget": round(min_budget, 6),
                "budget_restored_bitwise": restored,
            }
        )
    return {
        "description": "shared-resource admission bursts; the online blocking "
        "budget must shrink under contention and restore bitwise after expiry",
        "points": points,
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def scenario_names() -> List[str]:
    """Catalog order: as registered above."""
    return list(SCENARIOS)


def run_scenario(name: str, seed: int = 0) -> _Result:
    """Run one named scenario.

    Raises:
        KeyError: If ``name`` is not in the catalog.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return SCENARIOS[name](seed)


def run_scenarios(names: List[str], seed: int = 0) -> Dict[str, _Result]:
    """Run several scenarios and collect their results by name."""
    return {name: run_scenario(name, seed) for name in names}
